//! Steady-state heat conduction on a plate, solved on the Acamar model.
//!
//! Discretizes `-∇²T = 0` on a unit plate with fixed-temperature edges
//! (Dirichlet boundary conditions folded into the right-hand side) —
//! exactly the PDE-to-`Ax = b` reduction the paper's Section II-A
//! describes — solves it on Acamar, and cross-checks the result against a
//! direct dense solve.
//!
//! Run with `cargo run --release --example heat_equation`.

use acamar::prelude::*;
use acamar::sparse::DenseMatrix;

/// Grid side (interior points per axis).
const N: usize = 24;
/// Edge temperatures: left, right, bottom, top.
const EDGES: [f32; 4] = [100.0, 0.0, 25.0, 75.0];

fn main() -> Result<(), SparseError> {
    // Interior unknowns of an N x N grid; the 5-point stencil couples
    // each cell to its neighbors, and boundary neighbors contribute their
    // fixed temperature to b.
    let a = generate::poisson2d::<f32>(N, N);
    let mut b = vec![0.0_f32; N * N];
    for y in 0..N {
        for x in 0..N {
            let i = y * N + x;
            if x == 0 {
                b[i] += EDGES[0];
            }
            if x == N - 1 {
                b[i] += EDGES[1];
            }
            if y == 0 {
                b[i] += EDGES[2];
            }
            if y == N - 1 {
                b[i] += EDGES[3];
            }
        }
    }

    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    let report = acamar.run(&a, &b)?;
    assert!(report.converged(), "heat system must converge");
    println!(
        "solved {}x{} plate with {} in {} iterations ({:.3} ms modeled)",
        N,
        N,
        report.final_solver(),
        report.solve.iterations,
        report.compute_seconds() * 1e3
    );

    // Cross-check against a dense direct solve (f64 for reference).
    let dense: DenseMatrix<f64> = a.cast::<f64>().to_dense();
    let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
    let reference = dense.solve(&b64)?;
    let max_err = report
        .solve
        .solution
        .iter()
        .zip(&reference)
        .map(|(&x, &r)| (x as f64 - r).abs())
        .fold(0.0, f64::max);
    println!("max deviation from direct solve: {max_err:.3e}");
    assert!(max_err < 1e-2, "iterative and direct solutions must agree");

    // Render the temperature field as a coarse ASCII heat map.
    println!("\ntemperature field (hot '#' .. cold ' '):");
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '%', '#'];
    let (lo, hi) = (0.0_f32, 100.0_f32);
    for y in (0..N).step_by(2) {
        let mut line = String::new();
        for x in 0..N {
            let t = report.solve.solution[y * N + x].clamp(lo, hi);
            let k = ((t - lo) / (hi - lo) * (ramp.len() - 1) as f32).round() as usize;
            line.push(ramp[k]);
        }
        println!("  {line}");
    }
    println!(
        "\ncorner check: near the {}-degree left edge the field reads {:.1}",
        EDGES[0],
        report.solve.solution[(N / 2) * N]
    );
    Ok(())
}
