//! Quickstart: solve a PDE-derived sparse system on the Acamar model.
//!
//! Builds the 2D Poisson operator (the canonical `Ax = b` source in the
//! paper's Section II), lets Acamar pick a solver and an unroll-factor
//! schedule, and prints the full hardware report.
//!
//! Run with `cargo run --release --example quickstart`.

use acamar::prelude::*;

fn main() -> Result<(), SparseError> {
    // -∇²u = f on a 64x64 grid, discretized with the 5-point stencil.
    let a = generate::poisson2d::<f32>(64, 64);
    let b = vec![1.0_f32; a.nrows()];

    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    let report = acamar.run(&a, &b)?;

    println!(
        "matrix: {} x {}, {} non-zeros",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!(
        "structure: symmetric = {}, strictly diagonally dominant = {}",
        report.structure.report.symmetric, report.structure.report.strictly_diagonally_dominant
    );
    println!(
        "solver: {} (recommended {}, {} switches)",
        report.final_solver(),
        report.structure.solver,
        report.solver_switches()
    );
    println!(
        "outcome: {} after {} iterations (final residual {:.2e})",
        report.solve.outcome,
        report.solve.iterations,
        report.solve.final_residual()
    );
    println!(
        "schedule: {} entries, {} reconfigurations per SpMV pass (MSID cut {} -> {})",
        report.plan.schedule.entries().len(),
        report.plan.schedule.changes_per_pass(),
        report.plan.reconfigs_before_msid,
        report.plan.reconfigs_after_msid
    );
    println!(
        "hardware: {:.3} ms compute + {:.3} ms reconfiguration",
        report.compute_seconds() * 1e3,
        (report.total_seconds() - report.compute_seconds()) * 1e3
    );
    println!(
        "SpMV resource underutilization: {:.1}% (Eq. 5)",
        100.0 * report.stats.spmv.underutilization()
    );
    println!(
        "achieved throughput: {:.1}% of peak",
        100.0 * report.stats.achieved_throughput()
    );

    // Verify the solution against the definition of the system.
    let r = a.mul_vec(&report.solve.solution)?;
    let err: f32 = r
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v).abs())
        .fold(0.0, f32::max);
    println!("max |Ax - b| = {err:.2e}");
    assert!(report.converged());
    Ok(())
}
