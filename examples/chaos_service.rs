//! Chaos engineering against the batch solve service.
//!
//! Runs the 64-job acceptance scenario of the fault-injection harness:
//! every fault category armed at a 25% per-job rate against a fully
//! hardened engine (panic isolation, deadlines, rescue ladder, reconfig
//! degrade, cache provenance guard), then prints the reconciled
//! robustness ledger. Because every injection decision is a pure function
//! of `(seed, category, job, site)`, re-running this binary replays the
//! exact same faults.
//!
//! Run with
//! `cargo run --release --features fault-injection --example chaos_service`.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, ResilienceConfig, SolveError, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::faultline::{FaultCategory, FaultInjector, FaultPlan};
use acamar::service::{Service, ServiceConfig, ServiceError, ServiceRequest};
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::generate;
use acamar::telemetry::{Counter, EventKind, RingRecorder};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed = 0xACA3;
    let rate = 0.25;
    let plan = FaultPlan::uniform(seed, rate);
    let injector = Arc::new(FaultInjector::new(plan));

    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    // The recorder captures the injection/outcome event stream alongside
    // the ledger; because the faults replay deterministically, so does
    // the normalized telemetry trace (see the chaos-replay test).
    let recorder = Arc::new(RingRecorder::new(1 << 17));
    let engine = Engine::new(Acamar::new(FabricSpec::alveo_u55c(), cfg))
        .with_recorder(recorder.clone())
        .with_resilience(
            ResilienceConfig::hardened()
                .with_deadline(Duration::from_secs(5))
                .with_iteration_budget(50_000),
        )
        .with_fault_injection(Arc::clone(&injector));

    println!(
        "chaos service: seed {seed:#x}, {:.0}% rate in all {} fault categories, {} workers\n",
        rate * 100.0,
        FaultCategory::COUNT,
        engine.workers()
    );

    let families = [
        Arc::new(generate::poisson2d::<f64>(16, 16)),
        Arc::new(generate::poisson2d::<f64>(20, 12)),
        Arc::new(generate::convection_diffusion_2d::<f64>(14, 14, 2.0)),
    ];
    let jobs: Vec<SolveJob<f64>> = (0..64)
        .map(|k| {
            let a = &families[k % families.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 5 * k) % 13) as f64 * 0.05)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect();

    let batch = engine.solve_jobs(jobs);
    let r = &batch.robustness;

    println!(
        "batch: {} jobs, {} converged",
        batch.jobs(),
        batch.converged
    );
    println!(
        "engine survived: {} panics caught, {} deadline misses, 0 uncontained panics\n",
        r.panics_caught, r.deadline_misses
    );

    println!("fault ledger (detected + recovered + exhausted == injected):");
    println!(
        "  {:<18} {:>8} {:>9} {:>9} {:>9}",
        "category", "injected", "detected", "recovered", "exhausted"
    );
    for category in FaultCategory::ALL {
        let t = r.tallies[category.index()];
        println!(
            "  {:<18} {:>8} {:>9} {:>9} {:>9}",
            category.label(),
            t.injected,
            t.detected,
            t.recovered,
            t.exhausted
        );
    }
    println!(
        "  ledger reconciles: {} ({} injected, {} survived)\n",
        r.accounted(),
        r.injected_total(),
        r.survived_total()
    );

    println!("rescue-depth histogram (rungs climbed -> jobs):");
    for (depth, count) in r.rescue_depths.iter().enumerate() {
        if *count > 0 {
            println!("  {depth} rungs: {count} jobs");
        }
    }
    if !r.exhausted_jobs.is_empty() {
        println!("\njobs lost after every rescue: {:?}", r.exhausted_jobs);
        for &i in &r.exhausted_jobs {
            if let Err(e) = &batch.results[i] {
                println!("  job {i}: {e}");
            } else {
                println!("  job {i}: diverged after the full ladder");
            }
        }
    }

    println!("\nfabric damage absorbed:");
    println!(
        "  reconfig aborts: {}, lost-area cycles: {}, degraded runs present: {}",
        batch.stats.reconfig_aborts, batch.stats.lost_area_cycles, batch.stats.degraded_to_static
    );
    println!(
        "  cache: {} hits / {} misses, {} provenance collisions absorbed",
        batch.cache.hits, batch.cache.misses, batch.cache.collisions
    );

    let first_typed = batch.results.iter().find_map(|r| r.as_ref().err());
    if let Some(e) = first_typed {
        let kind = match e {
            SolveError::Invalid(_) => "invalid input",
            SolveError::Solver(_) => "solver error",
            SolveError::Panicked { .. } => "isolated panic",
            SolveError::DeadlineExceeded { .. } => "deadline",
        };
        println!("\nexample typed failure ({kind}): {e}");
    }

    // --- Telemetry joins the ledger ----------------------------------
    // The fault counters are the same numbers as the reconciled ledger,
    // published through a second independent channel; the event stream
    // additionally carries the (category, site) of every injection.
    let counters = recorder.counters();
    let events = recorder.drain();
    let injected_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
        .count();
    println!("\ntelemetry fault join:");
    println!(
        "  counters: injected {}, detected {}, recovered {}, exhausted {} \
         (ledger injected: {})",
        counters[Counter::FaultsInjected.index()],
        counters[Counter::FaultsDetected.index()],
        counters[Counter::FaultsRecovered.index()],
        counters[Counter::FaultsExhausted.index()],
        r.injected_total()
    );
    println!(
        "  event stream: {} FaultInjected events over {} total events ({} dropped)",
        injected_events,
        events.len(),
        recorder.dropped()
    );
    println!(
        "  replay note: re-running with seed {seed:#x} reproduces this trace \
         (normalize timestamps to compare)"
    );

    // --- Fault injection under load: the serving layer under fire ----
    // The same fault plan, now behind admission and sharding: each shard
    // derives its own engine injector (`seed ^ (shard + 1)`) so
    // concurrent shard batches never mix ledgers, while the three
    // *service* seams (dispatcher panic/stall, queue drop) roll from one
    // service-level injector keyed by the global admission sequence. The
    // smoke asserts the self-healing invariants hold even while faults
    // land — every ticket resolves with a typed outcome, the service
    // ledger reconciles, no telemetry event is dropped, and shutdown
    // drains clean.
    let service_ring = Arc::new(RingRecorder::new(1 << 17));
    let service = Service::<f64>::with_fault_plan(
        Acamar::new(
            FabricSpec::alveo_u55c(),
            AcamarConfig::paper()
                .with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000)),
        ),
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(64)
            .with_retry_budget(2)
            .with_restart_backoff(Duration::from_millis(1))
            .with_resilience(
                ResilienceConfig::hardened()
                    .with_deadline(Duration::from_secs(5))
                    .with_iteration_budget(50_000),
            ),
        FaultPlan::uniform(seed, rate),
        Some(Arc::clone(&service_ring)),
    );
    let tickets: Vec<_> = (0..32)
        .map(|k| {
            let a = &families[k % families.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 5 * k) % 13) as f64 * 0.05)
                .collect();
            service
                .submit(ServiceRequest::new(Arc::clone(a), b))
                .expect("stream fits the queue bound")
        })
        .collect();
    let (mut ok, mut solve_errors, mut shed, mut given_up) = (0u32, 0u32, 0u32, 0u32);
    for t in tickets {
        match t.wait() {
            Ok(report) => {
                assert!(report.converged());
                ok += 1;
            }
            Err(ServiceError::Solve(_)) => solve_errors += 1,
            Err(ServiceError::Shed { .. }) => shed += 1,
            Err(ServiceError::ShardRestarted { .. }) | Err(ServiceError::Dropped { .. }) => {
                given_up += 1
            }
        }
    }
    println!(
        "\nserving layer under fire ({} shards, same rate):",
        service.shards()
    );
    println!(
        "  32 requests: {ok} converged, {solve_errors} typed solve failures, \
         {shed} shed, {given_up} retry-budget exhausted"
    );
    let c = service_ring.counters();
    println!(
        "  faults through the front-end: injected {}, recovered {}; \
         rescue rungs {}",
        c[Counter::FaultsInjected.index()],
        c[Counter::FaultsRecovered.index()],
        c[Counter::RescueRungs.index()],
    );
    println!(
        "  self-healing: {} dispatcher restarts, {} job retries, \
         {} failovers, {} health transitions",
        c[Counter::DispatcherRestarts.index()],
        c[Counter::JobsRetried.index()],
        c[Counter::Failovers.index()],
        c[Counter::HealthTransitions.index()],
    );

    // The service's own seam ledger, in the same reconciliation
    // vocabulary as the engine's robustness report.
    let ledger = service.service_ledger();
    println!("\nservice seam ledger (detected + recovered + exhausted == injected):");
    println!(
        "  {:<18} {:>8} {:>9} {:>9} {:>9}",
        "category", "injected", "detected", "recovered", "exhausted"
    );
    for category in FaultCategory::SERVICE {
        let t = ledger.category(category);
        println!(
            "  {:<18} {:>8} {:>9} {:>9} {:>9}",
            category.label(),
            t.injected,
            t.detected,
            t.recovered,
            t.exhausted
        );
    }
    println!(
        "  ledger reconciles: {} ({} injected, {} pending)",
        ledger.accounted(),
        ledger.injected_total(),
        ledger.pending
    );
    assert!(ledger.accounted(), "service seam ledger must reconcile");
    assert_eq!(
        ok + solve_errors + shed + given_up,
        32,
        "every ticket resolves"
    );
    assert_eq!(
        service.dropped_events(),
        0,
        "no telemetry dropped under fire"
    );

    // Machine-readable artifact for CI: the reconciled seam ledger.
    if let Ok(path) = std::env::var("CHAOS_LEDGER_OUT") {
        let mut json = String::from("{\"seed\":");
        json.push_str(&format!("{seed},\"rate\":{rate},\"categories\":["));
        for (i, category) in FaultCategory::SERVICE.iter().enumerate() {
            let t = ledger.category(*category);
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"category\":\"{}\",\"injected\":{},\"detected\":{},\
                 \"recovered\":{},\"exhausted\":{}}}",
                category.label(),
                t.injected,
                t.detected,
                t.recovered,
                t.exhausted
            ));
        }
        json.push_str(&format!(
            "],\"accounted\":{},\"restarts\":{},\"retries\":{}}}\n",
            ledger.accounted(),
            c[Counter::DispatcherRestarts.index()],
            c[Counter::JobsRetried.index()],
        ));
        std::fs::write(&path, json).expect("write chaos ledger artifact");
        println!("  seam ledger written to {path}");
    }
    drop(service);
    println!("  service shut down clean under injected faults");
}
