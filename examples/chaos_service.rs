//! Chaos engineering against the batch solve service.
//!
//! Runs the 64-job acceptance scenario of the fault-injection harness:
//! every fault category armed at a 25% per-job rate against a fully
//! hardened engine (panic isolation, deadlines, rescue ladder, reconfig
//! degrade, cache provenance guard), then prints the reconciled
//! robustness ledger. Because every injection decision is a pure function
//! of `(seed, category, job, site)`, re-running this binary replays the
//! exact same faults.
//!
//! Run with
//! `cargo run --release --features fault-injection --example chaos_service`.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, ResilienceConfig, SolveError, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::faultline::{FaultCategory, FaultInjector, FaultPlan};
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::generate;
use acamar::telemetry::{Counter, EventKind, RingRecorder};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed = 0xACA3;
    let rate = 0.25;
    let plan = FaultPlan::uniform(seed, rate);
    let injector = Arc::new(FaultInjector::new(plan));

    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2000));
    // The recorder captures the injection/outcome event stream alongside
    // the ledger; because the faults replay deterministically, so does
    // the normalized telemetry trace (see the chaos-replay test).
    let recorder = Arc::new(RingRecorder::new(1 << 17));
    let engine = Engine::new(Acamar::new(FabricSpec::alveo_u55c(), cfg))
        .with_recorder(recorder.clone())
        .with_resilience(
            ResilienceConfig::hardened()
                .with_deadline(Duration::from_secs(5))
                .with_iteration_budget(50_000),
        )
        .with_fault_injection(Arc::clone(&injector));

    println!(
        "chaos service: seed {seed:#x}, {:.0}% rate in all {} fault categories, {} workers\n",
        rate * 100.0,
        FaultCategory::COUNT,
        engine.workers()
    );

    let families = [
        Arc::new(generate::poisson2d::<f64>(16, 16)),
        Arc::new(generate::poisson2d::<f64>(20, 12)),
        Arc::new(generate::convection_diffusion_2d::<f64>(14, 14, 2.0)),
    ];
    let jobs: Vec<SolveJob<f64>> = (0..64)
        .map(|k| {
            let a = &families[k % families.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 5 * k) % 13) as f64 * 0.05)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect();

    let batch = engine.solve_jobs(jobs);
    let r = &batch.robustness;

    println!(
        "batch: {} jobs, {} converged",
        batch.jobs(),
        batch.converged
    );
    println!(
        "engine survived: {} panics caught, {} deadline misses, 0 uncontained panics\n",
        r.panics_caught, r.deadline_misses
    );

    println!("fault ledger (detected + recovered + exhausted == injected):");
    println!(
        "  {:<18} {:>8} {:>9} {:>9} {:>9}",
        "category", "injected", "detected", "recovered", "exhausted"
    );
    for category in FaultCategory::ALL {
        let t = r.tallies[category.index()];
        println!(
            "  {:<18} {:>8} {:>9} {:>9} {:>9}",
            category.label(),
            t.injected,
            t.detected,
            t.recovered,
            t.exhausted
        );
    }
    println!(
        "  ledger reconciles: {} ({} injected, {} survived)\n",
        r.accounted(),
        r.injected_total(),
        r.survived_total()
    );

    println!("rescue-depth histogram (rungs climbed -> jobs):");
    for (depth, count) in r.rescue_depths.iter().enumerate() {
        if *count > 0 {
            println!("  {depth} rungs: {count} jobs");
        }
    }
    if !r.exhausted_jobs.is_empty() {
        println!("\njobs lost after every rescue: {:?}", r.exhausted_jobs);
        for &i in &r.exhausted_jobs {
            if let Err(e) = &batch.results[i] {
                println!("  job {i}: {e}");
            } else {
                println!("  job {i}: diverged after the full ladder");
            }
        }
    }

    println!("\nfabric damage absorbed:");
    println!(
        "  reconfig aborts: {}, lost-area cycles: {}, degraded runs present: {}",
        batch.stats.reconfig_aborts, batch.stats.lost_area_cycles, batch.stats.degraded_to_static
    );
    println!(
        "  cache: {} hits / {} misses, {} provenance collisions absorbed",
        batch.cache.hits, batch.cache.misses, batch.cache.collisions
    );

    let first_typed = batch.results.iter().find_map(|r| r.as_ref().err());
    if let Some(e) = first_typed {
        let kind = match e {
            SolveError::Invalid(_) => "invalid input",
            SolveError::Solver(_) => "solver error",
            SolveError::Panicked { .. } => "isolated panic",
            SolveError::DeadlineExceeded { .. } => "deadline",
        };
        println!("\nexample typed failure ({kind}): {e}");
    }

    // --- Telemetry joins the ledger ----------------------------------
    // The fault counters are the same numbers as the reconciled ledger,
    // published through a second independent channel; the event stream
    // additionally carries the (category, site) of every injection.
    let counters = recorder.counters();
    let events = recorder.drain();
    let injected_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
        .count();
    println!("\ntelemetry fault join:");
    println!(
        "  counters: injected {}, detected {}, recovered {}, exhausted {} \
         (ledger injected: {})",
        counters[Counter::FaultsInjected.index()],
        counters[Counter::FaultsDetected.index()],
        counters[Counter::FaultsRecovered.index()],
        counters[Counter::FaultsExhausted.index()],
        r.injected_total()
    );
    println!(
        "  event stream: {} FaultInjected events over {} total events ({} dropped)",
        injected_events,
        events.len(),
        recorder.dropped()
    );
    println!(
        "  replay note: re-running with seed {seed:#x} reproduces this trace \
         (normalize timestamps to compare)"
    );
}
