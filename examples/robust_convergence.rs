//! Robust convergence: the Solver Modifier rescuing a bad first choice.
//!
//! The paper's Matrix Structure unit only checks *symmetry* before
//! configuring CG (finding eigenvalues in hardware is too expensive), so
//! a symmetric **indefinite** matrix gets CG first — which breaks down.
//! A static CG accelerator is stuck; Acamar's Solver Modifier reconfigures
//! the fabric with the next solver and still converges (paper Table II's
//! "Acamar" column).
//!
//! Run with `cargo run --release --example robust_convergence`.

use acamar::prelude::*;
use acamar::sparse::generate::spread_spectrum_blocks;

fn main() -> Result<(), SparseError> {
    // Symmetric, NOT diagonally dominant (coupling 0.6 > 0.5), indefinite
    // (sign-alternating blocks), with a mild spectrum spread so BiCG-STAB
    // can still handle it.
    let a = spread_spectrum_blocks::<f32>(600, 0.6, 10.0, true, 42);
    let b = vec![1.0_f32; a.nrows()];

    // A static CG design diverges and, as the paper notes, a divergent
    // static accelerator means "false or no solution ... and unbounded
    // execution time".
    let static_cg =
        StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::ConjugateGradient, 16);
    let static_run = static_cg.run(&a, &b, &ConvergenceCriteria::paper())?;
    println!(
        "static CG design: {} after {} iterations",
        static_run.solve.outcome, static_run.solve.iterations
    );
    assert!(!static_run.solve.converged());

    // Acamar: picks CG too (the matrix is symmetric), sees the breakdown,
    // and reconfigures.
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
    let report = acamar.run(&a, &b)?;
    println!("\nacamar attempts:");
    for (i, attempt) in report.attempts.iter().enumerate() {
        println!(
            "  {}. {:<9} -> {} ({} iterations)",
            i + 1,
            attempt.solver.to_string(),
            attempt.outcome,
            attempt.iterations
        );
    }
    assert!(report.converged(), "Acamar must rescue the solve");
    assert!(report.solver_switches() >= 1, "a switch must have happened");
    println!(
        "\nconverged with {} after {} solver reconfiguration(s); \
         total modeled time {:.3} ms ({:.3} ms of it reconfiguration)",
        report.final_solver(),
        report.solver_switches(),
        report.total_seconds() * 1e3,
        (report.total_seconds() - report.compute_seconds()) * 1e3
    );

    // The returned solution really solves the system.
    let r = a.mul_vec(&report.solve.solution)?;
    let res: f32 = r
        .iter()
        .zip(&b)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f32>()
        .sqrt();
    let bnorm: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    println!(
        "relative residual of returned solution: {:.2e}",
        res / bnorm
    );
    Ok(())
}
