//! Solver shoot-out on a stiff SPD system: plain CG vs diagonal PCG vs
//! ILU(0)-PCG vs Conjugate Residual vs Scheduled Relaxation Jacobi.
//!
//! The paper's Table I lists all of these methods; Acamar's hardware
//! implements three of them, and the rest are the natural software
//! toolbox around the same `Ax = b` problems. This example shows why
//! preconditioning matters on badly scaled systems — and why the paper's
//! solver-selection problem is real (every method has a regime).
//!
//! Run with `cargo run --release --example preconditioning`.

use acamar::prelude::*;
use acamar::solvers::{
    chebyshev_weights, conjugate_gradient, conjugate_residual, ilu_pcg, jacobi_spectrum_bounds,
    preconditioned_cg, scheduled_relaxation_jacobi, ConvergenceSummary,
};

fn main() -> Result<(), SparseError> {
    // An SPD system with diagonal entries spread over 6 decades: plain CG
    // crawls, scaling-aware preconditioners flatten the spectrum.
    let a = generate::ill_conditioned_spd::<f64>(1000, 1e6, 3, 42);
    let b = vec![1.0; a.nrows()];
    let criteria = ConvergenceCriteria::paper().with_max_iterations(20_000);

    println!(
        "system: n = {}, nnz = {}, diagonal spread ~1e6\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>10}",
        "method", "iterations", "residual", "SpMV-equiv ops", "rate"
    );

    let report = |name: &str, rep: &SolveReport<f64>| {
        let s = ConvergenceSummary::from_history(&rep.residual_history, 20);
        println!(
            "{:<22} {:>10} {:>12.2e} {:>14} {:>10.4}",
            name,
            rep.iterations,
            rep.final_residual(),
            rep.counts.spmv_calls,
            s.rate
        );
    };

    let mut k = SoftwareKernels::new();
    let cg = conjugate_gradient(&a, &b, None, &criteria, &mut k)?;
    report("CG", &cg);

    let mut k = SoftwareKernels::new();
    let pcg = preconditioned_cg(&a, &b, None, &criteria, &mut k)?;
    report("PCG (diagonal)", &pcg);

    let ilu = ilu_pcg(&a, &b, None, &criteria)?;
    report("PCG (ILU(0))", &ilu);

    let mut k = SoftwareKernels::new();
    let cr = conjugate_residual(&a, &b, None, &criteria, &mut k)?;
    report("Conjugate Residual", &cr);

    let (lo, hi) = jacobi_spectrum_bounds(&a);
    let schedule = chebyshev_weights(lo, hi, 8);
    let mut k = SoftwareKernels::new();
    let srj = scheduled_relaxation_jacobi(&a, &b, None, &schedule, &criteria, &mut k)?;
    report("SRJ (Chebyshev, P=8)", &srj);

    assert!(pcg.converged() && ilu.converged());
    assert!(
        pcg.iterations <= cg.iterations,
        "diagonal scaling must help on this system"
    );
    println!(
        "\nreading: the diagonal preconditioner absorbs the 1e6 scaling \
         almost entirely; ILU(0) does at least as well at higher per-\
         iteration cost. No single method dominates every regime — the \
         premise of Acamar's reconfigurable solver selection."
    );
    Ok(())
}
