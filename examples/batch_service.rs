//! A batch solve service over the Acamar accelerator.
//!
//! Simulates the workload the `acamar-engine` crate exists for: a stream
//! of `(matrix, rhs)` jobs in which most matrices repeat a sparsity
//! pattern the service has already seen — time steps of the same PDE,
//! parameter sweeps, and multi-RHS solves. The engine fingerprints each
//! pattern and caches the structure decision + fine-grained unroll plan,
//! so only the first job per pattern pays for Acamar's host-side decision
//! loops.
//!
//! Run with `cargo run --release --example batch_service`.

use acamar::core::{Acamar, AcamarConfig};
use acamar::engine::{Engine, SolveJob};
use acamar::fabric::FabricSpec;
use acamar::solvers::{ConvergenceCriteria, SolverKind};
use acamar::sparse::generate;
use acamar::telemetry::{timeline, RingRecorder};
use std::sync::Arc;

fn main() {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2500));
    // A live event ring turns the service observable: every span, cache
    // decision, and fabric reconfiguration lands here, ready for the
    // timeline renderer or a JSON-lines/Prometheus export.
    let recorder = Arc::new(RingRecorder::new(1 << 16));
    let engine =
        Engine::new(Acamar::new(FabricSpec::alveo_u55c(), cfg)).with_recorder(recorder.clone());
    println!(
        "batch service: {} workers over one Alveo U55C model\n",
        engine.workers()
    );

    // --- Phase 1: a heterogeneous job stream -------------------------
    // Three recurring problem families; 36 jobs cycling through them
    // with fresh right-hand sides (e.g. successive time steps).
    let families = [
        (
            "poisson 32x32",
            Arc::new(generate::poisson2d::<f64>(32, 32)),
        ),
        (
            "poisson 48x24",
            Arc::new(generate::poisson2d::<f64>(48, 24)),
        ),
        (
            "convection-diffusion 30x30",
            Arc::new(generate::convection_diffusion_2d::<f64>(30, 30, 2.0)),
        ),
    ];
    let jobs: Vec<SolveJob<f64>> = (0..36)
        .map(|k| {
            let (_, a) = &families[k % families.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 7 * k) % 13) as f64 * 0.05)
                .collect();
            SolveJob::new(Arc::clone(a), b)
        })
        .collect();

    let batch = engine.solve_jobs(jobs);
    println!("phase 1 — mixed stream");
    println!(
        "  {} jobs, {} converged, {:.0} jobs/s",
        batch.jobs(),
        batch.converged,
        batch.jobs_per_second()
    );
    println!(
        "  cache: {} misses (distinct patterns), {} hits, {:.0}% hit rate",
        batch.cache.misses,
        batch.cache.hits,
        100.0 * batch.cache.hit_rate()
    );
    println!(
        "  decision-loop work avoided: {} row/entry traversals",
        batch.cache.plan_build_cycles_saved
    );
    print!("  attempts by solver:");
    for kind in SolverKind::ALL {
        let n = batch.attempts_by_solver[kind.index()];
        if n > 0 {
            print!(" {kind}={n}");
        }
    }
    println!("\n");

    // --- Phase 2: the multi-RHS fast path ----------------------------
    // Eight right-hand sides against one already-warm matrix: zero
    // misses, one shared plan.
    let (name, a) = &families[0];
    let rhss: Vec<Vec<f64>> = (0..8)
        .map(|k| {
            (0..a.nrows())
                .map(|i| ((i * (k + 1)) % 11) as f64 * 0.1)
                .collect()
        })
        .collect();
    // Drain phase 1's events so the timeline below shows phase 2 alone.
    let _phase1_events = recorder.drain();
    let multi = engine.solve_batch(a, &rhss).unwrap();
    println!("phase 2 — 8 RHS against warm {name}");
    println!(
        "  {} jobs, misses {}, hits {}, all converged: {}",
        multi.jobs(),
        multi.cache.misses,
        multi.cache.hits,
        multi.all_converged()
    );
    println!(
        "  merged fabric stats: {:.2e} useful FLOPs, {} SpMV reconfigurations, peak area {:.1} mm²\n",
        multi.stats.useful_flops as f64,
        multi.stats.spmv_reconfig_events,
        multi.stats.peak_area_mm2
    );

    // --- Telemetry: timeline + metrics snapshot ----------------------
    let events = recorder.drain();
    println!("phase 2 telemetry — reconfiguration timeline");
    println!("{}", timeline::render_summary(&events));
    println!("{}", timeline::render_job(&events, 0, 72));
    println!("prometheus snapshot (batch report)");
    for line in multi
        .prometheus_text()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(8)
    {
        println!("  {line}");
    }
    println!();

    // --- Lifetime counters -------------------------------------------
    let c = engine.counters();
    println!("engine lifetime");
    println!(
        "  jobs completed: {}; cache entries: {}; hits/misses: {}/{}",
        c.jobs_completed, c.cache.entries, c.cache.hits, c.cache.misses
    );
    println!(
        "  total plan-build work saved: {} traversals",
        c.cache.plan_build_cycles_saved
    );
    println!(
        "  pool idle (observed hand-off gaps): {:.3} ms; telemetry events dropped: {}",
        c.pool_idle_nanos as f64 / 1e6,
        recorder.dropped()
    );
}
