//! The serving front-end, end to end: admission → shards → scrape.
//!
//! Drives `acamar-service` the way a deployment would: a stream of
//! requests with mixed priorities and deadlines is *submitted* (not
//! batch-called) into a 2-shard service with fingerprint-affinity
//! routing, backpressure is demonstrated against a deliberately tiny
//! queue, and the Prometheus snapshot + ring trace are scraped over the
//! HTTP endpoint. Doubles as the CI `service-smoke` job: it asserts
//! every ticket resolves, zero telemetry events are dropped, and
//! shutdown is clean (drop drains the queues and joins every thread).
//!
//! Run with `cargo run --release --example batch_service`.

use acamar::core::{Acamar, AcamarConfig};
use acamar::fabric::FabricSpec;
use acamar::service::{
    AdmissionError, Priority, RoutingPolicy, ScrapeServer, Service, ServiceConfig, ServiceRequest,
};
use acamar::solvers::ConvergenceCriteria;
use acamar::sparse::generate;
use acamar::telemetry::RingRecorder;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("scrape endpoint up");
    write!(s, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").expect("request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("response");
    out
}

fn main() {
    let cfg =
        AcamarConfig::paper().with_criteria(ConvergenceCriteria::paper().with_max_iterations(2500));
    let acamar = Acamar::new(FabricSpec::alveo_u55c(), cfg);
    let ring = Arc::new(RingRecorder::new(1 << 16));
    let service = Arc::new(Service::<f64>::with_recorder(
        acamar,
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(128)
            .with_routing(RoutingPolicy::Affinity),
        Arc::clone(&ring),
    ));
    println!(
        "service: {} shards × {} worker(s), affinity routing, queue bound {}\n",
        service.shards(),
        service.config().workers_per_shard,
        service.config().queue_capacity
    );

    // --- Phase 1: a mixed-priority streaming workload ----------------
    // Three recurring structural families (time steps of the same PDEs);
    // affinity routing pins each family to one shard, so only the first
    // request per family pays the analysis.
    let families = [
        (
            "poisson 24x24",
            Arc::new(generate::poisson2d::<f64>(24, 24)),
        ),
        (
            "poisson 28x14",
            Arc::new(generate::poisson2d::<f64>(28, 14)),
        ),
        (
            "convection-diffusion 20x20",
            Arc::new(generate::convection_diffusion_2d::<f64>(20, 20, 2.0)),
        ),
    ];
    let tickets: Vec<_> = (0..48)
        .map(|k| {
            let (_, a) = &families[k % families.len()];
            let b: Vec<f64> = (0..a.nrows())
                .map(|i| 1.0 + ((i + 7 * k) % 13) as f64 * 0.05)
                .collect();
            let priority = match k % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            service
                .submit(
                    ServiceRequest::new(Arc::clone(a), b)
                        .with_tenant((k % 4) as u32)
                        .with_priority(priority)
                        .with_deadline(Duration::from_secs(30)),
                )
                .expect("stream fits the queue bound")
        })
        .collect();

    let mut converged = 0;
    for t in tickets {
        let report = t.wait().expect("healthy systems solve");
        assert!(report.converged());
        converged += 1;
    }
    println!("phase 1 — 48 mixed-priority requests");
    println!(
        "  converged: {converged}/48, completions: {}",
        service.completions()
    );
    for s in 0..service.shards() {
        let c = service.engine(s).counters();
        println!(
            "  shard {s}: {} jobs, cache {} hits / {} misses",
            c.jobs_completed, c.cache.hits, c.cache.misses
        );
    }
    let total_misses: u64 = (0..service.shards())
        .map(|s| service.engine(s).counters().cache.misses)
        .sum();
    assert_eq!(
        total_misses,
        families.len() as u64,
        "affinity: exactly one analysis per structural family"
    );
    for (name, a) in &families {
        let warm: Vec<usize> = (0..service.shards())
            .filter(|&s| service.is_warm(s, a))
            .collect();
        println!("  {name}: warm on shard(s) {warm:?}");
        assert_eq!(warm.len(), 1, "each family warms exactly one shard");
    }
    println!();

    // --- Phase 2: backpressure against a tiny queue ------------------
    let small = Service::<f64>::new(
        Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()),
        ServiceConfig::default()
            .with_shards(1)
            .with_queue_capacity(2),
    );
    small.pause();
    let (_, a) = &families[0];
    let held: Vec<_> = (0..2)
        .map(|k| {
            small
                .submit(ServiceRequest::new(
                    Arc::clone(a),
                    vec![1.0 + k as f64; a.nrows()],
                ))
                .expect("under the bound")
        })
        .collect();
    let rejected = small
        .submit(ServiceRequest::new(Arc::clone(a), vec![9.0; a.nrows()]))
        .expect_err("third submission overflows capacity 2");
    let AdmissionError::QueueFull {
        depth, retry_after, ..
    } = rejected;
    println!("phase 2 — backpressure");
    println!("  queue full at depth {depth}; typed rejection says retry after {retry_after:?}");
    small.resume();
    for t in held {
        assert!(t.wait().expect("held jobs drain after resume").converged());
    }
    drop(small);
    println!("  held jobs drained after resume; small service shut down clean\n");

    // --- Phase 3: the scrape endpoint --------------------------------
    let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    println!("phase 3 — scrape endpoint at http://{}", server.addr());
    let health = scrape(server.addr(), "/healthz");
    assert!(health.ends_with("ok\n"), "healthz: {health}");
    let metrics = scrape(server.addr(), "/metrics");
    assert!(metrics.contains("acamar_service_jobs_admitted_total 48"));
    assert!(metrics.contains("acamar_service_shard_jobs_total"));
    for line in metrics
        .lines()
        .filter(|l| l.contains("acamar_service") && !l.starts_with('#'))
        .take(10)
    {
        println!("  {line}");
    }
    let trace = scrape(server.addr(), "/trace");
    let body = trace.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    println!("  /trace drained {} event lines", body.lines().count());
    drop(server);
    println!();

    // --- Clean shutdown ----------------------------------------------
    assert_eq!(service.dropped_events(), 0, "no telemetry events dropped");
    assert_eq!(service.total_queue_depth(), 0);
    let service = Arc::try_unwrap(service).expect("scrape server released its handle");
    drop(service); // joins every dispatcher; queues are already empty
    println!("clean shutdown: 0 dropped events, queues drained, threads joined");
}
