//! An HPCG-flavored efficiency study.
//!
//! The paper opens with the observation that top supercomputers sustain
//! under 5 % of their peak FLOPS on HPCG (conjugate gradients on a 3D
//! 27/7-point problem). This example runs the HPCG-style kernel — CG on a
//! 3D Poisson operator — through three execution models and compares the
//! fraction of peak each sustains:
//!
//! * the GTX 1650 Super model (cuSPARSE-style SpMV, bandwidth-bound);
//! * a static FPGA design with a fixed `SpMV_URB`;
//! * Acamar, with its per-set unroll schedule.
//!
//! Run with `cargo run --release --example hpcg_like`.

use acamar::gpu::estimate_solver_run;
use acamar::prelude::*;

fn main() -> Result<(), SparseError> {
    let a = generate::poisson3d::<f32>(16, 16, 16); // 4096 unknowns, 7-pt
    let b = vec![1.0_f32; a.nrows()];
    let criteria = ConvergenceCriteria::paper();
    println!(
        "HPCG-style problem: 16^3 grid, {} unknowns, {} non-zeros\n",
        a.nrows(),
        a.nnz()
    );

    // GPU: take the iteration count from a software CG run, then model
    // the time the card would spend.
    let mut sw = SoftwareKernels::new();
    let cg = acamar::solvers::conjugate_gradient(&a, &b, None, &criteria, &mut sw)?;
    assert!(cg.converged());
    let gpu = GpuSpec::gtx1650_super();
    let est = estimate_solver_run(&gpu, &a, SolverKind::ConjugateGradient, cg.iterations);
    println!(
        "GTX 1650 Super model: {} CG iterations in {:.3} ms -> {:.1} GFLOP/s \
         = {:.2}% of its {:.1} TFLOPS peak",
        cg.iterations,
        est.total_s * 1e3,
        est.effective_gflops,
        100.0 * est.fraction_of_peak,
        gpu.peak_flops() / 1e12
    );

    // Static FPGA design.
    let spec = FabricSpec::alveo_u55c();
    let static_run = StaticAccelerator::new(spec.clone(), SolverKind::ConjugateGradient, 16)
        .run(&a, &b, &criteria)?;
    println!(
        "static FPGA (URB=16): {:.3} ms, {:.1}% of allocated peak, \
         {:.1}% SpMV slots wasted",
        static_run.compute_seconds() * 1e3,
        100.0 * static_run.stats.achieved_throughput(),
        100.0 * static_run.stats.spmv.underutilization()
    );

    // Acamar.
    let rep = Acamar::new(spec, AcamarConfig::paper()).run(&a, &b)?;
    println!(
        "acamar:               {:.3} ms, {:.1}% of allocated peak, \
         {:.1}% SpMV slots wasted",
        rep.compute_seconds() * 1e3,
        100.0 * rep.stats.achieved_throughput(),
        100.0 * rep.stats.spmv.underutilization()
    );
    assert!(rep.converged());
    assert!(
        rep.stats.achieved_throughput() > est.fraction_of_peak,
        "the whole point: sized-to-fit hardware sustains a far larger \
         fraction of its peak than a general-purpose GPU"
    );
    println!(
        "\nreading: the GPU leaves >99% of its peak idle on this kernel \
         (memory-bound, warp lanes wasted on 7-NNZ rows), echoing the \
         paper's HPCG motivation; Acamar sizes its MAC array to the rows \
         and sustains most of what it instantiates."
    );
    Ok(())
}
