//! Matrix Market workflow: load a `.mtx` file, analyze it the way
//! Acamar's Matrix Structure unit does, and solve it.
//!
//! SuiteSparse (the paper's dataset source) distributes matrices in
//! Matrix Market format; this example writes one out, reads it back, and
//! runs the full pipeline on it.
//!
//! Run with `cargo run --release --example matrix_market`.

use acamar::core::MatrixStructureUnit;
use acamar::prelude::*;
use acamar::sparse::io::{read_matrix_market, write_matrix_market};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend this came from SuiteSparse: a non-symmetric
    // convection-diffusion operator, serialized to Matrix Market.
    let original = generate::convection_diffusion_2d::<f32>(24, 24, 2.5);
    let mut mtx_bytes = Vec::new();
    write_matrix_market(&original, &mut mtx_bytes)?;
    println!(
        "wrote {} bytes of Matrix Market ({} x {}, {} entries)",
        mtx_bytes.len(),
        original.nrows(),
        original.ncols(),
        original.nnz()
    );

    let a = read_matrix_market::<f32, _>(mtx_bytes.as_slice())?;
    assert_eq!(a, original, "round trip must be lossless");

    // What the Matrix Structure unit would decide.
    let decision = MatrixStructureUnit::new().analyze(&a);
    println!(
        "analysis: symmetric={}, strictly dominant={}, bandwidth={}",
        decision.report.symmetric,
        decision.report.strictly_diagonally_dominant,
        decision.report.bandwidth
    );
    println!("recommended solver: {}", decision.solver);

    let b = vec![1.0_f32; a.nrows()];
    let report = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper()).run(&a, &b)?;
    println!(
        "solved: {} via {} in {} iterations, {:.1}% SpMV underutilization",
        report.solve.outcome,
        report.final_solver(),
        report.solve.iterations,
        100.0 * report.stats.spmv.underutilization()
    );
    assert!(report.converged());
    assert_eq!(report.final_solver(), SolverKind::BiCgStab);
    Ok(())
}
