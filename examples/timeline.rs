//! Cycle-stamped execution timeline of one solve.
//!
//! Enables the fabric trace and prints the first iterations of a CG solve
//! on a mixed-sparsity matrix: phase changes, per-segment SpMV execution
//! at each scheduled unroll factor, and the DFX reconfiguration stalls
//! between segments — the behavioral-simulator view of Acamar's Resource
//! Decision loop.
//!
//! Run with `cargo run --release --example timeline`.

use acamar::core::{AcamarConfig, FineGrainedReconfigUnit};
use acamar::fabric::FabricKernels;
use acamar::prelude::*;
use acamar::sparse::generate::RowDistribution;

fn main() -> Result<(), SparseError> {
    // Half sparse rows, half dense rows: the schedule will alternate
    // unroll factors and the engine must reconfigure between them.
    let a = generate::diagonally_dominant::<f32>(
        512,
        RowDistribution::Bimodal {
            low: 3,
            high: 32,
            high_fraction: 0.5,
        },
        1.5,
        21,
    );
    let b = vec![1.0_f32; a.nrows()];

    let cfg = AcamarConfig::paper().with_sampling_rate(8);
    let plan = FineGrainedReconfigUnit::new(cfg.clone()).plan(&a);
    println!("schedule ({} entries):", plan.schedule.entries().len());
    for e in plan.schedule.entries() {
        println!(
            "  rows {:>4}..{:<4} U={}",
            e.rows.start, e.rows.end, e.unroll
        );
    }

    let mut hw =
        FabricKernels::new(FabricSpec::alveo_u55c(), plan.schedule.clone(), 4).with_trace(64);
    let report = acamar::solvers::jacobi(&a, &b, None, &ConvergenceCriteria::paper(), &mut hw)?;
    assert!(report.converged());

    println!("\nfirst trace events (cycle-stamped):");
    let trace = hw.trace().expect("tracing enabled");
    for e in trace.events().iter().take(40) {
        println!("  {}", e.describe());
    }
    if trace.truncated() {
        println!("  ... ({} further events not recorded)", trace.dropped());
    }
    println!(
        "\nsolve: {} iterations; {} SpMV-region reconfigurations total",
        report.iterations,
        hw.reconfig_controller()
            .count(acamar::fabric::RegionKind::SpmvKernel)
    );
    Ok(())
}
