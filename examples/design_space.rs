//! Design-space exploration: SamplingRate and rOpt trade-offs
//! (paper Section VII) on one workload.
//!
//! Sweeps the two Acamar parameters on a circuit-style matrix with uneven
//! rows and prints how per-pass SpMV underutilization, latency, and the
//! reconfiguration rate move — the trade-off behind the paper's choice of
//! `SamplingRate = 32`, `rOpt = 8`.
//!
//! Run with `cargo run --release --example design_space`.

use acamar::core::FineGrainedReconfigUnit;
use acamar::fabric::spmv::execute_rows;
use acamar::prelude::*;
use acamar::sparse::generate::RowDistribution;

fn pass_stats(a: &CsrMatrix<f32>, cfg: &AcamarConfig) -> (f64, u64, usize) {
    let spec = FabricSpec::alveo_u55c();
    let plan = FineGrainedReconfigUnit::new(cfg.clone()).plan(a);
    let mut agg = acamar::fabric::SpmvExecution::default();
    for e in plan.schedule.entries() {
        agg = agg.merge(&execute_rows(a, e.rows.clone(), e.unroll, &spec));
    }
    (
        agg.underutilization(),
        agg.cycles,
        plan.schedule.changes_per_pass(),
    )
}

fn main() {
    // Bimodal rows: mostly sparse with occasional dense "supply rails",
    // like the circuit matrices the paper evaluates.
    let a = generate::random_pattern::<f32>(
        4096,
        RowDistribution::Bimodal {
            low: 4,
            high: 48,
            high_fraction: 0.08,
        },
        7,
    );
    println!(
        "workload: {} rows, {} nnz, mean NNZ/row {:.1}\n",
        a.nrows(),
        a.nnz(),
        a.nnz() as f64 / a.nrows() as f64
    );

    println!("-- SamplingRate sweep (rOpt = 8, tolerance = 0.15) --");
    println!(
        "{:>6}  {:>8}  {:>10}  {:>14}",
        "SR", "R.U.", "cycles", "reconf/pass"
    );
    for sr in [4usize, 8, 16, 32, 64, 128, 512, 4096] {
        let cfg = AcamarConfig::paper().with_sampling_rate(sr);
        let (ru, cycles, changes) = pass_stats(&a, &cfg);
        println!("{sr:>6}  {:>7.1}%  {cycles:>10}  {changes:>14}", 100.0 * ru);
    }

    println!("\n-- rOpt sweep (SamplingRate = 64) --");
    println!(
        "{:>6}  {:>8}  {:>10}  {:>14}",
        "rOpt", "R.U.", "cycles", "reconf/pass"
    );
    for r_opt in [0usize, 1, 2, 4, 8, 12] {
        let cfg = AcamarConfig::paper()
            .with_sampling_rate(64)
            .with_r_opt(r_opt);
        let (ru, cycles, changes) = pass_stats(&a, &cfg);
        println!(
            "{r_opt:>6}  {:>7.1}%  {cycles:>10}  {changes:>14}",
            100.0 * ru
        );
    }

    println!(
        "\nreading: finer sampling lowers underutilization but multiplies \
         reconfiguration events; the MSID chain claws the event count back \
         with little effect on R.U. or latency — hence the paper's \
         SamplingRate=32, rOpt=8."
    );
}
