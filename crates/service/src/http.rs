//! Minimal std-only scrape endpoint.
//!
//! One accept-loop thread serving four `GET` routes over HTTP/1.1
//! (connection-per-request, `Connection: close`):
//!
//! - `/metrics` — the service's Prometheus snapshot
//!   ([`Service::prometheus_text`]);
//! - `/trace` — drains the ring recorder as JSON lines
//!   ([`Service::trace_json`]);
//! - `/health` — per-shard supervision state as JSON
//!   ([`Service::health_json`]);
//! - `/healthz` — process liveness (`ok`).
//!
//! This is a scrape endpoint, not a web server: no keep-alive, no
//! chunking, no TLS. Bind it to loopback (`127.0.0.1:0` picks a free
//! port; [`ScrapeServer::addr`] reports it).

use crate::service::Service;
use acamar_sparse::Scalar;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running scrape endpoint; dropping it stops the accept loop.
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and serves `service`'s
    /// metrics and trace until dropped.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<T: Scalar>(service: Arc<Service<T>>, bind: &str) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = std::thread::spawn({
            let shutdown = Arc::clone(&shutdown);
            move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(mut stream) = stream {
                        let _ = handle(&mut stream, &service);
                    }
                }
            }
        });
        Ok(ScrapeServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop awake so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn handle<T: Scalar>(stream: &mut TcpStream, service: &Service<T>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut n = 0;
    // Read until the end of the request head (or the buffer fills —
    // anything longer than 1 KiB is not a scrape we serve).
    while n < buf.len() {
        let got = stream.read(&mut buf[n..])?;
        if got == 0 {
            break;
        }
        n += got;
        if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                service.prometheus_text(),
            ),
            "/trace" => ("200 OK", "application/jsonlines", service.trace_json()),
            "/health" => ("200 OK", "application/json", service.health_json()),
            "/healthz" => ("200 OK", "text/plain", String::from("ok\n")),
            _ => ("404 Not Found", "text/plain", String::from("not found\n")),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceConfig, ServiceRequest};
    use acamar_core::{Acamar, AcamarConfig};
    use acamar_fabric::FabricSpec;
    use acamar_sparse::generate;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("response");
        out
    }

    #[test]
    fn scrape_routes_serve_metrics_trace_and_health() {
        let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
        let service = Arc::new(Service::<f64>::new(
            acamar,
            ServiceConfig::default().with_shards(2),
        ));
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("admits")
            .wait()
            .expect("solves");
        let server = ScrapeServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let metrics = get(server.addr(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("acamar_service_shard_jobs_total"));
        assert!(metrics.contains("acamar_service_queue_depth 0"));
        let healthz = get(server.addr(), "/healthz");
        assert!(healthz.ends_with("ok\n"));
        let health = get(server.addr(), "/health");
        assert!(health.contains("\"state\":\"healthy\""), "{health}");
        assert!(health.contains("\"completions\":1"), "{health}");
        // No ring installed: the trace is served but empty.
        let trace = get(server.addr(), "/trace");
        assert!(trace.starts_with("HTTP/1.1 200 OK"));
        let missing = get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        drop(server);
    }
}
