//! Service construction knobs.

use acamar_engine::ResilienceConfig;
use std::time::Duration;

/// How admitted jobs are mapped onto engine shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Route by [`PatternFingerprint`] affinity: the shard is a pure
    /// function of the matrix's sparsity pattern
    /// ([`shard_for`](crate::shard_for)), so repeat structural classes
    /// always land on the shard that already holds the warm compiled
    /// plan and pooled workspaces.
    ///
    /// [`PatternFingerprint`]: acamar_engine::PatternFingerprint
    Affinity,
    /// Cycle shards in admission order, ignoring the pattern. The A/B
    /// baseline the affinity bench and tests compare against.
    RoundRobin,
    /// Pick a shard pseudo-randomly (deterministic in `seed` and the
    /// admission sequence). The open-loop load-generator's "no affinity"
    /// arm.
    Random {
        /// Stream seed; the same seed and submission order reproduce the
        /// same shard choices.
        seed: u64,
    },
}

/// Scheduling class of one admitted job. Lower classes dispatch first;
/// [`ServiceConfig::starvation_bound`] promotes any job that has waited
/// too long to the front class, so low-priority tenants cannot starve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; dispatched before all other classes.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Throughput/batch traffic; yields to the other classes until the
    /// starvation bound promotes it.
    Low,
}

impl Priority {
    /// Number of scheduling classes.
    pub const COUNT: usize = 3;

    /// Every class, dispatch order first.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense class index (`High = 0` … `Low = 2`).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Configuration of a [`Service`](crate::Service).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine shards; each owns its own [`PlanCache`], workspace pool,
    /// and worker threads. Clamped to at least 1.
    ///
    /// [`PlanCache`]: acamar_engine::PlanCache
    pub shards: usize,
    /// Worker threads per shard engine (also the dispatch wave size).
    /// Clamped to at least 1.
    pub workers_per_shard: usize,
    /// Bound on each shard's admission queue; a submit that would exceed
    /// it is rejected with
    /// [`AdmissionError::QueueFull`](crate::AdmissionError::QueueFull)
    /// carrying a retry-after estimate. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Shard routing policy.
    pub routing: RoutingPolicy,
    /// Once a queued job has waited this long it is promoted to the
    /// front scheduling class regardless of its [`Priority`] — the
    /// bounded-wait guarantee against priority inversion.
    pub starvation_bound: Duration,
    /// Lower bound on the retry-after carried by queue-full rejections
    /// (the estimate is `depth × EWMA(per-job service time) / workers`,
    /// floored here so an idle service never advertises zero).
    pub retry_after_floor: Duration,
    /// Hardening configuration installed on every shard engine.
    pub resilience: ResilienceConfig,
    /// Consecutive dispatch failures before a shard's health drops from
    /// `Healthy` to `Suspect`. Count-based (not wall-clock) so replays
    /// walk the same state sequence. Clamped to at least 1.
    pub suspect_after: u32,
    /// Consecutive dispatch failures before the shard's circuit breaker
    /// opens (`Broken`). Clamped to at least `suspect_after`.
    pub break_after: u32,
    /// Requests diverted away from a `Broken` shard before its breaker
    /// half-opens and the next request is admitted as a probe. Clamped
    /// to at least 1.
    pub probe_after: u32,
    /// Delivery retries a job failed by a dispatcher panic or queue drop
    /// may consume before its ticket resolves with a typed error
    /// ([`ServiceError::ShardRestarted`] / [`ServiceError::Dropped`]).
    ///
    /// [`ServiceError::ShardRestarted`]: crate::ServiceError::ShardRestarted
    /// [`ServiceError::Dropped`]: crate::ServiceError::Dropped
    pub retry_budget: u32,
    /// Base of the supervisor's restart backoff: before respawning a
    /// crashed dispatcher the supervisor sleeps
    /// `base × 2^(restarts−1)` plus a seed-derived jitter below `base`
    /// (capped at 64 × base), so restart storms damp deterministically.
    pub restart_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 64,
            routing: RoutingPolicy::Affinity,
            starvation_bound: Duration::from_millis(250),
            retry_after_floor: Duration::from_millis(1),
            resilience: ResilienceConfig::default(),
            suspect_after: 2,
            break_after: 4,
            probe_after: 8,
            retry_budget: 2,
            restart_backoff: Duration::from_millis(1),
        }
    }
}

impl ServiceConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> ServiceConfig {
        self.shards = shards;
        self
    }

    /// Sets the per-shard worker count.
    pub fn with_workers_per_shard(mut self, workers: usize) -> ServiceConfig {
        self.workers_per_shard = workers;
        self
    }

    /// Sets the per-shard queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ServiceConfig {
        self.routing = routing;
        self
    }

    /// Sets the anti-starvation promotion bound.
    pub fn with_starvation_bound(mut self, bound: Duration) -> ServiceConfig {
        self.starvation_bound = bound;
        self
    }

    /// Sets the retry-after floor.
    pub fn with_retry_after_floor(mut self, floor: Duration) -> ServiceConfig {
        self.retry_after_floor = floor;
        self
    }

    /// Sets the shard engines' hardening configuration.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> ServiceConfig {
        self.resilience = resilience;
        self
    }

    /// Sets the failure streak that turns a shard `Suspect`.
    pub fn with_suspect_after(mut self, failures: u32) -> ServiceConfig {
        self.suspect_after = failures;
        self
    }

    /// Sets the failure streak that opens a shard's circuit breaker.
    pub fn with_break_after(mut self, failures: u32) -> ServiceConfig {
        self.break_after = failures;
        self
    }

    /// Sets the diverted-request count that half-opens the breaker.
    pub fn with_probe_after(mut self, diversions: u32) -> ServiceConfig {
        self.probe_after = diversions;
        self
    }

    /// Sets the per-job delivery retry budget.
    pub fn with_retry_budget(mut self, retries: u32) -> ServiceConfig {
        self.retry_budget = retries;
        self
    }

    /// Sets the supervisor restart backoff base.
    pub fn with_restart_backoff(mut self, base: Duration) -> ServiceConfig {
        self.restart_backoff = base;
        self
    }

    /// The config with its count fields clamped to their minima.
    pub(crate) fn normalized(mut self) -> ServiceConfig {
        self.shards = self.shards.max(1);
        self.workers_per_shard = self.workers_per_shard.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.suspect_after = self.suspect_after.max(1);
        self.break_after = self.break_after.max(self.suspect_after);
        self.probe_after = self.probe_after.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_dense_and_ordered() {
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn normalized_clamps_zero_counts() {
        let cfg = ServiceConfig::default()
            .with_shards(0)
            .with_workers_per_shard(0)
            .with_queue_capacity(0)
            .with_suspect_after(0)
            .with_probe_after(0)
            .normalized();
        assert_eq!(
            (cfg.shards, cfg.workers_per_shard, cfg.queue_capacity),
            (1, 1, 1)
        );
        assert_eq!((cfg.suspect_after, cfg.probe_after), (1, 1));
    }

    #[test]
    fn normalized_keeps_break_after_at_or_above_suspect_after() {
        let cfg = ServiceConfig::default()
            .with_suspect_after(6)
            .with_break_after(2)
            .normalized();
        assert_eq!(cfg.break_after, 6);
    }
}
