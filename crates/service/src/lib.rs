//! # acamar-service
//!
//! The long-running serving front-end over the batch engine: what turns
//! `Engine::solve_batch` (a blocking library call) into a service that
//! absorbs streaming traffic.
//!
//! Three mechanisms, layered:
//!
//! 1. **Bounded admission with backpressure** — every shard has a
//!    bounded queue; a submission that would overflow it is rejected at
//!    the door with a typed [`AdmissionError::QueueFull`] carrying a
//!    retry-after estimate derived from the shard's observed service
//!    rate, instead of queueing unboundedly or blocking the caller.
//! 2. **Priority + deadline scheduling** — three scheduling classes
//!    ([`Priority`]) with earliest-deadline-first order inside each, an
//!    anti-starvation bound that promotes any job that has waited too
//!    long ([`ServiceConfig::starvation_bound`]), and queue-side
//!    shedding of jobs whose deadline expired before a solver ever ran
//!    ([`ServiceError::Shed`]).
//! 3. **Fingerprint-affinity sharding** — `N` independent engine
//!    shards, each with its own plan cache and workspace pool; affinity
//!    routing ([`shard_for`]) maps each sparsity pattern to one shard as
//!    a *pure function of the fingerprint*, so every repeat of a
//!    structural class lands where its compiled SpMV plan is already
//!    warm. The `service` bench's A/B (affinity vs. random routing)
//!    measures exactly this effect on warm p99 latency.
//! 4. **Supervision and failover** — every shard has a count-based
//!    health state machine ([`ShardHealth`]:
//!    `Healthy → Suspect → Broken → Probing → Healthy`) fed by dispatch
//!    outcomes; a supervisor thread respawns a crashed dispatcher with a
//!    fresh engine and requeues what was in flight; a `Broken` shard's
//!    breaker deterministically spills new traffic down the
//!    [`shard_ranking`] until a half-open probe heals it; and the three
//!    service-seam fault categories (dispatcher panic/stall, queue drop)
//!    are accounted in a [`ServiceLedger`] with the same
//!    `detected + recovered + exhausted == injected` invariant the
//!    engine's robustness report uses.
//!
//! Scheduling affects *when and where* a job runs, never *what it
//! computes*: results are bitwise-identical to a direct
//! `Engine::solve_batch` of the same jobs, which the admission test
//! suite asserts.
//!
//! Observability rides on `acamar-telemetry`: install a ring recorder
//! ([`Service::with_recorder`]) and the service emits admission /
//! rejection / shed / dispatch events plus the matching counters, all
//! scrapeable over HTTP ([`ScrapeServer`]: `/metrics`, `/trace`,
//! `/healthz`).

#![warn(missing_docs)]

mod config;
mod health;
mod http;
mod queue;
mod router;
mod service;

pub use acamar_sparse::DeterminismPolicy;
pub use config::{Priority, RoutingPolicy, ServiceConfig};
pub use health::{ServiceLedger, ShardHealth};
pub use http::ScrapeServer;
pub use router::{shard_for, shard_ranking};
pub use service::{AdmissionError, Service, ServiceError, ServiceRequest, Ticket};
