//! Per-shard supervision: the health state machine, circuit breaker
//! bookkeeping, and the service-seam fault ledger.
//!
//! Every transition here is **count-based** — consecutive failures,
//! diverted-request counts, probe outcomes — never wall-clock-based, so a
//! replay of the same admission sequence walks the same state sequence
//! and emits the same telemetry regardless of machine speed. The one
//! wall-clock signal (dispatcher heartbeat staleness) is only consulted
//! by the explicit [`Service::check_stalls`](crate::Service::check_stalls)
//! watchdog, which deterministic replays simply do not call.

use acamar_engine::FaultTally;
use acamar_faultline::FaultCategory;
use acamar_telemetry::{Counter, EventKind, HealthState, TelemetrySink};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the guard from a poisoned lock. A panicking
/// holder (an injected dispatcher panic, or a genuine bug in one thread)
/// marks the mutex poisoned, but every structure the service guards this
/// way is kept consistent *before* any panic seam can fire, so the data
/// under a poisoned lock is still valid — refusing to serve it would
/// convert one thread's crash into a service-wide abort.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One shard's health, as the supervision state machine sees it.
///
/// ```text
///            consecutive failures          consecutive failures
///            >= suspect_after              >= break_after
/// Healthy ─────────────────────> Suspect ─────────────────────> Broken
///    ^                              │                            │ ▲
///    │ success                      │ success                    │ │ probe
///    │<─────────────────────────────┘     diverted requests      │ │ fails
///    │                                    >= probe_after         ▼ │
///    └────────────────────────────────────────────────────── Probing
///                         probe succeeds
/// ```
///
/// A dispatcher panic short-circuits straight to `Broken`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardHealth {
    /// Serving normally; affinity routing applies.
    Healthy,
    /// On watch: consecutive failures (or a stale heartbeat flagged by
    /// the watchdog) without yet tripping the breaker.
    Suspect,
    /// The circuit breaker is open: new affinity traffic deterministically
    /// spills to the next-ranked shard.
    Broken,
    /// Half-open: traffic is admitted again as probes; one success heals,
    /// one failure re-opens the breaker.
    Probing,
}

impl ShardHealth {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Broken => "broken",
            ShardHealth::Probing => "probing",
        }
    }

    pub(crate) fn telemetry(self) -> HealthState {
        match self {
            ShardHealth::Healthy => HealthState::Healthy,
            ShardHealth::Suspect => HealthState::Suspect,
            ShardHealth::Broken => HealthState::Broken,
            ShardHealth::Probing => HealthState::Probing,
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The count thresholds driving the state machine (from
/// [`ServiceConfig`](crate::ServiceConfig), pre-normalized).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HealthThresholds {
    pub suspect_after: u32,
    pub break_after: u32,
    pub probe_after: u32,
}

#[derive(Debug)]
struct HealthInner {
    state: ShardHealth,
    consecutive_failures: u32,
    /// Requests diverted away while `Broken`; reaching
    /// [`HealthThresholds::probe_after`] flips the breaker half-open.
    diverted: u32,
}

/// One shard's supervision cell. All mutations funnel through here so
/// every state change emits exactly one [`EventKind::HealthTransition`].
#[derive(Debug)]
pub(crate) struct HealthCell {
    inner: Mutex<HealthInner>,
}

impl HealthCell {
    pub fn new() -> HealthCell {
        HealthCell {
            inner: Mutex::new(HealthInner {
                state: ShardHealth::Healthy,
                consecutive_failures: 0,
                diverted: 0,
            }),
        }
    }

    pub fn state(&self) -> ShardHealth {
        lock_recover(&self.inner).state
    }

    fn transition(inner: &mut HealthInner, shard: usize, to: ShardHealth, sink: &TelemetrySink) {
        if inner.state == to {
            return;
        }
        sink.emit(EventKind::HealthTransition {
            shard: shard as u16,
            from: inner.state.telemetry(),
            to: to.telemetry(),
        });
        sink.counter_add(Counter::HealthTransitions, 1);
        inner.state = to;
    }

    /// A job dispatched on this shard resolved successfully: reset the
    /// failure streak and heal `Suspect`/`Probing` back to `Healthy`.
    pub fn record_success(&self, shard: usize, sink: &TelemetrySink) {
        let mut inner = lock_recover(&self.inner);
        inner.consecutive_failures = 0;
        if matches!(inner.state, ShardHealth::Suspect | ShardHealth::Probing) {
            Self::transition(&mut inner, shard, ShardHealth::Healthy, sink);
        }
    }

    /// A job dispatched on this shard resolved with an error: advance the
    /// failure streak through `Suspect` toward `Broken`; a failure while
    /// `Probing` re-opens the breaker immediately.
    pub fn record_failure(&self, shard: usize, th: HealthThresholds, sink: &TelemetrySink) {
        let mut inner = lock_recover(&self.inner);
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        match inner.state {
            ShardHealth::Probing => {
                inner.diverted = 0;
                Self::transition(&mut inner, shard, ShardHealth::Broken, sink);
            }
            ShardHealth::Healthy | ShardHealth::Suspect => {
                if inner.consecutive_failures >= th.break_after {
                    inner.diverted = 0;
                    Self::transition(&mut inner, shard, ShardHealth::Broken, sink);
                } else if inner.consecutive_failures >= th.suspect_after {
                    Self::transition(&mut inner, shard, ShardHealth::Suspect, sink);
                }
            }
            ShardHealth::Broken => {}
        }
    }

    /// Force a state (dispatcher panic → `Broken`; chaos hooks; the
    /// heartbeat watchdog's `Suspect`).
    pub fn force(&self, shard: usize, to: ShardHealth, sink: &TelemetrySink) {
        let mut inner = lock_recover(&self.inner);
        if to == ShardHealth::Broken {
            inner.diverted = 0;
        }
        Self::transition(&mut inner, shard, to, sink);
    }

    /// Flag a `Healthy` shard `Suspect` (stall self-report / watchdog).
    /// Returns whether a transition happened.
    pub fn mark_suspect(&self, shard: usize, sink: &TelemetrySink) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.state != ShardHealth::Healthy {
            return false;
        }
        Self::transition(&mut inner, shard, ShardHealth::Suspect, sink);
        true
    }

    /// The router found this shard `Broken`: count the diversion, and
    /// once `probe_after` requests have been turned away, flip the
    /// breaker half-open and admit this request as the probe. Returns
    /// `true` when the request should be admitted here (as a probe),
    /// `false` when it should spill to the next-ranked shard.
    pub fn divert_or_probe(
        &self,
        shard: usize,
        th: HealthThresholds,
        sink: &TelemetrySink,
    ) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.state != ShardHealth::Broken {
            // Raced with a heal or a probe admission: admit normally.
            return true;
        }
        inner.diverted = inner.diverted.saturating_add(1);
        if inner.diverted >= th.probe_after {
            inner.diverted = 0;
            Self::transition(&mut inner, shard, ShardHealth::Probing, sink);
            sink.emit(EventKind::BreakerProbe {
                shard: shard as u16,
            });
            sink.counter_add(Counter::BreakerProbes, 1);
            true
        } else {
            false
        }
    }
}

/// Snapshot of the service-seam fault ledger: per-category tallies in the
/// same `detected + recovered + exhausted == injected` vocabulary the
/// engine's `RobustnessReport` uses, but for the serving layer's own
/// seams (dispatcher panics/stalls, queue drops).
///
/// - **detected** — the fault was absorbed in place: a stalled dispatcher
///   slept and still delivered the wave (no retry needed);
/// - **recovered** — the delivery failed (panicked dispatcher, dropped
///   job) but a retry under the budget resolved the ticket with a
///   solution;
/// - **exhausted** — the ticket resolved with a typed error (retry
///   budget spent, or the retried solve itself failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLedger {
    /// Per-category tallies, indexed by [`FaultCategory::index`]. Engine
    /// seams stay zero here — they are the engine ledger's business.
    pub tallies: [FaultTally; FaultCategory::COUNT],
    /// Injected faults whose job has not yet resolved. Zero once every
    /// outstanding ticket has been fulfilled.
    pub pending: usize,
}

impl ServiceLedger {
    /// The tally for one category.
    pub fn category(&self, cat: FaultCategory) -> FaultTally {
        self.tallies[cat.index()]
    }

    /// Total faults injected across all categories.
    pub fn injected_total(&self) -> u64 {
        self.tallies.iter().map(|t| t.injected).sum()
    }

    /// Whether every injected fault is accounted for:
    /// `detected + recovered + exhausted == injected` in every category
    /// and nothing is still pending.
    pub fn accounted(&self) -> bool {
        self.pending == 0
            && self
                .tallies
                .iter()
                .all(|t| t.detected + t.recovered + t.exhausted == t.injected)
    }
}

/// The live ledger the dispatchers and supervisors write into.
///
/// Synchronously-absorbed faults (stalls) tally `detected` at the seam;
/// faults that force a retry park a pending entry keyed by admission
/// sequence, resolved to `recovered`/`exhausted` when that ticket
/// fulfills.
#[derive(Debug, Default)]
pub(crate) struct LedgerInner {
    tallies: Mutex<[FaultTally; FaultCategory::COUNT]>,
    pending: Mutex<HashMap<u64, Vec<FaultCategory>>>,
}

impl LedgerInner {
    pub fn new() -> LedgerInner {
        LedgerInner::default()
    }

    /// A fault fired and was absorbed on the spot (dispatcher stall).
    pub fn absorbed(&self, cat: FaultCategory) {
        let mut t = lock_recover(&self.tallies);
        t[cat.index()].injected += 1;
        t[cat.index()].detected += 1;
    }

    /// A fault fired and put admission `seq` on the retry path; the
    /// outcome is settled by [`LedgerInner::resolve`] when the ticket
    /// fulfills.
    pub fn deferred(&self, cat: FaultCategory, seq: u64) {
        lock_recover(&self.tallies)[cat.index()].injected += 1;
        lock_recover(&self.pending)
            .entry(seq)
            .or_default()
            .push(cat);
    }

    /// Admission `seq`'s ticket fulfilled: settle every fault pending on
    /// it — `recovered` when the ticket carries a solution, `exhausted`
    /// when it carries an error.
    pub fn resolve(&self, seq: u64, ok: bool) {
        let cats = match lock_recover(&self.pending).remove(&seq) {
            Some(cats) => cats,
            None => return,
        };
        let mut t = lock_recover(&self.tallies);
        for cat in cats {
            if ok {
                t[cat.index()].recovered += 1;
            } else {
                t[cat.index()].exhausted += 1;
            }
        }
    }

    pub fn snapshot(&self) -> ServiceLedger {
        ServiceLedger {
            tallies: *lock_recover(&self.tallies),
            pending: lock_recover(&self.pending).values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TH: HealthThresholds = HealthThresholds {
        suspect_after: 2,
        break_after: 4,
        probe_after: 3,
    };

    fn sink() -> TelemetrySink {
        TelemetrySink::disabled()
    }

    #[test]
    fn failure_streak_walks_healthy_suspect_broken() {
        let cell = HealthCell::new();
        assert_eq!(cell.state(), ShardHealth::Healthy);
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Healthy);
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Suspect);
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Suspect);
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Broken);
    }

    #[test]
    fn success_resets_the_streak_and_heals_suspect() {
        let cell = HealthCell::new();
        cell.record_failure(0, TH, &sink());
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Suspect);
        cell.record_success(0, &sink());
        assert_eq!(cell.state(), ShardHealth::Healthy);
        // The streak restarted: one more failure is below suspect_after.
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Healthy);
    }

    #[test]
    fn breaker_diverts_then_half_opens_then_heals_or_reopens() {
        let cell = HealthCell::new();
        cell.force(0, ShardHealth::Broken, &sink());
        // probe_after = 3: two diversions spill, the third probes.
        assert!(!cell.divert_or_probe(0, TH, &sink()));
        assert!(!cell.divert_or_probe(0, TH, &sink()));
        assert!(cell.divert_or_probe(0, TH, &sink()));
        assert_eq!(cell.state(), ShardHealth::Probing);
        // Probe failure re-opens; the diversion count restarts.
        cell.record_failure(0, TH, &sink());
        assert_eq!(cell.state(), ShardHealth::Broken);
        assert!(!cell.divert_or_probe(0, TH, &sink()));
        assert!(!cell.divert_or_probe(0, TH, &sink()));
        assert!(cell.divert_or_probe(0, TH, &sink()));
        // Probe success heals.
        cell.record_success(0, &sink());
        assert_eq!(cell.state(), ShardHealth::Healthy);
    }

    #[test]
    fn ledger_accounts_absorbed_deferred_and_resolved_faults() {
        let ledger = LedgerInner::new();
        ledger.absorbed(FaultCategory::DispatcherStall);
        ledger.deferred(FaultCategory::DispatcherPanic, 7);
        ledger.deferred(FaultCategory::QueueDrop, 9);
        let mid = ledger.snapshot();
        assert_eq!(mid.injected_total(), 3);
        assert_eq!(mid.pending, 2);
        assert!(!mid.accounted(), "pending faults are not yet accounted");

        ledger.resolve(7, true);
        ledger.resolve(9, false);
        ledger.resolve(11, true); // no-op: nothing pending on 11
        let done = ledger.snapshot();
        assert!(done.accounted());
        assert_eq!(done.category(FaultCategory::DispatcherStall).detected, 1);
        assert_eq!(done.category(FaultCategory::DispatcherPanic).recovered, 1);
        assert_eq!(done.category(FaultCategory::QueueDrop).exhausted, 1);
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        acamar_faultline::silence_injected_panics();
        let m = std::sync::Arc::new(Mutex::new(5_u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            std::panic::panic_any(acamar_faultline::InjectedPanic { job: 0 });
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 5);
    }
}
