//! The serving front-end: bounded admission, shard dispatch, tickets.

use crate::config::{Priority, RoutingPolicy, ServiceConfig};
use crate::health::{
    lock_recover, HealthCell, HealthThresholds, LedgerInner, ServiceLedger, ShardHealth,
};
use crate::queue::Scheduler;
use crate::router::{mix64, shard_for, shard_ranking};
use acamar_core::{Acamar, AcamarRunReport};
use acamar_engine::{Engine, PatternFingerprint, SolveError, SolveJob};
use acamar_faultline::{
    silence_injected_panics, FaultCategory, FaultInjector, FaultPlan, InjectedPanic,
};
use acamar_sparse::{CsrMatrix, DeterminismPolicy, Scalar};
use acamar_telemetry::export::{json_lines, PrometheusWriter};
use acamar_telemetry::{Counter, EventKind, Recorder, RingRecorder, TelemetrySink};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One admission request: a solve job plus its serving metadata.
#[derive(Debug, Clone)]
pub struct ServiceRequest<T> {
    /// Coefficient matrix (shared, so repeat submissions of one system
    /// don't clone the CSR arrays).
    pub matrix: Arc<CsrMatrix<T>>,
    /// Right-hand side.
    pub rhs: Vec<T>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<T>>,
    /// Submitting tenant (accounting only; scheduling keys on
    /// `priority`, not identity).
    pub tenant: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Wall-clock budget measured from admission; a job still queued
    /// when it expires is shed before solving
    /// ([`ServiceError::Shed`]).
    pub deadline: Option<Duration>,
    /// Determinism tier the solve runs under. `Deterministic` (the
    /// default) keeps the bitwise replay contract; `Fast` routes the
    /// hot kernels through the reassociated 4-lane paths.
    pub policy: DeterminismPolicy,
    /// Sticky routing fingerprint for sequence-scoped requests. Under
    /// affinity routing the request routes by this fingerprint (the
    /// pattern the sequence was opened on) instead of the submitted
    /// matrix's, so every step of an evolving sequence lands on the one
    /// shard whose plan cache holds the sequence's patched plans.
    /// `None` (the default) routes by the matrix pattern as always.
    pub sequence: Option<PatternFingerprint>,
}

impl<T> ServiceRequest<T> {
    /// A normal-priority, deadline-free request from tenant 0.
    pub fn new(matrix: Arc<CsrMatrix<T>>, rhs: Vec<T>) -> ServiceRequest<T> {
        ServiceRequest {
            matrix,
            rhs,
            guess: None,
            tenant: 0,
            priority: Priority::Normal,
            deadline: None,
            policy: DeterminismPolicy::Deterministic,
            sequence: None,
        }
    }

    /// Sets the warm-start guess.
    pub fn with_guess(mut self, x0: Vec<T>) -> ServiceRequest<T> {
        self.guess = Some(x0);
        self
    }

    /// Sets the submitting tenant.
    pub fn with_tenant(mut self, tenant: u32) -> ServiceRequest<T> {
        self.tenant = tenant;
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> ServiceRequest<T> {
        self.priority = priority;
        self
    }

    /// Sets the admission-relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ServiceRequest<T> {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the determinism tier.
    pub fn with_policy(mut self, policy: DeterminismPolicy) -> ServiceRequest<T> {
        self.policy = policy;
        self
    }

    /// Pins affinity routing to `fingerprint` — typically
    /// [`Sequence::fingerprint`](acamar_engine::Sequence::fingerprint) —
    /// so every step of a sequence keeps hitting the shard that holds
    /// its (possibly band-patched) plans even as the pattern drifts.
    pub fn with_sequence(mut self, fingerprint: PatternFingerprint) -> ServiceRequest<T> {
        self.sequence = Some(fingerprint);
        self
    }
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The routed shard's queue is at capacity. Back off for at least
    /// `retry_after` (estimated drain time of the queue ahead of you)
    /// before resubmitting.
    QueueFull {
        /// The shard the job routed to.
        shard: usize,
        /// Its queue depth at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
        /// Estimated time until the shard can accept again.
        retry_after: Duration,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                shard,
                depth,
                capacity,
                retry_after,
            } => write!(
                f,
                "shard {shard} queue full ({depth}/{capacity}); retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl AdmissionError {
    /// The rejection's backoff hint.
    pub fn retry_after(&self) -> Duration {
        match self {
            AdmissionError::QueueFull { retry_after, .. } => *retry_after,
        }
    }
}

/// Why an *admitted* job did not produce a solution.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The job's deadline expired while it was still queued; it was shed
    /// before reaching a solver.
    Shed {
        /// The shard that shed it.
        shard: usize,
        /// How long it had been queued when shed.
        waited: Duration,
    },
    /// The solve itself failed (invalid input, divergence past the
    /// rescue ladder, isolated panic, engine-level deadline).
    Solve(SolveError),
    /// The job was in flight on a dispatcher that panicked, and its
    /// delivery retry budget ([`ServiceConfig::retry_budget`]) was spent
    /// before a respawned dispatcher could deliver it.
    ShardRestarted {
        /// The shard whose dispatcher crashed.
        shard: usize,
        /// Delivery retries the job consumed before giving up.
        retries: u32,
    },
    /// The job was silently dropped between queue and dispatch (a
    /// `QueueDrop` fault) more times than the retry budget allowed.
    Dropped {
        /// The shard that lost the job.
        shard: usize,
        /// Delivery retries the job consumed before giving up.
        retries: u32,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Shed { shard, waited } => {
                write!(f, "shed on shard {shard} after queueing {waited:?}")
            }
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::ShardRestarted { shard, retries } => write!(
                f,
                "lost to a dispatcher crash on shard {shard} after {retries} retries"
            ),
            ServiceError::Dropped { shard, retries } => {
                write!(f, "dropped on shard {shard} after {retries} retries")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// `true` for queue-side shedding (the solver never ran).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServiceError::Shed { .. })
    }
}

/// What fulfilling a ticket delivers: the outcome plus serving metadata.
type Outcome<T> = (Result<AcamarRunReport<T>, ServiceError>, u64, Duration);

/// Completion slot shared between a [`Ticket`] and the shard dispatcher.
pub(crate) struct TicketState<T: Scalar> {
    slot: Mutex<Option<Outcome<T>>>,
    cv: Condvar,
}

impl<T: Scalar> TicketState<T> {
    fn new() -> TicketState<T> {
        TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(
        &self,
        result: Result<AcamarRunReport<T>, ServiceError>,
        index: u64,
        latency: Duration,
    ) {
        *lock_recover(&self.slot) = Some((result, index, latency));
        self.cv.notify_all();
    }
}

impl<T: Scalar> fmt::Debug for TicketState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketState").finish_non_exhaustive()
    }
}

/// Handle to one admitted job; [`Ticket::wait`] blocks until a shard
/// dispatcher fulfills it. The service's [`Drop`] drains every queue, so
/// a ticket from a dropped service still resolves.
#[derive(Debug)]
pub struct Ticket<T: Scalar> {
    state: Arc<TicketState<T>>,
    shard: usize,
    seq: u64,
    tenant: u32,
}

impl<T: Scalar> Ticket<T> {
    /// The shard the job routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The job's admission sequence number (also its telemetry job id).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Blocks until the job completes (solved, failed, or shed).
    pub fn wait(self) -> Result<AcamarRunReport<T>, ServiceError> {
        self.wait_outcome().0
    }

    /// [`Ticket::wait`] plus the job's global completion index (the
    /// order shard dispatchers finished jobs in, across the whole
    /// service) — what the scheduling tests assert exact orders on.
    pub fn wait_with_index(self) -> (Result<AcamarRunReport<T>, ServiceError>, u64) {
        let (result, index, _) = self.wait_outcome();
        (result, index)
    }

    /// [`Ticket::wait`] plus the job's admission-to-completion latency
    /// (queue wait + solve, as the dispatcher observed it) — what the
    /// open-loop load-generator bench records.
    pub fn wait_timed(self) -> (Result<AcamarRunReport<T>, ServiceError>, Duration) {
        let (result, _, latency) = self.wait_outcome();
        (result, latency)
    }

    fn wait_outcome(self) -> Outcome<T> {
        let mut slot = lock_recover(&self.state.slot);
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.state.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued job as the shard dispatcher sees it.
struct Waiting<T: Scalar> {
    job: SolveJob<T>,
    seq: u64,
    admitted_at: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState<T>>,
    priority: Priority,
    /// Delivery attempts already consumed (0 on first admission; bumped
    /// each time a crash/drop requeues the job).
    attempt: u32,
}

/// One job the dispatcher has popped but not yet resolved. Entries live
/// in [`ShardShared::in_flight`] so a crashed dispatcher's supervisor can
/// see exactly what was stranded and requeue it.
struct InFlight<T: Scalar> {
    /// `None` once the job has been handed to the engine (a crash after
    /// that point cannot retry the work it no longer holds).
    job: Option<SolveJob<T>>,
    seq: u64,
    attempt: u32,
    priority: Priority,
    admitted_at: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState<T>>,
    /// Marked by the `QueueDrop` seam: the job is silently lost between
    /// pop and dispatch and must take the retry path.
    dropped: bool,
}

/// State shared between the admission path and one shard's dispatcher.
struct ShardShared<T: Scalar> {
    state: Mutex<ShardState<T>>,
    cv: Condvar,
    /// Mirror of the queue depth for lock-free scrapes.
    depth: AtomicUsize,
    /// EWMA of per-job service nanos, feeding retry-after estimates.
    ema_nanos: AtomicU64,
    /// The shard's engine, in a swappable slot: the supervisor replaces
    /// it with a fresh [`Engine::respawn`] after a dispatcher crash.
    engine: Mutex<Arc<Engine>>,
    /// Jobs popped but not yet resolved; the supervisor's crash-recovery
    /// ledger.
    in_flight: Mutex<Vec<InFlight<T>>>,
    /// The shard's supervision state machine.
    health: HealthCell,
    /// Dispatcher liveness tick, bumped once per wave.
    heartbeat: AtomicU64,
    /// Nanos since `epoch` at the last heartbeat, for the explicit
    /// [`Service::check_stalls`] watchdog.
    heartbeat_at: AtomicU64,
    /// Reference point for `heartbeat_at`.
    epoch: Instant,
    /// Times the supervisor has respawned this shard's dispatcher.
    restarts: AtomicU64,
}

impl<T: Scalar> ShardShared<T> {
    /// Records dispatcher liveness (pure atomics: no telemetry, so the
    /// normalized event stream is untouched).
    fn beat(&self) {
        self.heartbeat.fetch_add(1, Ordering::Relaxed);
        self.heartbeat_at
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

struct ShardState<T: Scalar> {
    sched: Scheduler<Waiting<T>>,
    paused: bool,
    shutdown: bool,
    /// Chaos hook ([`Service::crash_shard`]): the dispatcher panics at
    /// the top of its next loop, exercising the real supervisor path.
    crash: bool,
}

/// The serving front-end over `N` engine shards.
///
/// Construction spawns one dispatcher thread per shard, each owning an
/// [`Engine`] (its own plan cache, workspace pool, and worker threads).
/// [`Service::submit`] routes by the configured [`RoutingPolicy`] —
/// affinity routing sends every repeat of a sparsity pattern to the one
/// shard that already compiled its plan — and either enqueues the job
/// (returning a [`Ticket`]) or rejects it with a typed, retry-after-
/// carrying [`AdmissionError`] when that shard's bounded queue is full.
///
/// Dropping the service is a clean shutdown: every queued job is drained
/// (solved or shed) so no ticket is left dangling, then the dispatcher
/// threads are joined.
///
/// ```
/// use acamar_core::{Acamar, AcamarConfig};
/// use acamar_fabric::FabricSpec;
/// use acamar_service::{Service, ServiceConfig, ServiceRequest};
/// use acamar_sparse::generate;
/// use std::sync::Arc;
///
/// let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
/// let service = Service::<f64>::new(acamar, ServiceConfig::default().with_shards(2));
/// let a = Arc::new(generate::poisson2d::<f64>(12, 12));
/// let ticket = service
///     .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
///     .unwrap();
/// assert!(ticket.wait().unwrap().converged());
/// ```
pub struct Service<T: Scalar> {
    cfg: ServiceConfig,
    shards: Vec<Arc<ShardShared<T>>>,
    /// Supervisor threads (one per shard); each owns its dispatcher.
    threads: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    rr: AtomicU64,
    rand: AtomicU64,
    completions: Arc<AtomicU64>,
    /// Admissions per determinism tier, indexed by
    /// [`DeterminismPolicy::ALL`] order (Deterministic, Fast).
    policy_admitted: [AtomicU64; 2],
    sink: TelemetrySink,
    ring: Option<Arc<RingRecorder>>,
    /// Service-seam fault accounting (always present; all-zero without a
    /// fault plan).
    ledger: Arc<LedgerInner>,
}

impl<T: Scalar> fmt::Debug for Service<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.shards.len())
            .field("queued", &self.total_queue_depth())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> Service<T> {
    /// A service over `acamar` with no telemetry and no fault injection.
    pub fn new(acamar: Acamar, cfg: ServiceConfig) -> Service<T> {
        Service::build(acamar, cfg, None, None)
    }

    /// A service whose shards and admission path record into `ring`:
    /// admission/shed/dispatch events and counters from the front-end,
    /// plus every engine-level event from the shards. The ring also
    /// powers [`Service::trace_json`] and the scrape endpoint's
    /// `/trace` route.
    pub fn with_recorder(
        acamar: Acamar,
        cfg: ServiceConfig,
        ring: Arc<RingRecorder>,
    ) -> Service<T> {
        Service::build(acamar, cfg, Some(ring), None)
    }

    /// A chaos service: each shard gets its own [`FaultInjector`] derived
    /// from `plan` with a per-shard seed (`seed ^ (shard + 1)`), so
    /// concurrent shard batches never share an injector ledger while the
    /// whole run stays reproducible from one seed. Optionally records
    /// into `ring` as in [`Service::with_recorder`].
    pub fn with_fault_plan(
        acamar: Acamar,
        cfg: ServiceConfig,
        plan: FaultPlan,
        ring: Option<Arc<RingRecorder>>,
    ) -> Service<T> {
        Service::build(acamar, cfg, ring, Some(plan))
    }

    fn build(
        acamar: Acamar,
        cfg: ServiceConfig,
        ring: Option<Arc<RingRecorder>>,
        faults: Option<FaultPlan>,
    ) -> Service<T> {
        let cfg = cfg.normalized();
        let completions = Arc::new(AtomicU64::new(0));
        let ledger = Arc::new(LedgerInner::new());
        // The service-seam injector is shared by every shard and keyed by
        // the *global* admission sequence, so a job's fault decisions are
        // stable no matter which shard failover lands it on. Engine seams
        // stay per-shard (below) exactly as before.
        let svc_injector: Option<Arc<FaultInjector>> = faults.as_ref().and_then(|plan| {
            let mut p = FaultPlan::new(plan.seed());
            for cat in FaultCategory::SERVICE {
                p = p.with_rate(cat, plan.rate(cat));
            }
            if p.is_quiet() {
                None
            } else {
                silence_injected_panics();
                Some(Arc::new(FaultInjector::new(p)))
            }
        });
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut threads = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let mut engine = Engine::with_workers(acamar.clone(), cfg.workers_per_shard)
                .with_resilience(cfg.resilience.clone());
            if let Some(r) = &ring {
                engine = engine.with_recorder(Arc::clone(r) as Arc<dyn Recorder>);
            }
            if let Some(plan) = &faults {
                let mut p = FaultPlan::new(plan.seed() ^ (shard as u64 + 1));
                for cat in FaultCategory::ENGINE {
                    p = p.with_rate(cat, plan.rate(cat));
                }
                engine = engine.with_fault_injection(Arc::new(FaultInjector::new(p)));
            }
            let shared = Arc::new(ShardShared {
                state: Mutex::new(ShardState {
                    sched: Scheduler::new(),
                    paused: false,
                    shutdown: false,
                    crash: false,
                }),
                cv: Condvar::new(),
                depth: AtomicUsize::new(0),
                ema_nanos: AtomicU64::new(0),
                engine: Mutex::new(Arc::new(engine)),
                in_flight: Mutex::new(Vec::new()),
                health: HealthCell::new(),
                heartbeat: AtomicU64::new(0),
                heartbeat_at: AtomicU64::new(0),
                epoch: Instant::now(),
                restarts: AtomicU64::new(0),
            });
            let seed = faults.as_ref().map(|p| p.seed()).unwrap_or(0);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("acamar-supervise-{shard}"))
                    .spawn({
                        let shared = Arc::clone(&shared);
                        let cfg = cfg.clone();
                        let completions = Arc::clone(&completions);
                        let ring = ring.clone();
                        let ledger = Arc::clone(&ledger);
                        let svc_injector = svc_injector.clone();
                        move || {
                            supervise(
                                shared,
                                shard,
                                cfg,
                                completions,
                                ring,
                                ledger,
                                svc_injector,
                                seed,
                            )
                        }
                    })
                    .expect("spawn shard supervisor"),
            );
            shards.push(shared);
        }
        let sink = match &ring {
            Some(r) => TelemetrySink::new(Arc::clone(r) as Arc<dyn Recorder>),
            None => TelemetrySink::disabled(),
        };
        let rand_seed = match cfg.routing {
            RoutingPolicy::Random { seed } => seed,
            _ => 0,
        };
        Service {
            cfg,
            shards,
            threads,
            seq: AtomicU64::new(0),
            rr: AtomicU64::new(0),
            rand: AtomicU64::new(rand_seed),
            completions,
            policy_admitted: [AtomicU64::new(0), AtomicU64::new(0)],
            sink,
            ring,
            ledger,
        }
    }

    /// Routes a matrix under the configured policy. Affinity is a pure
    /// function of the pattern ([`shard_for`]); the stateful policies
    /// (round-robin, random) advance their cursor on every call.
    pub fn route(&self, matrix: &CsrMatrix<T>) -> usize {
        match self.cfg.routing {
            RoutingPolicy::Affinity => shard_for(&PatternFingerprint::of(matrix), self.cfg.shards),
            RoutingPolicy::RoundRobin => {
                (self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.shards as u64) as usize
            }
            RoutingPolicy::Random { .. } => {
                let n = self
                    .rand
                    .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
                    .wrapping_add(0x9e37_79b9_7f4a_7c15);
                (mix64(n) % self.cfg.shards as u64) as usize
            }
        }
    }

    /// [`Service::route`] for a full request: under affinity routing a
    /// sticky [`ServiceRequest::sequence`] fingerprint takes precedence
    /// over the matrix's own pattern, so an evolving sequence's steps all
    /// land on the shard that holds its plans. Without a sticky
    /// fingerprint this is exactly [`Service::route`].
    pub fn route_request(&self, req: &ServiceRequest<T>) -> usize {
        if let (RoutingPolicy::Affinity, Some(fp)) = (&self.cfg.routing, &req.sequence) {
            return shard_for(fp, self.cfg.shards);
        }
        self.route(&req.matrix)
    }

    /// Admits `req` or rejects it with backpressure.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the routed shard's queue is at
    /// capacity; the error carries the shard, its depth, and a
    /// retry-after estimate (`depth × EWMA service time / workers`,
    /// floored at [`ServiceConfig::retry_after_floor`]).
    pub fn submit(&self, req: ServiceRequest<T>) -> Result<Ticket<T>, AdmissionError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.admission_shard(&req, seq);
        let shared = &self.shards[shard];
        let mut st = lock_recover(&shared.state);
        let depth = st.sched.len();
        if depth >= self.cfg.queue_capacity {
            drop(st);
            self.sink.with_job(seq).emit(EventKind::JobRejected {
                shard: shard as u16,
                depth: depth as u32,
            });
            self.sink.counter_add(Counter::JobsRejected, 1);
            return Err(AdmissionError::QueueFull {
                shard,
                depth,
                capacity: self.cfg.queue_capacity,
                retry_after: self.retry_after(shard, depth),
            });
        }
        let now = Instant::now();
        let deadline = req.deadline.map(|d| now + d);
        let ticket = Arc::new(TicketState::new());
        st.sched.push(
            req.priority,
            deadline,
            seq,
            now,
            Waiting {
                job: SolveJob {
                    matrix: req.matrix,
                    rhs: req.rhs,
                    guess: req.guess,
                    policy: req.policy,
                },
                seq,
                admitted_at: now,
                deadline,
                ticket: Arc::clone(&ticket),
                priority: req.priority,
                attempt: 0,
            },
        );
        let depth_now = st.sched.len();
        shared.depth.store(depth_now, Ordering::Relaxed);
        drop(st);
        shared.cv.notify_one();
        self.sink.with_job(seq).emit(EventKind::JobAdmitted {
            shard: shard as u16,
            depth: depth_now as u32,
        });
        self.sink.counter_add(Counter::JobsAdmitted, 1);
        self.policy_admitted[req.policy.is_fast() as usize].fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            state: ticket,
            shard,
            seq,
            tenant: req.tenant,
        })
    }

    fn retry_after(&self, shard: usize, depth: usize) -> Duration {
        let ema = self.shards[shard].ema_nanos.load(Ordering::Relaxed);
        let est = (depth as u64).saturating_mul(ema) / self.cfg.workers_per_shard as u64;
        self.cfg.retry_after_floor.max(Duration::from_nanos(est))
    }

    fn thresholds(&self) -> HealthThresholds {
        HealthThresholds {
            suspect_after: self.cfg.suspect_after,
            break_after: self.cfg.break_after,
            probe_after: self.cfg.probe_after,
        }
    }

    /// The shard admission `seq` actually lands on: the routed shard when
    /// its breaker is closed (the overwhelmingly common path — zero extra
    /// work, zero extra events), otherwise either this request is admitted
    /// as the breaker's half-open probe, or it deterministically spills to
    /// the next-ranked live shard ([`shard_ranking`] under affinity
    /// routing, cyclic order otherwise).
    fn admission_shard(&self, req: &ServiceRequest<T>, seq: u64) -> usize {
        let preferred = self.route_request(req);
        let health = &self.shards[preferred].health;
        if health.state() != ShardHealth::Broken {
            return preferred;
        }
        if health.divert_or_probe(preferred, self.thresholds(), &self.sink) {
            return preferred;
        }
        let ranking: Vec<usize> = match self.cfg.routing {
            RoutingPolicy::Affinity => {
                let fp = req
                    .sequence
                    .unwrap_or_else(|| PatternFingerprint::of(&req.matrix));
                shard_ranking(&fp, self.cfg.shards)
            }
            _ => (0..self.cfg.shards)
                .map(|k| (preferred + k) % self.cfg.shards)
                .collect(),
        };
        for &s in ranking.iter().skip(1) {
            if self.shards[s].health.state() != ShardHealth::Broken {
                self.sink.with_job(seq).emit(EventKind::Failover {
                    from: preferred as u16,
                    to: s as u16,
                });
                self.sink.counter_add(Counter::Failovers, 1);
                return s;
            }
        }
        // Every shard is broken: fall back to affinity rather than refuse.
        preferred
    }

    /// Holds every dispatcher: queued jobs stay queued until
    /// [`Service::resume`]. Admission stays open (up to the queue
    /// bounds). The deterministic tests use this to build a known queue
    /// before any dispatch happens.
    pub fn pause(&self) {
        for s in &self.shards {
            lock_recover(&s.state).paused = true;
        }
    }

    /// Releases [`Service::pause`].
    pub fn resume(&self) {
        for s in &self.shards {
            lock_recover(&s.state).paused = false;
            s.cv.notify_all();
        }
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration (normalized: counts clamped to their minima).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Shard `shard`'s engine (its plan cache, counters, and telemetry
    /// are all per-shard). The handle is a snapshot: after a dispatcher
    /// crash the supervisor swaps a fresh engine into the shard, so a
    /// long-held handle may describe a retired engine.
    pub fn engine(&self, shard: usize) -> Arc<Engine> {
        Arc::clone(&lock_recover(&self.shards[shard].engine))
    }

    /// Whether shard `shard` already holds a compiled plan for `a`'s
    /// pattern.
    pub fn is_warm(&self, shard: usize, a: &CsrMatrix<T>) -> bool {
        self.engine(shard).is_warm(a)
    }

    /// Shard `shard`'s current supervision state.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        self.shards[shard].health.state()
    }

    /// Shard `shard`'s dispatcher liveness tick (bumped once per wave).
    pub fn heartbeat(&self, shard: usize) -> u64 {
        self.shards[shard].heartbeat.load(Ordering::Relaxed)
    }

    /// Times shard `shard`'s dispatcher has been respawned after a crash.
    pub fn restarts(&self, shard: usize) -> u64 {
        self.shards[shard].restarts.load(Ordering::SeqCst)
    }

    /// The heartbeat watchdog: flags `Suspect` every `Healthy` shard that
    /// has queued work but whose dispatcher has not beaten for at least
    /// `stale_after`. Returns how many shards were flagged.
    ///
    /// This is the *only* wall-clock path into the health state machine,
    /// and it runs only when explicitly called — deterministic replays
    /// simply never call it, so their health transitions stay a pure
    /// function of the admission sequence. Note a paused shard with
    /// queued work looks stalled to this watchdog.
    pub fn check_stalls(&self, stale_after: Duration) -> usize {
        let mut flagged = 0;
        for (shard, s) in self.shards.iter().enumerate() {
            if s.depth.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let last = Duration::from_nanos(s.heartbeat_at.load(Ordering::Relaxed));
            if s.epoch.elapsed().saturating_sub(last) >= stale_after
                && s.health.mark_suspect(shard, &self.sink)
            {
                flagged += 1;
            }
        }
        flagged
    }

    /// Chaos hook: forces shard `shard`'s breaker open, as if its failure
    /// streak had just crossed [`ServiceConfig::break_after`]. New
    /// affinity traffic spills to the next-ranked shard until the breaker
    /// half-opens and a probe succeeds.
    pub fn break_shard(&self, shard: usize) {
        self.shards[shard]
            .health
            .force(shard, ShardHealth::Broken, &self.sink);
    }

    /// Chaos hook: makes shard `shard`'s dispatcher panic at the top of
    /// its next loop (with the shard lock held, so the supervisor's
    /// recovery also has to survive the poisoned mutex). Queued jobs stay
    /// queued; the respawned dispatcher drains them.
    pub fn crash_shard(&self, shard: usize) {
        silence_injected_panics();
        let s = &self.shards[shard];
        lock_recover(&s.state).crash = true;
        s.cv.notify_all();
    }

    /// Snapshot of the service-seam fault ledger (all-zero without a
    /// fault plan).
    pub fn service_ledger(&self) -> ServiceLedger {
        self.ledger.snapshot()
    }

    /// One-line JSON health summary of every shard (state, queue depth,
    /// restarts, heartbeat) — what the scrape endpoint's `/health` route
    /// serves.
    pub fn health_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{i},\"state\":\"{}\",\"queue\":{},\"restarts\":{},\"heartbeat\":{}}}",
                s.health.state().label(),
                s.depth.load(Ordering::Relaxed),
                s.restarts.load(Ordering::Relaxed),
                s.heartbeat.load(Ordering::Relaxed),
            ));
        }
        out.push_str(&format!("],\"completions\":{}}}", self.completions()));
        out
    }

    /// Queued jobs on one shard.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].depth.load(Ordering::Relaxed)
    }

    /// Queued jobs across all shards.
    pub fn total_queue_depth(&self) -> usize {
        (0..self.shards.len()).map(|s| self.queue_depth(s)).sum()
    }

    /// Jobs finished (solved, failed, or shed) since construction.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::SeqCst)
    }

    /// Jobs admitted under `policy` since construction.
    pub fn admitted_for(&self, policy: DeterminismPolicy) -> u64 {
        self.policy_admitted[policy.is_fast() as usize].load(Ordering::Relaxed)
    }

    /// Events the ring recorder dropped on overflow (0 without a ring).
    pub fn dropped_events(&self) -> u64 {
        self.ring.as_ref().map(|r| r.dropped()).unwrap_or(0)
    }

    /// The installed ring recorder, if any.
    pub fn ring(&self) -> Option<&Arc<RingRecorder>> {
        self.ring.as_ref()
    }

    /// Prometheus text-format snapshot of the whole service: the full
    /// telemetry counter set (when a ring recorder is installed) plus
    /// per-shard labeled jobs/cache-hit/cache-miss counters and queue
    /// gauges. This is what the scrape endpoint's `/metrics` serves.
    pub fn prometheus_text(&self) -> String {
        let mut w = PrometheusWriter::new();
        if let Some(ring) = &self.ring {
            w.counters(&ring.counters());
        }
        let sample = |f: &dyn Fn(usize) -> u64| -> Vec<(String, u64)> {
            (0..self.shards.len())
                .map(|s| (s.to_string(), f(s)))
                .collect()
        };
        w.counter_samples(
            "acamar_service_shard_jobs_total",
            "Jobs completed per engine shard",
            "shard",
            &sample(&|s| self.engine(s).counters().jobs_completed),
        );
        w.counter_samples(
            "acamar_service_shard_cache_hits_total",
            "Plan-cache hits per engine shard",
            "shard",
            &sample(&|s| self.engine(s).counters().cache.hits),
        );
        w.counter_samples(
            "acamar_service_shard_cache_misses_total",
            "Plan-cache misses per engine shard",
            "shard",
            &sample(&|s| self.engine(s).counters().cache.misses),
        );
        w.counter_samples(
            "acamar_service_shard_queue_depth",
            "Queued jobs per shard at scrape time",
            "shard",
            &sample(&|s| self.queue_depth(s) as u64),
        );
        w.counter_samples(
            "acamar_service_shard_restarts_total",
            "Dispatcher respawns per shard",
            "shard",
            &sample(&|s| self.restarts(s)),
        );
        let by_policy: Vec<(String, u64)> = DeterminismPolicy::ALL
            .iter()
            .map(|p| (p.label().to_string(), self.admitted_for(*p)))
            .collect();
        w.counter_samples(
            "acamar_service_requests_total",
            "Jobs admitted per determinism tier",
            "policy",
            &by_policy,
        );
        w.gauge(
            "acamar_service_shards",
            "Engine shards in the service",
            self.shards.len() as f64,
        );
        w.gauge(
            "acamar_service_queue_depth",
            "Queued jobs across all shards at scrape time",
            self.total_queue_depth() as f64,
        );
        w.finish()
    }

    /// Drains the ring recorder's trace as JSON lines (empty without a
    /// ring). This is what the scrape endpoint's `/trace` serves.
    pub fn trace_json(&self) -> String {
        self.ring
            .as_ref()
            .map(|r| json_lines(&r.drain()))
            .unwrap_or_default()
    }
}

impl<T: Scalar> Drop for Service<T> {
    fn drop(&mut self) {
        for s in &self.shards {
            let mut st = lock_recover(&s.state);
            st.shutdown = true;
            st.paused = false;
            drop(st);
            s.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Why a stranded in-flight job is taking the retry path.
enum RetryWhy {
    /// Its dispatcher panicked mid-wave.
    Restarted,
    /// The `QueueDrop` seam silently lost it between pop and dispatch.
    Dropped,
}

/// Puts one stranded in-flight job back on the retry path: requeued with
/// its attempt count bumped while the budget lasts (and while the job
/// payload is still held), otherwise resolved with the matching typed
/// error so its ticket never hangs.
#[allow(clippy::too_many_arguments)]
fn requeue_or_exhaust<T: Scalar>(
    st: &mut ShardState<T>,
    e: InFlight<T>,
    shard: usize,
    cfg: &ServiceConfig,
    completions: &AtomicU64,
    sink: &TelemetrySink,
    ledger: &LedgerInner,
    why: RetryWhy,
) {
    if let Some(job) = e.job {
        if e.attempt < cfg.retry_budget {
            let attempt = e.attempt + 1;
            sink.with_job(e.seq).emit(EventKind::JobRetried {
                shard: shard as u16,
                attempt,
            });
            sink.counter_add(Counter::JobsRetried, 1);
            st.sched.push(
                e.priority,
                e.deadline,
                e.seq,
                e.admitted_at,
                Waiting {
                    job,
                    seq: e.seq,
                    admitted_at: e.admitted_at,
                    deadline: e.deadline,
                    ticket: e.ticket,
                    priority: e.priority,
                    attempt,
                },
            );
            return;
        }
    }
    ledger.resolve(e.seq, false);
    let err = match why {
        RetryWhy::Restarted => ServiceError::ShardRestarted {
            shard,
            retries: e.attempt,
        },
        RetryWhy::Dropped => ServiceError::Dropped {
            shard,
            retries: e.attempt,
        },
    };
    let index = completions.fetch_add(1, Ordering::SeqCst);
    let waited = e.admitted_at.elapsed();
    e.ticket.fulfill(Err(err), index, waited);
}

/// The supervisor's pre-respawn sleep: exponential in the restart count
/// (capped at `64 × base`) plus a seed-derived jitter below `base`, so a
/// crash-looping shard backs off deterministically for a given seed.
fn restart_backoff(seed: u64, shard: usize, restarts: u64, base: Duration) -> Duration {
    let base_ns = base.as_nanos() as u64;
    if base_ns == 0 {
        return Duration::ZERO;
    }
    let exp = restarts.saturating_sub(1).min(6) as u32;
    let jitter = mix64(seed ^ ((shard as u64 + 1) << 32) ^ restarts) % base_ns;
    Duration::from_nanos((base_ns << exp).saturating_add(jitter))
}

/// One shard's supervisor: spawns the dispatcher thread and, if it ever
/// crashes (an injected `DispatcherPanic`, a [`Service::crash_shard`]
/// chaos call, or a genuine bug), recovers — breaker forced open, a fresh
/// [`Engine::respawn`] swapped into the shard's engine slot, every
/// stranded in-flight job requeued (or its ticket resolved with a typed
/// error once its retry budget is spent), telemetry emitted — and then
/// respawns the dispatcher after a deterministic backoff. Returns when
/// the dispatcher exits cleanly (service shutdown).
#[allow(clippy::too_many_arguments)]
fn supervise<T: Scalar>(
    shared: Arc<ShardShared<T>>,
    shard: usize,
    cfg: ServiceConfig,
    completions: Arc<AtomicU64>,
    ring: Option<Arc<RingRecorder>>,
    ledger: Arc<LedgerInner>,
    faults: Option<Arc<FaultInjector>>,
    seed: u64,
) {
    let sink = match &ring {
        Some(r) => TelemetrySink::new(Arc::clone(r) as Arc<dyn Recorder>),
        None => TelemetrySink::disabled(),
    };
    loop {
        let handle = std::thread::Builder::new()
            .name(format!("acamar-dispatch-{shard}"))
            .spawn({
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                let completions = Arc::clone(&completions);
                let ring = ring.clone();
                let ledger = Arc::clone(&ledger);
                let faults = faults.clone();
                move || dispatcher(shared, shard, cfg, completions, ring, ledger, faults)
            })
            .expect("spawn shard dispatcher");
        if handle.join().is_ok() {
            return;
        }
        // The dispatcher panicked. Everything it guarded was left
        // consistent *before* the panic seam fired, so recovery is:
        // account, re-equip, requeue, respawn.
        let restarts = shared.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        shared.health.force(shard, ShardHealth::Broken, &sink);
        {
            // A crashed dispatcher's engine may hold wedged worker state;
            // replace it with a cold equivalent sharing the same injector
            // ledger and telemetry.
            let mut slot = lock_recover(&shared.engine);
            let fresh = slot.respawn();
            *slot = Arc::new(fresh);
        }
        {
            let mut st = lock_recover(&shared.state);
            let stranded: Vec<InFlight<T>> = lock_recover(&shared.in_flight).drain(..).collect();
            for e in stranded {
                requeue_or_exhaust(
                    &mut st,
                    e,
                    shard,
                    &cfg,
                    &completions,
                    &sink,
                    &ledger,
                    RetryWhy::Restarted,
                );
            }
            shared.depth.store(st.sched.len(), Ordering::Relaxed);
        }
        sink.emit(EventKind::DispatcherRestarted {
            shard: shard as u16,
            restarts: restarts as u32,
        });
        sink.counter_add(Counter::DispatcherRestarts, 1);
        let backoff = restart_backoff(seed, shard, restarts, cfg.restart_backoff);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        shared.cv.notify_all();
    }
}

/// One shard's dispatcher loop: wait for work, pop a wave (up to the
/// shard's worker count), shed expired-deadline jobs before they reach a
/// solver, run the rest through the shard engine, and fulfill tickets in
/// the wave's submission order. On shutdown the remaining queue is
/// drained (still shedding what has expired) before the thread exits, so
/// every ticket resolves.
///
/// With a service-seam fault injector installed, each wave additionally
/// rolls the three serving seams between pop and dispatch — stall
/// (absorbed in place), panic (kills this thread with the shard lock
/// held; the supervisor recovers), and drop (the job silently vanishes
/// and takes the retry path). Jobs in flight are tracked in
/// [`ShardShared::in_flight`] the whole way, which is what makes all
/// three recoverable without losing a ticket.
fn dispatcher<T: Scalar>(
    shared: Arc<ShardShared<T>>,
    shard: usize,
    cfg: ServiceConfig,
    completions: Arc<AtomicU64>,
    ring: Option<Arc<RingRecorder>>,
    ledger: Arc<LedgerInner>,
    faults: Option<Arc<FaultInjector>>,
) {
    let sink = match ring {
        Some(r) => TelemetrySink::new(r as Arc<dyn Recorder>),
        None => TelemetrySink::disabled(),
    };
    let th = HealthThresholds {
        suspect_after: cfg.suspect_after,
        break_after: cfg.break_after,
        probe_after: cfg.probe_after,
    };
    loop {
        let wave = {
            let mut st = lock_recover(&shared.state);
            loop {
                if st.shutdown || st.crash || (!st.paused && !st.sched.is_empty()) {
                    break;
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.crash {
                st.crash = false;
                // Panic with the shard lock held: the poisoned mutex is
                // exactly what the supervisor's recovery must survive.
                std::panic::panic_any(InjectedPanic { job: u64::MAX });
            }
            if st.shutdown && st.sched.is_empty() {
                return;
            }
            let now = Instant::now();
            let mut wave = Vec::with_capacity(cfg.workers_per_shard);
            while wave.len() < cfg.workers_per_shard {
                match st.sched.pop(now, cfg.starvation_bound) {
                    Some(w) => wave.push(w),
                    None => break,
                }
            }
            shared.depth.store(st.sched.len(), Ordering::Relaxed);
            wave
        };
        shared.beat();
        let now = Instant::now();
        let mut dispatched = 0usize;
        for w in wave {
            let waited = now.saturating_duration_since(w.admitted_at);
            if w.deadline.is_some_and(|d| now >= d) {
                sink.with_job(w.seq).emit(EventKind::JobShed {
                    shard: shard as u16,
                    waited_nanos: waited.as_nanos() as u64,
                });
                sink.counter_add(Counter::JobsShed, 1);
                ledger.resolve(w.seq, false);
                let index = completions.fetch_add(1, Ordering::SeqCst);
                w.ticket
                    .fulfill(Err(ServiceError::Shed { shard, waited }), index, waited);
                continue;
            }
            sink.with_job(w.seq).emit(EventKind::JobDispatched {
                shard: shard as u16,
                wait_nanos: waited.as_nanos() as u64,
            });
            sink.counter_add(Counter::QueueWaitNanos, waited.as_nanos() as u64);
            dispatched += 1;
            lock_recover(&shared.in_flight).push(InFlight {
                job: Some(w.job),
                seq: w.seq,
                attempt: w.attempt,
                priority: w.priority,
                admitted_at: w.admitted_at,
                deadline: w.deadline,
                ticket: w.ticket,
                dropped: false,
            });
        }
        if dispatched == 0 {
            continue;
        }
        if let Some(inj) = &faults {
            // Stall seam: absorbed in place — the dispatcher wedges, flags
            // itself Suspect, and still delivers the wave.
            let mut stall_ms = 0u64;
            for e in lock_recover(&shared.in_flight).iter() {
                if let Some(ms) = inj.dispatcher_stall(e.seq, e.attempt as u64) {
                    ledger.absorbed(FaultCategory::DispatcherStall);
                    stall_ms = stall_ms.max(ms);
                }
            }
            if stall_ms > 0 {
                shared.health.mark_suspect(shard, &sink);
                std::thread::sleep(Duration::from_millis(stall_ms));
                shared.beat();
            }
            // Panic seam: kill this thread mid-wave, shard lock held.
            let mut panicked = None;
            for e in lock_recover(&shared.in_flight).iter() {
                if inj.dispatcher_panic(e.seq, e.attempt as u64) {
                    ledger.deferred(FaultCategory::DispatcherPanic, e.seq);
                    panicked.get_or_insert(e.seq);
                }
            }
            if let Some(job) = panicked {
                let _poisoner = lock_recover(&shared.state);
                std::panic::panic_any(InjectedPanic { job });
            }
            // Drop seam: the job silently vanishes between pop and
            // dispatch; the retry path below picks it up.
            for e in lock_recover(&shared.in_flight).iter_mut() {
                if inj.drop_queued(e.seq, e.attempt as u64) {
                    ledger.deferred(FaultCategory::QueueDrop, e.seq);
                    e.dropped = true;
                }
            }
        }
        let mut jobs = Vec::with_capacity(dispatched);
        let mut order: Vec<u64> = Vec::with_capacity(dispatched);
        for e in lock_recover(&shared.in_flight).iter_mut() {
            if !e.dropped {
                if let Some(job) = e.job.take() {
                    jobs.push(job);
                    order.push(e.seq);
                }
            }
        }
        if !jobs.is_empty() {
            let engine = Arc::clone(&lock_recover(&shared.engine));
            let started = Instant::now();
            let report = engine.solve_jobs(jobs);
            let per_job = started.elapsed().as_nanos() as u64 / order.len() as u64;
            let old = shared.ema_nanos.load(Ordering::Relaxed);
            let ema = if old == 0 {
                per_job
            } else {
                // EWMA with α = 1/4: cheap, integer-only, and responsive
                // enough for retry-after estimates.
                old - old / 4 + per_job / 4
            };
            shared.ema_nanos.store(ema, Ordering::Relaxed);
            let done = Instant::now();
            for (seq, result) in order.into_iter().zip(report.results) {
                let e = {
                    let mut inf = lock_recover(&shared.in_flight);
                    let at = inf
                        .iter()
                        .position(|e| e.seq == seq)
                        .expect("in-flight entry for delivered job");
                    inf.remove(at)
                };
                let ok = result.is_ok();
                ledger.resolve(seq, ok);
                if ok {
                    shared.health.record_success(shard, &sink);
                } else {
                    shared.health.record_failure(shard, th, &sink);
                }
                let index = completions.fetch_add(1, Ordering::SeqCst);
                let latency = done.saturating_duration_since(e.admitted_at);
                e.ticket
                    .fulfill(result.map_err(ServiceError::Solve), index, latency);
            }
        }
        // Anything still in flight was dropped by the seam (or stranded
        // without its payload): requeue within budget, resolve otherwise.
        let leftovers: Vec<InFlight<T>> = lock_recover(&shared.in_flight).drain(..).collect();
        if !leftovers.is_empty() {
            let mut st = lock_recover(&shared.state);
            for e in leftovers {
                requeue_or_exhaust(
                    &mut st,
                    e,
                    shard,
                    &cfg,
                    &completions,
                    &sink,
                    &ledger,
                    RetryWhy::Dropped,
                );
            }
            shared.depth.store(st.sched.len(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::AcamarConfig;
    use acamar_fabric::FabricSpec;
    use acamar_sparse::generate;

    fn acamar() -> Acamar {
        Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = Service::<f64>::new(acamar(), ServiceConfig::default().with_shards(2));
        let a = Arc::new(generate::poisson2d::<f64>(10, 10));
        let ticket = service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("queue empty");
        let shard = ticket.shard();
        assert!(ticket.wait().expect("solves").converged());
        assert!(service.is_warm(shard, &a));
        assert_eq!(service.completions(), 1);
    }

    #[test]
    fn sequence_fingerprint_pins_affinity_routing() {
        let service = Service::<f64>::new(acamar(), ServiceConfig::default().with_shards(4));
        let opened = Arc::new(generate::poisson2d::<f64>(10, 10));
        let fp = PatternFingerprint::of(&opened);
        let home = service.route(&opened);
        // A drifted step matrix (different pattern, maybe a different
        // natural shard) still routes to the sequence's home shard when
        // tagged with the open fingerprint...
        let drifted = Arc::new(generate::poisson2d::<f64>(11, 11));
        let tagged =
            ServiceRequest::new(Arc::clone(&drifted), vec![1.0; drifted.nrows()]).with_sequence(fp);
        assert_eq!(service.route_request(&tagged), home);
        // ...while an untagged request keeps the pattern's own route.
        let untagged = ServiceRequest::new(Arc::clone(&drifted), vec![1.0; drifted.nrows()]);
        assert_eq!(service.route_request(&untagged), service.route(&drifted));
        // End to end: admission honors the sticky shard and still solves.
        let ticket = service.submit(tagged).expect("queue empty");
        assert_eq!(ticket.shard(), home);
        assert!(ticket.wait().expect("solves").converged());
    }

    #[test]
    fn drop_drains_outstanding_tickets() {
        let service = Service::<f64>::new(acamar(), ServiceConfig::default().with_shards(1));
        service.pause();
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
                    .expect("under capacity")
            })
            .collect();
        drop(service);
        for t in tickets {
            assert!(t.wait().expect("drained on drop").converged());
        }
    }

    #[test]
    fn fast_policy_round_trips_and_is_metered() {
        let ring = Arc::new(RingRecorder::new(1 << 14));
        let service = Service::<f64>::with_recorder(
            acamar(),
            ServiceConfig::default().with_shards(1),
            Arc::clone(&ring),
        );
        let a = Arc::new(generate::poisson2d::<f64>(10, 10));
        let det = service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("admits deterministic");
        let fast = service
            .submit(
                ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()])
                    .with_policy(DeterminismPolicy::Fast),
            )
            .expect("admits fast");
        let det = det.wait().expect("deterministic solves");
        let fast = fast.wait().expect("fast solves");
        assert!(det.converged() && fast.converged());
        assert_eq!(service.admitted_for(DeterminismPolicy::Deterministic), 1);
        assert_eq!(service.admitted_for(DeterminismPolicy::Fast), 1);
        let text = service.prometheus_text();
        assert!(
            text.contains("acamar_service_requests_total{policy=\"deterministic\"} 1"),
            "deterministic tier metered in:\n{text}"
        );
        assert!(
            text.contains("acamar_service_requests_total{policy=\"fast\"} 1"),
            "fast tier metered in:\n{text}"
        );
        assert_eq!(ring.counters()[Counter::FastTierSolves.index()], 1);
        assert_eq!(ring.counters()[Counter::FastTierConverged.index()], 1);
    }

    #[test]
    fn round_robin_cycles_shards() {
        let service = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(3)
                .with_routing(RoutingPolicy::RoundRobin),
        );
        let a = generate::poisson2d::<f64>(6, 6);
        let picks: Vec<usize> = (0..6).map(|_| service.route(&a)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn crash_recovery_survives_poisoned_locks_and_serves_again() {
        let service = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(1)
                .with_probe_after(1)
                .with_restart_backoff(Duration::ZERO),
        );
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let t = service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("admits");
        assert!(t.wait().expect("solves").converged());
        service.crash_shard(0);
        // The supervisor notices the crash, recovers the poisoned shard
        // lock, swaps in a fresh engine, and respawns the dispatcher.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.restarts(0) == 0 {
            assert!(Instant::now() < deadline, "supervisor never restarted");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.shard_health(0), ShardHealth::Broken);
        // probe_after = 1: the next submission probes the broken shard,
        // succeeds, and heals it — through the recovered lock.
        let t = service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("admits after crash");
        assert!(t.wait().expect("solves after restart").converged());
        assert_eq!(service.shard_health(0), ShardHealth::Healthy);
        // The respawned engine is cold: the pre-crash warm plan is gone.
        assert_eq!(service.restarts(0), 1);
    }

    #[test]
    fn crash_with_queued_work_loses_nothing() {
        let service = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(1)
                .with_queue_capacity(16)
                .with_restart_backoff(Duration::ZERO),
        );
        service.pause();
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let tickets: Vec<_> = (0..8)
            .map(|_| {
                service
                    .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
                    .expect("under capacity")
            })
            .collect();
        service.crash_shard(0);
        service.resume();
        // Every queued ticket still resolves with a solution: the crash
        // fired before any pop, so the queue survives into the respawned
        // dispatcher.
        for t in tickets {
            assert!(t.wait().expect("survives the crash").converged());
        }
        assert!(service.restarts(0) >= 1);
    }

    #[test]
    fn random_routing_is_seed_deterministic() {
        let mk = || {
            Service::<f64>::new(
                acamar(),
                ServiceConfig::default()
                    .with_shards(4)
                    .with_routing(RoutingPolicy::Random { seed: 7 }),
            )
        };
        let a = generate::poisson2d::<f64>(6, 6);
        let s1 = mk();
        let s2 = mk();
        let p1: Vec<usize> = (0..16).map(|_| s1.route(&a)).collect();
        let p2: Vec<usize> = (0..16).map(|_| s2.route(&a)).collect();
        assert_eq!(p1, p2);
        assert!(
            p1.iter().any(|&s| s != p1[0]),
            "spreads over shards: {p1:?}"
        );
    }
}
