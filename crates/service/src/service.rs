//! The serving front-end: bounded admission, shard dispatch, tickets.

use crate::config::{Priority, RoutingPolicy, ServiceConfig};
use crate::queue::Scheduler;
use crate::router::{mix64, shard_for};
use acamar_core::{Acamar, AcamarRunReport};
use acamar_engine::{Engine, PatternFingerprint, SolveError, SolveJob};
use acamar_faultline::{FaultCategory, FaultInjector, FaultPlan};
use acamar_sparse::{CsrMatrix, Scalar};
use acamar_telemetry::export::{json_lines, PrometheusWriter};
use acamar_telemetry::{Counter, EventKind, Recorder, RingRecorder, TelemetrySink};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One admission request: a solve job plus its serving metadata.
#[derive(Debug, Clone)]
pub struct ServiceRequest<T> {
    /// Coefficient matrix (shared, so repeat submissions of one system
    /// don't clone the CSR arrays).
    pub matrix: Arc<CsrMatrix<T>>,
    /// Right-hand side.
    pub rhs: Vec<T>,
    /// Optional warm-start guess.
    pub guess: Option<Vec<T>>,
    /// Submitting tenant (accounting only; scheduling keys on
    /// `priority`, not identity).
    pub tenant: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Wall-clock budget measured from admission; a job still queued
    /// when it expires is shed before solving
    /// ([`ServiceError::Shed`]).
    pub deadline: Option<Duration>,
}

impl<T> ServiceRequest<T> {
    /// A normal-priority, deadline-free request from tenant 0.
    pub fn new(matrix: Arc<CsrMatrix<T>>, rhs: Vec<T>) -> ServiceRequest<T> {
        ServiceRequest {
            matrix,
            rhs,
            guess: None,
            tenant: 0,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Sets the warm-start guess.
    pub fn with_guess(mut self, x0: Vec<T>) -> ServiceRequest<T> {
        self.guess = Some(x0);
        self
    }

    /// Sets the submitting tenant.
    pub fn with_tenant(mut self, tenant: u32) -> ServiceRequest<T> {
        self.tenant = tenant;
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> ServiceRequest<T> {
        self.priority = priority;
        self
    }

    /// Sets the admission-relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ServiceRequest<T> {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The routed shard's queue is at capacity. Back off for at least
    /// `retry_after` (estimated drain time of the queue ahead of you)
    /// before resubmitting.
    QueueFull {
        /// The shard the job routed to.
        shard: usize,
        /// Its queue depth at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
        /// Estimated time until the shard can accept again.
        retry_after: Duration,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                shard,
                depth,
                capacity,
                retry_after,
            } => write!(
                f,
                "shard {shard} queue full ({depth}/{capacity}); retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl AdmissionError {
    /// The rejection's backoff hint.
    pub fn retry_after(&self) -> Duration {
        match self {
            AdmissionError::QueueFull { retry_after, .. } => *retry_after,
        }
    }
}

/// Why an *admitted* job did not produce a solution.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The job's deadline expired while it was still queued; it was shed
    /// before reaching a solver.
    Shed {
        /// The shard that shed it.
        shard: usize,
        /// How long it had been queued when shed.
        waited: Duration,
    },
    /// The solve itself failed (invalid input, divergence past the
    /// rescue ladder, isolated panic, engine-level deadline).
    Solve(SolveError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Shed { shard, waited } => {
                write!(f, "shed on shard {shard} after queueing {waited:?}")
            }
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// `true` for queue-side shedding (the solver never ran).
    pub fn is_shed(&self) -> bool {
        matches!(self, ServiceError::Shed { .. })
    }
}

/// What fulfilling a ticket delivers: the outcome plus serving metadata.
type Outcome<T> = (Result<AcamarRunReport<T>, ServiceError>, u64, Duration);

/// Completion slot shared between a [`Ticket`] and the shard dispatcher.
pub(crate) struct TicketState<T: Scalar> {
    slot: Mutex<Option<Outcome<T>>>,
    cv: Condvar,
}

impl<T: Scalar> TicketState<T> {
    fn new() -> TicketState<T> {
        TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(
        &self,
        result: Result<AcamarRunReport<T>, ServiceError>,
        index: u64,
        latency: Duration,
    ) {
        *self.slot.lock().expect("ticket lock poisoned") = Some((result, index, latency));
        self.cv.notify_all();
    }
}

impl<T: Scalar> fmt::Debug for TicketState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketState").finish_non_exhaustive()
    }
}

/// Handle to one admitted job; [`Ticket::wait`] blocks until a shard
/// dispatcher fulfills it. The service's [`Drop`] drains every queue, so
/// a ticket from a dropped service still resolves.
#[derive(Debug)]
pub struct Ticket<T: Scalar> {
    state: Arc<TicketState<T>>,
    shard: usize,
    seq: u64,
    tenant: u32,
}

impl<T: Scalar> Ticket<T> {
    /// The shard the job routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The job's admission sequence number (also its telemetry job id).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Blocks until the job completes (solved, failed, or shed).
    pub fn wait(self) -> Result<AcamarRunReport<T>, ServiceError> {
        self.wait_outcome().0
    }

    /// [`Ticket::wait`] plus the job's global completion index (the
    /// order shard dispatchers finished jobs in, across the whole
    /// service) — what the scheduling tests assert exact orders on.
    pub fn wait_with_index(self) -> (Result<AcamarRunReport<T>, ServiceError>, u64) {
        let (result, index, _) = self.wait_outcome();
        (result, index)
    }

    /// [`Ticket::wait`] plus the job's admission-to-completion latency
    /// (queue wait + solve, as the dispatcher observed it) — what the
    /// open-loop load-generator bench records.
    pub fn wait_timed(self) -> (Result<AcamarRunReport<T>, ServiceError>, Duration) {
        let (result, _, latency) = self.wait_outcome();
        (result, latency)
    }

    fn wait_outcome(self) -> Outcome<T> {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.state.cv.wait(slot).expect("ticket lock poisoned");
        }
    }
}

/// One queued job as the shard dispatcher sees it.
struct Waiting<T: Scalar> {
    job: SolveJob<T>,
    seq: u64,
    admitted_at: Instant,
    deadline: Option<Instant>,
    ticket: Arc<TicketState<T>>,
}

/// State shared between the admission path and one shard's dispatcher.
struct ShardShared<T: Scalar> {
    state: Mutex<ShardState<T>>,
    cv: Condvar,
    /// Mirror of the queue depth for lock-free scrapes.
    depth: AtomicUsize,
    /// EWMA of per-job service nanos, feeding retry-after estimates.
    ema_nanos: AtomicU64,
}

struct ShardState<T: Scalar> {
    sched: Scheduler<Waiting<T>>,
    paused: bool,
    shutdown: bool,
}

/// The serving front-end over `N` engine shards.
///
/// Construction spawns one dispatcher thread per shard, each owning an
/// [`Engine`] (its own plan cache, workspace pool, and worker threads).
/// [`Service::submit`] routes by the configured [`RoutingPolicy`] —
/// affinity routing sends every repeat of a sparsity pattern to the one
/// shard that already compiled its plan — and either enqueues the job
/// (returning a [`Ticket`]) or rejects it with a typed, retry-after-
/// carrying [`AdmissionError`] when that shard's bounded queue is full.
///
/// Dropping the service is a clean shutdown: every queued job is drained
/// (solved or shed) so no ticket is left dangling, then the dispatcher
/// threads are joined.
///
/// ```
/// use acamar_core::{Acamar, AcamarConfig};
/// use acamar_fabric::FabricSpec;
/// use acamar_service::{Service, ServiceConfig, ServiceRequest};
/// use acamar_sparse::generate;
/// use std::sync::Arc;
///
/// let acamar = Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper());
/// let service = Service::<f64>::new(acamar, ServiceConfig::default().with_shards(2));
/// let a = Arc::new(generate::poisson2d::<f64>(12, 12));
/// let ticket = service
///     .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
///     .unwrap();
/// assert!(ticket.wait().unwrap().converged());
/// ```
pub struct Service<T: Scalar> {
    cfg: ServiceConfig,
    shards: Vec<Arc<ShardShared<T>>>,
    engines: Vec<Arc<Engine>>,
    threads: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    rr: AtomicU64,
    rand: AtomicU64,
    completions: Arc<AtomicU64>,
    sink: TelemetrySink,
    ring: Option<Arc<RingRecorder>>,
}

impl<T: Scalar> fmt::Debug for Service<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("shards", &self.shards.len())
            .field("queued", &self.total_queue_depth())
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> Service<T> {
    /// A service over `acamar` with no telemetry and no fault injection.
    pub fn new(acamar: Acamar, cfg: ServiceConfig) -> Service<T> {
        Service::build(acamar, cfg, None, None)
    }

    /// A service whose shards and admission path record into `ring`:
    /// admission/shed/dispatch events and counters from the front-end,
    /// plus every engine-level event from the shards. The ring also
    /// powers [`Service::trace_json`] and the scrape endpoint's
    /// `/trace` route.
    pub fn with_recorder(
        acamar: Acamar,
        cfg: ServiceConfig,
        ring: Arc<RingRecorder>,
    ) -> Service<T> {
        Service::build(acamar, cfg, Some(ring), None)
    }

    /// A chaos service: each shard gets its own [`FaultInjector`] derived
    /// from `plan` with a per-shard seed (`seed ^ (shard + 1)`), so
    /// concurrent shard batches never share an injector ledger while the
    /// whole run stays reproducible from one seed. Optionally records
    /// into `ring` as in [`Service::with_recorder`].
    pub fn with_fault_plan(
        acamar: Acamar,
        cfg: ServiceConfig,
        plan: FaultPlan,
        ring: Option<Arc<RingRecorder>>,
    ) -> Service<T> {
        Service::build(acamar, cfg, ring, Some(plan))
    }

    fn build(
        acamar: Acamar,
        cfg: ServiceConfig,
        ring: Option<Arc<RingRecorder>>,
        faults: Option<FaultPlan>,
    ) -> Service<T> {
        let cfg = cfg.normalized();
        let completions = Arc::new(AtomicU64::new(0));
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut engines = Vec::with_capacity(cfg.shards);
        let mut threads = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let mut engine = Engine::with_workers(acamar.clone(), cfg.workers_per_shard)
                .with_resilience(cfg.resilience.clone());
            if let Some(r) = &ring {
                engine = engine.with_recorder(Arc::clone(r) as Arc<dyn Recorder>);
            }
            if let Some(plan) = &faults {
                let mut p = FaultPlan::new(plan.seed() ^ (shard as u64 + 1));
                for cat in FaultCategory::ALL {
                    p = p.with_rate(cat, plan.rate(cat));
                }
                engine = engine.with_fault_injection(Arc::new(FaultInjector::new(p)));
            }
            let engine = Arc::new(engine);
            let shared = Arc::new(ShardShared {
                state: Mutex::new(ShardState {
                    sched: Scheduler::new(),
                    paused: false,
                    shutdown: false,
                }),
                cv: Condvar::new(),
                depth: AtomicUsize::new(0),
                ema_nanos: AtomicU64::new(0),
            });
            threads.push(std::thread::spawn({
                let shared = Arc::clone(&shared);
                let engine = Arc::clone(&engine);
                let cfg = cfg.clone();
                let completions = Arc::clone(&completions);
                let ring = ring.clone();
                move || dispatcher(shared, engine, shard, cfg, completions, ring)
            }));
            shards.push(shared);
            engines.push(engine);
        }
        let sink = match &ring {
            Some(r) => TelemetrySink::new(Arc::clone(r) as Arc<dyn Recorder>),
            None => TelemetrySink::disabled(),
        };
        let rand_seed = match cfg.routing {
            RoutingPolicy::Random { seed } => seed,
            _ => 0,
        };
        Service {
            cfg,
            shards,
            engines,
            threads,
            seq: AtomicU64::new(0),
            rr: AtomicU64::new(0),
            rand: AtomicU64::new(rand_seed),
            completions,
            sink,
            ring,
        }
    }

    /// Routes a matrix under the configured policy. Affinity is a pure
    /// function of the pattern ([`shard_for`]); the stateful policies
    /// (round-robin, random) advance their cursor on every call.
    pub fn route(&self, matrix: &CsrMatrix<T>) -> usize {
        match self.cfg.routing {
            RoutingPolicy::Affinity => shard_for(&PatternFingerprint::of(matrix), self.cfg.shards),
            RoutingPolicy::RoundRobin => {
                (self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.shards as u64) as usize
            }
            RoutingPolicy::Random { .. } => {
                let n = self
                    .rand
                    .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
                    .wrapping_add(0x9e37_79b9_7f4a_7c15);
                (mix64(n) % self.cfg.shards as u64) as usize
            }
        }
    }

    /// Admits `req` or rejects it with backpressure.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the routed shard's queue is at
    /// capacity; the error carries the shard, its depth, and a
    /// retry-after estimate (`depth × EWMA service time / workers`,
    /// floored at [`ServiceConfig::retry_after_floor`]).
    pub fn submit(&self, req: ServiceRequest<T>) -> Result<Ticket<T>, AdmissionError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.route(&req.matrix);
        let shared = &self.shards[shard];
        let mut st = shared.state.lock().expect("shard lock poisoned");
        let depth = st.sched.len();
        if depth >= self.cfg.queue_capacity {
            drop(st);
            self.sink.with_job(seq).emit(EventKind::JobRejected {
                shard: shard as u16,
                depth: depth as u32,
            });
            self.sink.counter_add(Counter::JobsRejected, 1);
            return Err(AdmissionError::QueueFull {
                shard,
                depth,
                capacity: self.cfg.queue_capacity,
                retry_after: self.retry_after(shard, depth),
            });
        }
        let now = Instant::now();
        let deadline = req.deadline.map(|d| now + d);
        let ticket = Arc::new(TicketState::new());
        st.sched.push(
            req.priority,
            deadline,
            seq,
            now,
            Waiting {
                job: SolveJob {
                    matrix: req.matrix,
                    rhs: req.rhs,
                    guess: req.guess,
                },
                seq,
                admitted_at: now,
                deadline,
                ticket: Arc::clone(&ticket),
            },
        );
        let depth_now = st.sched.len();
        shared.depth.store(depth_now, Ordering::Relaxed);
        drop(st);
        shared.cv.notify_one();
        self.sink.with_job(seq).emit(EventKind::JobAdmitted {
            shard: shard as u16,
            depth: depth_now as u32,
        });
        self.sink.counter_add(Counter::JobsAdmitted, 1);
        Ok(Ticket {
            state: ticket,
            shard,
            seq,
            tenant: req.tenant,
        })
    }

    fn retry_after(&self, shard: usize, depth: usize) -> Duration {
        let ema = self.shards[shard].ema_nanos.load(Ordering::Relaxed);
        let est = (depth as u64).saturating_mul(ema) / self.cfg.workers_per_shard as u64;
        self.cfg.retry_after_floor.max(Duration::from_nanos(est))
    }

    /// Holds every dispatcher: queued jobs stay queued until
    /// [`Service::resume`]. Admission stays open (up to the queue
    /// bounds). The deterministic tests use this to build a known queue
    /// before any dispatch happens.
    pub fn pause(&self) {
        for s in &self.shards {
            s.state.lock().expect("shard lock poisoned").paused = true;
        }
    }

    /// Releases [`Service::pause`].
    pub fn resume(&self) {
        for s in &self.shards {
            s.state.lock().expect("shard lock poisoned").paused = false;
            s.cv.notify_all();
        }
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The configuration (normalized: counts clamped to their minima).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Shard `shard`'s engine (its plan cache, counters, and telemetry
    /// are all per-shard).
    pub fn engine(&self, shard: usize) -> &Engine {
        &self.engines[shard]
    }

    /// Whether shard `shard` already holds a compiled plan for `a`'s
    /// pattern.
    pub fn is_warm(&self, shard: usize, a: &CsrMatrix<T>) -> bool {
        self.engines[shard].is_warm(a)
    }

    /// Queued jobs on one shard.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].depth.load(Ordering::Relaxed)
    }

    /// Queued jobs across all shards.
    pub fn total_queue_depth(&self) -> usize {
        (0..self.shards.len()).map(|s| self.queue_depth(s)).sum()
    }

    /// Jobs finished (solved, failed, or shed) since construction.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::SeqCst)
    }

    /// Events the ring recorder dropped on overflow (0 without a ring).
    pub fn dropped_events(&self) -> u64 {
        self.ring.as_ref().map(|r| r.dropped()).unwrap_or(0)
    }

    /// The installed ring recorder, if any.
    pub fn ring(&self) -> Option<&Arc<RingRecorder>> {
        self.ring.as_ref()
    }

    /// Prometheus text-format snapshot of the whole service: the full
    /// telemetry counter set (when a ring recorder is installed) plus
    /// per-shard labeled jobs/cache-hit/cache-miss counters and queue
    /// gauges. This is what the scrape endpoint's `/metrics` serves.
    pub fn prometheus_text(&self) -> String {
        let mut w = PrometheusWriter::new();
        if let Some(ring) = &self.ring {
            w.counters(&ring.counters());
        }
        let sample = |f: &dyn Fn(usize) -> u64| -> Vec<(String, u64)> {
            (0..self.engines.len())
                .map(|s| (s.to_string(), f(s)))
                .collect()
        };
        w.counter_samples(
            "acamar_service_shard_jobs_total",
            "Jobs completed per engine shard",
            "shard",
            &sample(&|s| self.engines[s].counters().jobs_completed),
        );
        w.counter_samples(
            "acamar_service_shard_cache_hits_total",
            "Plan-cache hits per engine shard",
            "shard",
            &sample(&|s| self.engines[s].counters().cache.hits),
        );
        w.counter_samples(
            "acamar_service_shard_cache_misses_total",
            "Plan-cache misses per engine shard",
            "shard",
            &sample(&|s| self.engines[s].counters().cache.misses),
        );
        w.counter_samples(
            "acamar_service_shard_queue_depth",
            "Queued jobs per shard at scrape time",
            "shard",
            &sample(&|s| self.queue_depth(s) as u64),
        );
        w.gauge(
            "acamar_service_shards",
            "Engine shards in the service",
            self.engines.len() as f64,
        );
        w.gauge(
            "acamar_service_queue_depth",
            "Queued jobs across all shards at scrape time",
            self.total_queue_depth() as f64,
        );
        w.finish()
    }

    /// Drains the ring recorder's trace as JSON lines (empty without a
    /// ring). This is what the scrape endpoint's `/trace` serves.
    pub fn trace_json(&self) -> String {
        self.ring
            .as_ref()
            .map(|r| json_lines(&r.drain()))
            .unwrap_or_default()
    }
}

impl<T: Scalar> Drop for Service<T> {
    fn drop(&mut self) {
        for s in &self.shards {
            let mut st = s.state.lock().expect("shard lock poisoned");
            st.shutdown = true;
            st.paused = false;
            drop(st);
            s.cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One shard's dispatcher loop: wait for work, pop a wave (up to the
/// shard's worker count), shed expired-deadline jobs before they reach a
/// solver, run the rest through the shard engine, and fulfill tickets in
/// the wave's submission order. On shutdown the remaining queue is
/// drained (still shedding what has expired) before the thread exits, so
/// every ticket resolves.
fn dispatcher<T: Scalar>(
    shared: Arc<ShardShared<T>>,
    engine: Arc<Engine>,
    shard: usize,
    cfg: ServiceConfig,
    completions: Arc<AtomicU64>,
    ring: Option<Arc<RingRecorder>>,
) {
    let sink = match ring {
        Some(r) => TelemetrySink::new(r as Arc<dyn Recorder>),
        None => TelemetrySink::disabled(),
    };
    loop {
        let wave = {
            let mut st = shared.state.lock().expect("shard lock poisoned");
            loop {
                if st.shutdown || (!st.paused && st.sched.len() > 0) {
                    break;
                }
                st = shared.cv.wait(st).expect("shard lock poisoned");
            }
            if st.shutdown && st.sched.len() == 0 {
                return;
            }
            let now = Instant::now();
            let mut wave = Vec::with_capacity(cfg.workers_per_shard);
            while wave.len() < cfg.workers_per_shard {
                match st.sched.pop(now, cfg.starvation_bound) {
                    Some(w) => wave.push(w),
                    None => break,
                }
            }
            shared.depth.store(st.sched.len(), Ordering::Relaxed);
            wave
        };
        let now = Instant::now();
        let mut jobs = Vec::with_capacity(wave.len());
        let mut tickets = Vec::with_capacity(wave.len());
        for w in wave {
            let waited = now.saturating_duration_since(w.admitted_at);
            if w.deadline.is_some_and(|d| now >= d) {
                sink.with_job(w.seq).emit(EventKind::JobShed {
                    shard: shard as u16,
                    waited_nanos: waited.as_nanos() as u64,
                });
                sink.counter_add(Counter::JobsShed, 1);
                let index = completions.fetch_add(1, Ordering::SeqCst);
                w.ticket
                    .fulfill(Err(ServiceError::Shed { shard, waited }), index, waited);
                continue;
            }
            sink.with_job(w.seq).emit(EventKind::JobDispatched {
                shard: shard as u16,
                wait_nanos: waited.as_nanos() as u64,
            });
            sink.counter_add(Counter::QueueWaitNanos, waited.as_nanos() as u64);
            jobs.push(w.job);
            tickets.push((w.ticket, w.admitted_at));
        }
        if jobs.is_empty() {
            continue;
        }
        let started = Instant::now();
        let report = engine.solve_jobs(jobs);
        let per_job = started.elapsed().as_nanos() as u64 / tickets.len() as u64;
        let old = shared.ema_nanos.load(Ordering::Relaxed);
        let ema = if old == 0 {
            per_job
        } else {
            // EWMA with α = 1/4: cheap, integer-only, and responsive
            // enough for retry-after estimates.
            old - old / 4 + per_job / 4
        };
        shared.ema_nanos.store(ema, Ordering::Relaxed);
        let done = Instant::now();
        for ((ticket, admitted_at), result) in tickets.into_iter().zip(report.results) {
            let index = completions.fetch_add(1, Ordering::SeqCst);
            let latency = done.saturating_duration_since(admitted_at);
            ticket.fulfill(result.map_err(ServiceError::Solve), index, latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_core::AcamarConfig;
    use acamar_fabric::FabricSpec;
    use acamar_sparse::generate;

    fn acamar() -> Acamar {
        Acamar::new(FabricSpec::alveo_u55c(), AcamarConfig::paper())
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let service = Service::<f64>::new(acamar(), ServiceConfig::default().with_shards(2));
        let a = Arc::new(generate::poisson2d::<f64>(10, 10));
        let ticket = service
            .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
            .expect("queue empty");
        let shard = ticket.shard();
        assert!(ticket.wait().expect("solves").converged());
        assert!(service.is_warm(shard, &a));
        assert_eq!(service.completions(), 1);
    }

    #[test]
    fn drop_drains_outstanding_tickets() {
        let service = Service::<f64>::new(acamar(), ServiceConfig::default().with_shards(1));
        service.pause();
        let a = Arc::new(generate::poisson2d::<f64>(8, 8));
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(ServiceRequest::new(Arc::clone(&a), vec![1.0; a.nrows()]))
                    .expect("under capacity")
            })
            .collect();
        drop(service);
        for t in tickets {
            assert!(t.wait().expect("drained on drop").converged());
        }
    }

    #[test]
    fn round_robin_cycles_shards() {
        let service = Service::<f64>::new(
            acamar(),
            ServiceConfig::default()
                .with_shards(3)
                .with_routing(RoutingPolicy::RoundRobin),
        );
        let a = generate::poisson2d::<f64>(6, 6);
        let picks: Vec<usize> = (0..6).map(|_| service.route(&a)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_routing_is_seed_deterministic() {
        let mk = || {
            Service::<f64>::new(
                acamar(),
                ServiceConfig::default()
                    .with_shards(4)
                    .with_routing(RoutingPolicy::Random { seed: 7 }),
            )
        };
        let a = generate::poisson2d::<f64>(6, 6);
        let s1 = mk();
        let s2 = mk();
        let p1: Vec<usize> = (0..16).map(|_| s1.route(&a)).collect();
        let p2: Vec<usize> = (0..16).map(|_| s2.route(&a)).collect();
        assert_eq!(p1, p2);
        assert!(
            p1.iter().any(|&s| s != p1[0]),
            "spreads over shards: {p1:?}"
        );
    }
}
