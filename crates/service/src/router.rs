//! Fingerprint-affinity shard routing.

use acamar_engine::PatternFingerprint;

/// The shard owning `fp`'s structural class, as a pure function of the
/// fingerprint: no process-local state, no [`RandomState`], nothing that
/// varies across restarts — the same pattern maps to the same shard in
/// every process that ever computes it, so a restarted service re-warms
/// exactly the shards the old one had warm.
///
/// The fingerprint's FNV-1a digest is already well mixed over patterns
/// that differ structurally, but patterns can also differ only in shape
/// (same digest-relevant arrays are impossible, yet nearby generators
/// often produce correlated low bits), so the dimensions are folded in
/// and the combination is run through a splitmix64-style finalizer
/// before the modulo.
///
/// [`RandomState`]: std::collections::hash_map::RandomState
pub fn shard_for(fp: &PatternFingerprint, shards: usize) -> usize {
    let x = fp.hash
        ^ (fp.nrows as u64).rotate_left(17)
        ^ (fp.ncols as u64).rotate_left(34)
        ^ (fp.nnz as u64).rotate_left(51);
    (mix64(x) % shards.max(1) as u64) as usize
}

/// The full failover ranking of `fp` over `shards`: rank 0 is exactly
/// [`shard_for`] (so fault-free routing is untouched by the existence of
/// a ranking), and the remaining shards follow in rendezvous-hash order —
/// each ranked by `mix64(key ^ per-shard salt)`, highest weight first.
///
/// Like `shard_for`, this is a pure function of the fingerprint: every
/// process that ever computes it agrees on the spill order, so a broken
/// shard's traffic lands on the *same* next-ranked shard everywhere,
/// keeping failover traffic warm on one shard instead of spraying it.
pub fn shard_ranking(fp: &PatternFingerprint, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let first = shard_for(fp, shards);
    let key = fp.hash
        ^ (fp.nrows as u64).rotate_left(17)
        ^ (fp.ncols as u64).rotate_left(34)
        ^ (fp.nnz as u64).rotate_left(51);
    let mut rest: Vec<(u64, usize)> = (0..shards)
        .filter(|&s| s != first)
        .map(|s| {
            let salt = (s as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (mix64(key ^ salt), s)
        })
        .collect();
    // Highest rendezvous weight first; the shard index breaks exact ties
    // deterministically.
    rest.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut ranking = Vec::with_capacity(shards);
    ranking.push(first);
    ranking.extend(rest.into_iter().map(|(_, s)| s));
    ranking
}

/// splitmix64 finalizer: a cheap bijective avalanche over `u64`.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(nrows: usize, ncols: usize, nnz: usize, hash: u64) -> PatternFingerprint {
        PatternFingerprint {
            nrows,
            ncols,
            nnz,
            hash,
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            for k in 0..64u64 {
                let f = fp(10 + k as usize, 10 + k as usize, 50, k.wrapping_mul(0x9e37));
                let s = shard_for(&f, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(&f, shards), "pure function of the fingerprint");
            }
        }
    }

    #[test]
    fn one_shard_collapses_everything() {
        for k in 0..32u64 {
            assert_eq!(shard_for(&fp(k as usize, 1, 1, k), 1), 0);
        }
    }

    #[test]
    fn distinct_patterns_spread_over_shards() {
        // 256 synthetic fingerprints over 4 shards: every shard should see
        // a reasonable share (the finalizer avalanches even sequential
        // inputs).
        let shards = 4;
        let mut counts = [0usize; 4];
        for k in 0..256u64 {
            let f = fp(8 + (k % 13) as usize, 8, (k * 3) as usize, k << 3);
            counts[shard_for(&f, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 256 / 16, "shard {s} starved: {counts:?}");
        }
    }

    #[test]
    fn ranking_is_a_permutation_led_by_shard_for() {
        for shards in [1usize, 2, 4, 7] {
            for k in 0..64u64 {
                let f = fp(9 + (k % 11) as usize, 9, (k * 5) as usize, k << 7);
                let ranking = shard_ranking(&f, shards);
                assert_eq!(ranking.len(), shards);
                assert_eq!(ranking[0], shard_for(&f, shards));
                let mut sorted = ranking.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
                assert_eq!(ranking, shard_ranking(&f, shards), "pure function");
            }
        }
    }

    #[test]
    fn ranking_spreads_second_choices_over_shards() {
        // The spill target must not collapse onto one shard: over many
        // fingerprints, every shard should appear at rank 1 sometimes.
        let shards = 4;
        let mut rank1 = [0usize; 4];
        for k in 0..256u64 {
            let f = fp(8 + (k % 13) as usize, 8, (k * 3) as usize, k << 3);
            rank1[shard_ranking(&f, shards)[1]] += 1;
        }
        for (s, &c) in rank1.iter().enumerate() {
            assert!(c > 256 / 16, "shard {s} never a spill target: {rank1:?}");
        }
    }

    #[test]
    fn mix64_is_not_identity_on_small_inputs() {
        let outs: std::collections::HashSet<u64> = (0..128).map(mix64).collect();
        assert_eq!(outs.len(), 128);
        assert!(!outs.contains(&0) || mix64(0) == 0);
    }
}
