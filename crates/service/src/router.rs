//! Fingerprint-affinity shard routing.

use acamar_engine::PatternFingerprint;

/// The shard owning `fp`'s structural class, as a pure function of the
/// fingerprint: no process-local state, no [`RandomState`], nothing that
/// varies across restarts — the same pattern maps to the same shard in
/// every process that ever computes it, so a restarted service re-warms
/// exactly the shards the old one had warm.
///
/// The fingerprint's FNV-1a digest is already well mixed over patterns
/// that differ structurally, but patterns can also differ only in shape
/// (same digest-relevant arrays are impossible, yet nearby generators
/// often produce correlated low bits), so the dimensions are folded in
/// and the combination is run through a splitmix64-style finalizer
/// before the modulo.
///
/// [`RandomState`]: std::collections::hash_map::RandomState
pub fn shard_for(fp: &PatternFingerprint, shards: usize) -> usize {
    let x = fp.hash
        ^ (fp.nrows as u64).rotate_left(17)
        ^ (fp.ncols as u64).rotate_left(34)
        ^ (fp.nnz as u64).rotate_left(51);
    (mix64(x) % shards.max(1) as u64) as usize
}

/// splitmix64 finalizer: a cheap bijective avalanche over `u64`.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(nrows: usize, ncols: usize, nnz: usize, hash: u64) -> PatternFingerprint {
        PatternFingerprint {
            nrows,
            ncols,
            nnz,
            hash,
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            for k in 0..64u64 {
                let f = fp(10 + k as usize, 10 + k as usize, 50, k.wrapping_mul(0x9e37));
                let s = shard_for(&f, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(&f, shards), "pure function of the fingerprint");
            }
        }
    }

    #[test]
    fn one_shard_collapses_everything() {
        for k in 0..32u64 {
            assert_eq!(shard_for(&fp(k as usize, 1, 1, k), 1), 0);
        }
    }

    #[test]
    fn distinct_patterns_spread_over_shards() {
        // 256 synthetic fingerprints over 4 shards: every shard should see
        // a reasonable share (the finalizer avalanches even sequential
        // inputs).
        let shards = 4;
        let mut counts = [0usize; 4];
        for k in 0..256u64 {
            let f = fp(8 + (k % 13) as usize, 8, (k * 3) as usize, k << 3);
            counts[shard_for(&f, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 256 / 16, "shard {s} starved: {counts:?}");
        }
    }

    #[test]
    fn mix64_is_not_identity_on_small_inputs() {
        let outs: std::collections::HashSet<u64> = (0..128).map(mix64).collect();
        assert_eq!(outs.len(), 128);
        assert!(!outs.contains(&0) || mix64(0) == 0);
    }
}
