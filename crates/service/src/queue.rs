//! The per-shard priority/deadline scheduler.
//!
//! Three scheduling classes ([`Priority`]), each an earliest-deadline-
//! first heap with admission sequence as the tiebreak. A pop compares
//! the front of every class by `(effective class, deadline, seq)`, where
//! the *effective* class of a job that has waited past the configured
//! starvation bound is promoted to the front class — the bounded-wait
//! guarantee: a low-priority job can be overtaken for at most the bound,
//! after which it competes at the head of the line.
//!
//! Everything here is deterministic in `(admission order, deadlines,
//! the `now` passed to [`Scheduler::pop`])`: no hashing, no randomized
//! tie-breaks, which is what lets the service test suite assert exact
//! completion orders.

use crate::config::Priority;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// One queued entry: the scheduling key plus an opaque payload.
struct Entry<J> {
    /// `(deadline nanos since the scheduler epoch — `u64::MAX` when
    /// none, admission seq)`; smaller dispatches first.
    key: (u64, u64),
    admitted_at: Instant,
    payload: J,
}

impl<J> PartialEq for Entry<J> {
    fn eq(&self, other: &Entry<J>) -> bool {
        self.key == other.key
    }
}
impl<J> Eq for Entry<J> {}
impl<J> PartialOrd for Entry<J> {
    fn partial_cmp(&self, other: &Entry<J>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<J> Ord for Entry<J> {
    fn cmp(&self, other: &Entry<J>) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the smallest key
        // at the front.
        other.key.cmp(&self.key)
    }
}

/// Deterministic three-class EDF scheduler with bounded-wait promotion.
pub(crate) struct Scheduler<J> {
    /// Reference point for deadline keys (deadlines become nanos since
    /// this instant, so they order as plain integers).
    epoch: Instant,
    classes: [BinaryHeap<Entry<J>>; Priority::COUNT],
    len: usize,
}

impl<J> Scheduler<J> {
    pub fn new() -> Scheduler<J> {
        Scheduler {
            epoch: Instant::now(),
            classes: std::array::from_fn(|_| BinaryHeap::new()),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(
        &mut self,
        priority: Priority,
        deadline: Option<Instant>,
        seq: u64,
        admitted_at: Instant,
        payload: J,
    ) {
        let dl = deadline
            .map(|d| d.saturating_duration_since(self.epoch).as_nanos() as u64)
            .unwrap_or(u64::MAX);
        self.classes[priority.index()].push(Entry {
            key: (dl, seq),
            admitted_at,
            payload,
        });
        self.len += 1;
    }

    /// Dispatches the next job: the smallest `(effective class, deadline,
    /// seq)` across the three class heaps, where a head that has waited
    /// at least `starvation_bound` competes as class 0.
    pub fn pop(&mut self, now: Instant, starvation_bound: Duration) -> Option<J> {
        let mut best: Option<(usize, (u64, u64), usize)> = None;
        for (class, heap) in self.classes.iter().enumerate() {
            if let Some(e) = heap.peek() {
                let starved = now.saturating_duration_since(e.admitted_at) >= starvation_bound;
                let effective = if starved { 0 } else { class };
                let cand = (effective, e.key, class);
                if best.map_or(true, |b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, class) = best?;
        self.len -= 1;
        Some(self.classes[class].pop().expect("peeked entry").payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOREVER: Duration = Duration::from_secs(3600);

    fn drain(s: &mut Scheduler<u32>, bound: Duration) -> Vec<u32> {
        let now = Instant::now();
        std::iter::from_fn(|| s.pop(now, bound)).collect()
    }

    #[test]
    fn classes_dispatch_in_priority_order() {
        let mut s = Scheduler::new();
        let t = Instant::now();
        s.push(Priority::Low, None, 0, t, 100u32);
        s.push(Priority::Normal, None, 1, t, 200);
        s.push(Priority::High, None, 2, t, 300);
        assert_eq!(drain(&mut s, FOREVER), vec![300, 200, 100]);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn within_a_class_earliest_deadline_wins_then_seq() {
        let mut s = Scheduler::new();
        let t = Instant::now();
        s.push(
            Priority::Normal,
            Some(t + Duration::from_secs(9)),
            0,
            t,
            1u32,
        );
        s.push(Priority::Normal, Some(t + Duration::from_secs(1)), 1, t, 2);
        s.push(Priority::Normal, None, 2, t, 3);
        s.push(Priority::Normal, None, 3, t, 4);
        assert_eq!(drain(&mut s, FOREVER), vec![2, 1, 3, 4]);
    }

    #[test]
    fn zero_bound_promotes_everything_to_fifo() {
        let mut s = Scheduler::new();
        let t = Instant::now();
        s.push(Priority::Low, None, 0, t, 10u32);
        s.push(Priority::High, None, 1, t, 20);
        // Everything is instantly "starved", so the whole queue competes
        // in one class and admission order decides.
        assert_eq!(drain(&mut s, Duration::ZERO), vec![10, 20]);
    }

    #[test]
    fn starved_low_priority_overtakes_fresh_high_priority() {
        let mut s = Scheduler::new();
        let t = Instant::now();
        let bound = Duration::from_millis(10);
        // The low job was admitted `2×bound` ago; the high job just now.
        s.push(Priority::Low, None, 0, t - 2 * bound, 1u32);
        s.push(Priority::High, None, 1, t, 2);
        assert_eq!(s.pop(t, bound), Some(1));
        assert_eq!(s.pop(t, bound), Some(2));
    }
}
