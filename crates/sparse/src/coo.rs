//! Coordinate-format (COO) sparse matrix: the assembly format.
//!
//! COO is the natural format for incremental construction (finite-element /
//! finite-difference assembly, Matrix Market files). It is converted to
//! [`CsrMatrix`](crate::CsrMatrix) before any computation.

use crate::error::SparseError;
use crate::scalar::Scalar;

/// A sparse matrix in coordinate (triplet) format.
///
/// Duplicate entries are permitted and are *summed* on conversion to CSR,
/// matching the convention of assembly workflows and the Matrix Market
/// format.
///
/// # Examples
///
/// ```
/// use acamar_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::<f64>::new(2, 2);
/// coo.push(0, 0, 1.0).unwrap();
/// coo.push(1, 1, 2.0).unwrap();
/// coo.push(1, 1, 0.5).unwrap(); // duplicate: summed in CSR
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(1, 1), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty `nrows x ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Builds a COO matrix from parallel triplet slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the slices disagree in
    /// length, or [`SparseError::IndexOutOfBounds`] if any index exceeds the
    /// matrix dimensions.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        values: &[T],
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SparseError::DimensionMismatch {
                expected: rows.len(),
                found: cols.len().min(values.len()),
                what: "triplet slice length",
            });
        }
        let mut m = CooMatrix::with_capacity(nrows, ncols, rows.len());
        for ((&r, &c), &v) in rows.iter().zip(cols).zip(values) {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries, *including* duplicates.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `row >= nrows` or
    /// `col >= ncols`.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseError> {
        if row >= self.nrows {
            return Err(SparseError::IndexOutOfBounds {
                index: row,
                bound: self.nrows,
                axis: "row",
            });
        }
        if col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: col,
                bound: self.ncols,
                axis: "column",
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Iterates over stored `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.entries.iter().copied()
    }

    /// Converts to CSR, summing duplicate entries and dropping entries whose
    /// accumulated value is exactly zero is **not** done (explicit zeros are
    /// preserved, as in SuiteSparse practice).
    pub fn to_csr(&self) -> crate::CsrMatrix<T> {
        // Counting sort by row, then stable sort each row segment by column.
        let mut counts = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &self.entries {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.entries.len()];
        let mut next = counts.clone();
        for (k, &(r, _, _)) in self.entries.iter().enumerate() {
            order[next[r]] = k;
            next[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<T> = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);

        let mut scratch: Vec<(usize, T)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[counts[r]..counts[r + 1]] {
                let (_, c, v) = self.entries[k];
                scratch.push((c, v));
            }
            scratch.sort_by_key(|&(c, _)| c);
            // merge duplicates
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }

        crate::CsrMatrix::from_raw_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

impl<T: Scalar> Extend<(usize, usize, T)> for CooMatrix<T> {
    /// Extends with triplets, panicking on out-of-bounds indices.
    ///
    /// Use [`CooMatrix::push`] for fallible insertion.
    fn extend<I: IntoIterator<Item = (usize, usize, T)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("triplet index out of bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut m = CooMatrix::<f64>::new(2, 3);
        assert!(m.push(1, 2, 1.0).is_ok());
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            m.push(0, 3, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "column", .. })
        ));
    }

    #[test]
    fn from_triplets_checks_lengths() {
        let err = CooMatrix::<f64>::from_triplets(2, 2, &[0, 1], &[0], &[1.0]);
        assert!(matches!(err, Err(SparseError::DimensionMismatch { .. })));
    }

    #[test]
    fn to_csr_sorts_and_sums_duplicates() {
        let mut m = CooMatrix::<f64>::new(3, 3);
        m.push(2, 1, 5.0).unwrap();
        m.push(0, 2, 1.0).unwrap();
        m.push(0, 0, 2.0).unwrap();
        m.push(0, 2, 3.0).unwrap(); // duplicate of (0,2)
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(0, 2), 4.0);
        assert_eq!(csr.get(2, 1), 5.0);
        assert_eq!(csr.get(1, 1), 0.0);
        // columns sorted within rows
        let (cols, _) = csr.row(0);
        assert_eq!(cols, &[0, 2]);
    }

    #[test]
    fn empty_matrix_converts() {
        let m = CooMatrix::<f32>::new(4, 4);
        assert!(m.is_empty());
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 4);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut m = CooMatrix::<f64>::new(2, 2);
        m.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 2);
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }
}
