//! Self-contained deterministic pseudo-random number generator.
//!
//! The generators in [`crate::generate`] need reproducible randomness with
//! an explicit seed, nothing more. This module provides a small
//! xoshiro256++ generator (seeded through SplitMix64, the reference
//! seeding procedure) so the crate carries no external dependency — the
//! build must work in hermetic environments with no registry access.
//!
//! The API mirrors the subset of `rand::Rng` the generators use
//! (`gen_range`, `gen_bool`), so call sites read idiomatically.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator.
///
/// Streams are fully determined by the seed: the same seed always yields
/// the same sequence, on every platform and build.
///
/// ```
/// use acamar_sparse::rng::DetRng;
/// let mut a = DetRng::seed_from_u64(7);
/// let mut b = DetRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform draw from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` via Lemire-style rejection (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the draw exactly uniform.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone || zone == 0 {
                return hi;
            }
        }
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut DetRng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.bounded_u64(span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut DetRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            // lo == 0 && hi == u64::MAX as usize: full width
            return rng.next_u64() as usize;
        }
        lo + rng.bounded_u64(span) as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_stream_separation() {
        let a: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = DetRng::seed_from_u64(43);
        let c: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = DetRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5..=5usize);
            assert_eq!(w, 5);
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn integer_draws_cover_the_range() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_a_unit_uniform() {
        let mut r = DetRng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = DetRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
