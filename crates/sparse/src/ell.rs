//! ELLPACK (ELL) sparse format.
//!
//! ELL pads every row to a fixed `width` — the storage-format twin of a
//! fixed-unroll SpMV engine: the padding fraction of an ELL matrix is
//! *exactly* the resource underutilization of the paper's Eq. 5 at an
//! unroll factor equal to the width. Provided both as a general library
//! format and to make that correspondence testable.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// Sentinel column index marking a padding slot.
const PAD: usize = usize::MAX;

/// A sparse matrix in ELLPACK format (row-major slots, `width` per row).
///
/// # Examples
///
/// ```
/// use acamar_sparse::{generate, EllMatrix};
///
/// let a = generate::poisson1d::<f64>(8);
/// let e = EllMatrix::from_csr(&a);
/// assert_eq!(e.width(), 3);
/// assert_eq!(e.mul_vec(&vec![1.0; 8])?, a.mul_vec(&vec![1.0; 8])?);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix<T> {
    nrows: usize,
    ncols: usize,
    width: usize,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> EllMatrix<T> {
    /// Converts from CSR with `width = max NNZ/row`.
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let width = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap_or(0);
        Self::from_csr_with_width(a, width).expect("max width always fits")
    }

    /// Converts from CSR with an explicit slot `width`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if any row holds more
    /// than `width` entries.
    pub fn from_csr_with_width(a: &CsrMatrix<T>, width: usize) -> Result<Self, SparseError> {
        let mut col_idx = vec![PAD; a.nrows() * width];
        let mut values = vec![T::ZERO; a.nrows() * width];
        for (i, cols, vals) in a.iter_rows() {
            if cols.len() > width {
                return Err(SparseError::InvalidStructure(format!(
                    "row {i} has {} entries, exceeds ELL width {width}",
                    cols.len()
                )));
            }
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                col_idx[i * width + k] = c;
                values[i * width + k] = v;
            }
        }
        Ok(EllMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            width,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Slots per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored (non-padding) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.iter().filter(|&&c| c != PAD).count()
    }

    /// Fraction of slots that are padding — the storage analog of the
    /// paper's Eq. 5 underutilization at `unroll = width`.
    pub fn padding_fraction(&self) -> f64 {
        let total = self.nrows * self.width;
        if total == 0 {
            0.0
        } else {
            (total - self.nnz()) as f64 / total as f64
        }
    }

    /// `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on a wrong-length `x`.
    pub fn mul_vec(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
                what: "input vector length",
            });
        }
        let mut y = vec![T::ZERO; self.nrows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for k in 0..self.width {
                let c = self.col_idx[i * self.width + k];
                if c != PAD {
                    acc += self.values[i * self.width + k] * x[c];
                }
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut coo = crate::coo::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            for k in 0..self.width {
                let c = self.col_idx[i * self.width + k];
                if c != PAD {
                    coo.push(i, c, self.values[i * self.width + k])
                        .expect("indices validated at construction");
                }
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, RowDistribution};

    #[test]
    fn round_trip_csr_ell_csr() {
        let a = generate::random_pattern::<f64>(40, RowDistribution::Uniform { min: 1, max: 7 }, 3);
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.to_csr(), a);
        assert_eq!(e.nnz(), a.nnz());
    }

    #[test]
    fn spmv_matches_csr() {
        let a = generate::poisson2d::<f64>(7, 7);
        let e = EllMatrix::from_csr(&a);
        let x: Vec<f64> = (0..49).map(|i| ((i % 5) as f64) - 2.0).collect();
        assert_eq!(e.mul_vec(&x).unwrap(), a.mul_vec(&x).unwrap());
        assert!(e.mul_vec(&[1.0; 3]).is_err());
    }

    #[test]
    fn width_overflow_is_rejected() {
        let a = generate::poisson1d::<f64>(5); // middle rows have 3 entries
        assert!(EllMatrix::from_csr_with_width(&a, 2).is_err());
        assert!(EllMatrix::from_csr_with_width(&a, 3).is_ok());
    }

    #[test]
    fn padding_fraction_equals_eq5_underutilization_at_unroll_width() {
        // For a matrix with no empty rows, ELL padding at width W equals
        // the fabric's Eq. 5 underutilization at unroll = W when every
        // row fits one chunk.
        let a = generate::random_pattern::<f32>(64, RowDistribution::Uniform { min: 1, max: 6 }, 9);
        let e = EllMatrix::from_csr(&a);
        let w = e.width();
        let total_slots = (a.nrows() * w) as f64;
        let expected = (total_slots - a.nnz() as f64) / total_slots;
        assert!((e.padding_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_has_zero_padding() {
        let a = crate::CooMatrix::<f64>::new(3, 3).to_csr();
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.width(), 0);
        assert_eq!(e.padding_fraction(), 0.0);
        assert_eq!(e.mul_vec(&[1.0; 3]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn zero_row_matrix_from_csr_is_fully_empty() {
        // 0 rows, 0 nnz: width collapses to 0 and every slice is empty.
        let a = crate::CooMatrix::<f64>::new(0, 5).to_csr();
        let e = EllMatrix::from_csr(&a);
        assert_eq!(e.nrows(), 0);
        assert_eq!(e.ncols(), 5);
        assert_eq!(e.width(), 0);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.padding_fraction(), 0.0);
        // width() == 0 slicing: the slot arrays hold nrows * width == 0
        // entries, so mul_vec on the empty row set yields an empty vector.
        assert_eq!(e.mul_vec(&[1.0; 5]).unwrap(), Vec::<f64>::new());
        assert_eq!(e.to_csr(), a);
    }

    #[test]
    fn mul_vec_rejects_empty_input_of_wrong_width() {
        let a = crate::CooMatrix::<f64>::new(0, 5).to_csr();
        let e = EllMatrix::from_csr(&a);
        // ncols is 5, so a zero-length x is a dimension mismatch even
        // though the matrix has no rows.
        assert!(matches!(
            e.mul_vec(&[]),
            Err(SparseError::DimensionMismatch {
                expected: 5,
                found: 0,
                ..
            })
        ));

        // A genuinely 0x0 matrix accepts the empty vector.
        let z = crate::CooMatrix::<f64>::new(0, 0).to_csr();
        let ez = EllMatrix::from_csr(&z);
        assert_eq!(ez.width(), 0);
        assert_eq!(ez.mul_vec(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn from_csr_with_width_error_reports_offending_row() {
        let a = generate::poisson1d::<f64>(6); // rows 1..=4 hold 3 entries
        let err = EllMatrix::from_csr_with_width(&a, 2).unwrap_err();
        match err {
            SparseError::InvalidStructure(msg) => {
                assert!(msg.contains("row 1"), "unexpected message: {msg}");
                assert!(msg.contains("width 2"), "unexpected message: {msg}");
            }
            other => panic!("expected InvalidStructure, got {other:?}"),
        }
        // Width 0 is an error as soon as any row is non-empty...
        assert!(EllMatrix::from_csr_with_width(&a, 0).is_err());
        // ...but valid for an all-empty matrix.
        let empty = crate::CooMatrix::<f64>::new(4, 4).to_csr();
        let e = EllMatrix::from_csr_with_width(&empty, 0).unwrap();
        assert_eq!(e.width(), 0);
        assert_eq!(e.mul_vec(&[2.0; 4]).unwrap(), vec![0.0; 4]);
    }
}
