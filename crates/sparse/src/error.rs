//! Error types for sparse-matrix construction, conversion, and I/O.

use std::error::Error;
use std::fmt;

/// Error produced while constructing or manipulating a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A structural invariant of the storage format was violated.
    ///
    /// Carries a human-readable description of the violated invariant.
    InvalidStructure(String),
    /// A row or column index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
        /// Which axis the index addressed (`"row"` or `"column"`).
        axis: &'static str,
    },
    /// Dimensions of two operands do not agree.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
        /// What was being matched (e.g. `"vector length"`).
        what: &'static str,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// A zero (or structurally missing) diagonal entry was found where the
    /// operation requires an invertible diagonal.
    ZeroDiagonal {
        /// Row of the offending diagonal entry.
        row: usize,
    },
    /// A NaN or infinite value was supplied where the operation requires
    /// finite input (e.g. a right-hand side or initial guess).
    NonFiniteValue {
        /// What held the offending value (e.g. `"right-hand side"`).
        what: &'static str,
        /// Index of the first non-finite element.
        index: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidStructure(msg) => {
                write!(f, "invalid sparse structure: {msg}")
            }
            SparseError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (< {bound} required)")
            }
            SparseError::DimensionMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, found {found}"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is not square ({nrows}x{ncols})")
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero or missing diagonal entry at row {row}")
            }
            SparseError::NonFiniteValue { what, index } => {
                write!(f, "non-finite value in {what} at index {index}")
            }
        }
    }
}

impl Error for SparseError {}

/// Error produced while reading or writing Matrix Market files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file did not conform to the Matrix Market format.
    Parse {
        /// 1-based line number of the offending line, if known.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The file parsed but described an invalid matrix.
    Structure(SparseError),
    /// The file uses a Matrix Market feature this reader does not support.
    Unsupported(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            IoError::Structure(e) => write!(f, "matrix market file describes invalid matrix: {e}"),
            IoError::Unsupported(what) => write!(f, "unsupported matrix market feature: {what}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<SparseError> for IoError {
    fn from(e: SparseError) -> Self {
        IoError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SparseError::IndexOutOfBounds {
            index: 9,
            bound: 5,
            axis: "column",
        };
        let msg = e.to_string();
        assert!(msg.contains("column index 9"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn non_finite_value_names_the_container() {
        let e = SparseError::NonFiniteValue {
            what: "right-hand side",
            index: 4,
        };
        assert_eq!(
            e.to_string(),
            "non-finite value in right-hand side at index 4"
        );
    }

    #[test]
    fn io_error_wraps_sources() {
        let inner = SparseError::NotSquare { nrows: 2, ncols: 3 };
        let e = IoError::from(inner.clone());
        assert!(e.to_string().contains("2x3"));
        assert!(Error::source(&e).is_some());
        let io = IoError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SparseError>();
        check::<IoError>();
    }
}
