//! # acamar-sparse
//!
//! Sparse-matrix substrate for the Acamar (MICRO 2024) reproduction:
//! storage formats, Matrix Market I/O, structural analysis, and the
//! synthetic matrix generators that stand in for the paper's SuiteSparse
//! datasets.
//!
//! ## Quick tour
//!
//! ```
//! use acamar_sparse::{analysis, generate, CsrMatrix, RowNnzStats};
//!
//! // A 2D Poisson operator — the canonical PDE discretization (paper §II-A).
//! let a: CsrMatrix<f64> = generate::poisson2d(16, 16);
//!
//! // The structural checks Acamar's Matrix Structure unit performs (§IV-B).
//! let report = analysis::analyze(&a);
//! assert!(report.symmetric);
//! assert!(report.weakly_diagonally_dominant);
//!
//! // The NNZ/row distribution that drives SpMV resource utilization (§III-B).
//! let stats = RowNnzStats::of(&a);
//! assert_eq!(stats.max, 5);
//! ```
//!
//! ## Modules
//!
//! * [`CsrMatrix`], [`CscMatrix`], [`CooMatrix`], [`DenseMatrix`] — storage
//!   formats with validated constructors and conversions.
//! * [`analysis`] — diagonal dominance, symmetry (paper-faithful CSR↔CSC
//!   comparison), Gershgorin definiteness, spectral estimates.
//! * [`generate`] — deterministic matrix generators per structural class.
//! * [`io`] — Matrix Market reader/writer.
//! * [`stats`] — NNZ/row statistics and per-set averages (paper Eq. 7–9).
//! * [`chunk`] — 4096-row chunking (paper §V-B).
//! * [`compiled`] — format-specialized SpMV execution plans compiled from
//!   the MSID unroll schedule (paper Fig. 3 / Eq. 5, host twin).
//! * [`simd`] — portable fixed-lane accumulators and the
//!   [`DeterminismPolicy`] two-tier numeric contract (DESIGN §15).
//! * [`sptrsv`] — level-scheduled sparse triangular solve plans for
//!   incomplete-factorization preconditioners (DESIGN §17).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod chunk;
pub mod compiled;
mod coo;
mod csc;
mod csr;
mod dense;
mod ell;
mod error;
pub mod generate;
pub mod io;
pub mod ops;
pub mod permute;
pub mod rng;
mod scalar;
pub mod simd;
pub mod sptrsv;
pub mod stats;

pub use analysis::{Definiteness, StructureReport};
pub use compiled::{Band, BandHint, BandKind, CompiledSpmv, PatternDelta};
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{CsrMatrix, RowIter};
pub use dense::DenseMatrix;
pub use ell::EllMatrix;
pub use error::{IoError, SparseError};
pub use scalar::Scalar;
pub use simd::DeterminismPolicy;
pub use sptrsv::{CompiledSptrsv, Triangle};
pub use stats::RowNnzStats;
