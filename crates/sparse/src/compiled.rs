//! Compiled SpMV execution plans.
//!
//! The paper's Resource Decision loop (Fig. 3, Algorithm 4) exists to run
//! each row *set* at its optimal unroll factor via partial reconfiguration.
//! This module is the host-side twin: it consumes the per-band unroll
//! schedule chosen by the MSID machinery and *compiles* it into a
//! format-specialized execution plan, following the SELL-C-σ / OSKI
//! auto-tuning playbook.
//!
//! A [`CompiledSpmv`] tiles the rows into contiguous bands, each executed by
//! the kernel that best fits its shape:
//!
//! * [`BandKind::Fixed`] — a run of rows with identical NNZ `w <= 16`:
//!   the zero-padding ELL slice. Column slots are packed `u32` in
//!   `EllMatrix`'s row-major slot layout, value offsets are arithmetic, and
//!   the inner loop is monomorphized on the width (fully unrolled) with four
//!   independent row accumulators in flight.
//! * [`BandKind::Ell`] — a low-variance band: an ELL slice whose padding
//!   fraction is bounded (the storage analog of the paper's Eq. 5
//!   underutilization). Slots are packed like `Fixed`, but each lane is
//!   bounded by its own row length so padding slots are *never* accumulated
//!   (adding `0.0` is not a bitwise no-op: `-0.0 + 0.0 == +0.0`).
//! * [`BandKind::Unrolled`] — a moderate band run as a fixed-width unrolled
//!   CSR loop, monomorphized for U ∈ {1, 2, 4, 8, 16} taken from the MSID
//!   schedule's unroll factor.
//! * [`BandKind::Scalar`] — irregular rows on the generic CSR walk.
//! * [`BandKind::DenseRow`] — heavy outlier rows: deep-unrolled gather, with
//!   a contiguous-column fast path that reads `x` as a slice.
//!
//! The plan is **pattern-only**: it never stores matrix values, so a plan
//! cached under a `PatternFingerprint` is safe to reuse for a matrix with
//! the same pattern but different values. Values are always read from the
//! live CSR through its own `row_ptr`.
//!
//! Every kernel preserves the per-row accumulation order of
//! [`CsrMatrix::mul_vec_into`] exactly — compilation reorders *storage* and
//! interleaves work *across* rows, never the summation order *within* a row
//! — so compiled results are bitwise-identical to the generic path.
//!
//! Band boundaries double as partition points for row-parallel SpMV:
//! [`CompiledSpmv::partition`] splits the band list (never a band) into
//! NNZ-balanced contiguous spans, so the parallel result is the same bytes
//! at any thread count.
//!
//! ## The `Fast` tier
//!
//! Every plan also carries a second execution surface —
//! [`CompiledSpmv::execute_fast`] / [`CompiledSpmv::execute_dot_fast`] —
//! for jobs that opted into [`crate::simd::DeterminismPolicy::Fast`].
//! The fast kernels express the same band walk through the [`Lanes4`]
//! four-lane accumulator: `Fixed`/`Ell` bands fold their existing 4-row
//! interleave into lane operations (numerically identical — each lane is
//! still one row's serial chain), while `Unrolled`/`Scalar`/`DenseRow`
//! bands *reassociate* each row into four partial sums reduced once at
//! the end, breaking the serial FP-add dependency the deterministic
//! contract forces on them. Fast results therefore agree with
//! [`CompiledSpmv::execute`] only to a few ULP per element, never
//! bitwise; compilation itself is policy-independent — the same plan
//! object serves both tiers.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::simd::{dot_fast, Lanes4};
use std::ops::Range;

/// Largest row width handled by the monomorphized [`BandKind::Fixed`] kernel.
pub const MAX_FIXED_WIDTH: usize = 16;

/// Minimum run length of identical-width rows promoted to a `Fixed` band.
pub const MIN_FIXED_RUN: usize = 8;

/// Rows with at least this many entries are heavy outliers ([`BandKind::DenseRow`]).
pub const DENSE_ROW_MIN_NNZ: usize = 128;

/// Maximum slot width for an ELL band.
pub const ELL_MAX_WIDTH: usize = 32;

/// Maximum padding fraction tolerated for an ELL band (Eq. 5 analog).
pub const ELL_MAX_PADDING: f64 = 0.5;

/// Bands at or below this width count as *narrow* for ELL selection.
pub const ELL_NARROW_WIDTH: usize = 12;

/// Tighter padding bound for narrow ELL candidates. Short rows leave the
/// 4-lane kernel little common prefix to amortize its per-group setup, so
/// a ragged narrow band (epb3-shaped: width ~9, mean ~6) loses to the
/// packed-`u32` CSR walk it would otherwise displace — those bands
/// classify as `Unrolled`/`Scalar` instead, which by construction track
/// the generic walk with half the index traffic.
pub const ELL_NARROW_MAX_PADDING: f64 = 0.2;

/// Unroll factors with monomorphized kernels, mirroring the paper's U set.
pub const UNROLL_FACTORS: [usize; 5] = [1, 2, 4, 8, 16];

/// Minimum mean row NNZ for an `Unrolled` band; sparser irregular rows fall
/// back to [`BandKind::Scalar`].
pub const UNROLL_MIN_MEAN_NNZ: usize = 4;

/// A contiguous row range and the unroll factor the MSID schedule assigned
/// to it. The plan compiler never emits a band that crosses a hint boundary,
/// so schedule boundaries survive as partition points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandHint {
    /// Rows covered by this schedule entry.
    pub rows: Range<usize>,
    /// Unroll factor chosen by the Resource Decision loop for these rows.
    pub unroll: usize,
}

/// The specialized kernel selected for a band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandKind {
    /// Every row has exactly `width` entries (`width <= 16`): packed ELL
    /// slots with arithmetic offsets and a fully unrolled inner loop.
    Fixed {
        /// The uniform row width.
        width: usize,
    },
    /// Low-variance band: packed ELL slots of `width`, per-row lengths bound
    /// each lane so padding is never accumulated.
    Ell {
        /// The slot width (max row NNZ in the band).
        width: usize,
    },
    /// Moderate band: CSR walk with a `U`-wide unrolled inner loop.
    Unrolled {
        /// The unroll factor, one of [`UNROLL_FACTORS`].
        unroll: usize,
    },
    /// Irregular band: generic scalar CSR walk.
    Scalar,
    /// Heavy outlier rows: deep-unrolled gather with a contiguous-column
    /// fast path.
    DenseRow,
}

/// One compiled band: a contiguous row range bound to a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Band {
    /// Rows covered by the band.
    pub rows: Range<usize>,
    /// The kernel that executes the band.
    pub kind: BandKind,
    /// Start of this band's slots in the shared slot-column array
    /// (meaningful for `Fixed` and `Ell` bands only).
    slot_base: usize,
    /// Stored entries in the band (drives NNZ-balanced partitioning).
    nnz: usize,
}

impl Band {
    /// Number of rows in the band.
    pub fn len(&self) -> usize {
        self.rows.end - self.rows.start
    }

    /// `true` if the band covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Stored entries in the band.
    pub fn nnz(&self) -> usize {
        self.nnz
    }
}

/// A pattern-level diff between two same-shape CSR matrices: the merged,
/// ascending row ranges whose column structure differs (row-local inserts,
/// removes, or column moves). Values are ignored — two matrices with the
/// same pattern and different values produce an empty delta.
///
/// Sequence solvers use the delta to decide between *patching* the dirty
/// bands of a cached [`CompiledSpmv`] ([`CompiledSpmv::patch`]) and a full
/// recompile: [`Self::dirty_fraction`] is the natural threshold input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternDelta {
    nrows: usize,
    ncols: usize,
    dirty: Vec<Range<usize>>,
    dirty_rows: usize,
}

impl PatternDelta {
    /// Diffs the patterns of `old` and `new`. Returns `None` when the
    /// shapes differ (a shape change is never patchable — callers fall
    /// back to full re-analysis). O(nnz); the scalar types may differ
    /// because patterns are value-independent.
    pub fn between<T: Scalar, U: Scalar>(
        old: &CsrMatrix<T>,
        new: &CsrMatrix<U>,
    ) -> Option<PatternDelta> {
        if old.nrows() != new.nrows() || old.ncols() != new.ncols() {
            return None;
        }
        let (orp, nrp) = (old.row_ptr(), new.row_ptr());
        let (oc, nc) = (old.col_idx(), new.col_idx());
        let row_changed = |r: usize| {
            orp[r + 1] - orp[r] != nrp[r + 1] - nrp[r]
                || oc[orp[r]..orp[r + 1]] != nc[nrp[r]..nrp[r + 1]]
        };
        let mut dirty = Vec::new();
        let mut dirty_rows = 0usize;
        let mut r = 0usize;
        while r < old.nrows() {
            if row_changed(r) {
                let start = r;
                r += 1;
                while r < old.nrows() && row_changed(r) {
                    r += 1;
                }
                dirty_rows += r - start;
                dirty.push(start..r);
            } else {
                r += 1;
            }
        }
        Some(PatternDelta {
            nrows: old.nrows(),
            ncols: old.ncols(),
            dirty,
            dirty_rows,
        })
    }

    /// `true` when the two patterns are identical.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The merged, ascending row ranges whose pattern changed.
    pub fn dirty_ranges(&self) -> &[Range<usize>] {
        &self.dirty
    }

    /// Total number of rows whose pattern changed.
    pub fn dirty_row_count(&self) -> usize {
        self.dirty_rows
    }

    /// Changed rows as a fraction of all rows, in `[0, 1]` (`0` for an
    /// empty matrix).
    pub fn dirty_fraction(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.dirty_rows as f64 / self.nrows as f64
        }
    }
}

/// A compiled, pattern-only SpMV execution plan. See the module docs.
///
/// # Examples
///
/// ```
/// use acamar_sparse::{generate, CompiledSpmv};
///
/// let a = generate::poisson2d::<f64>(9, 9);
/// let plan = CompiledSpmv::compile_default(&a);
/// let x: Vec<f64> = (0..81).map(|i| (i % 7) as f64 - 3.0).collect();
/// let mut y = vec![0.0; 81];
/// plan.execute(&a, &x, &mut y)?;
/// assert_eq!(y, a.mul_vec(&x)?);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSpmv {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    bands: Vec<Band>,
    /// Packed `u32` column slots for every band (half the index traffic of
    /// the CSR's `usize` columns — SpMV is stream-bound, so this is where
    /// most of the compiled win comes from). `Fixed` and wide `Ell` bands
    /// use `EllMatrix`'s row-major slot layout (`width` slots per row,
    /// padding slots repeat the row's last column and are never read —
    /// lanes are length-bounded); the other kinds pack their columns
    /// CSR-contiguous with no padding. Empty when the matrix is too wide to pack
    /// (`ncols > u32::MAX`), in which case every band runs the generic
    /// fallback walk over the CSR's own columns.
    slot_cols: Vec<u32>,
    /// Whether `slot_cols` is populated (`ncols <= u32::MAX`).
    packed: bool,
}

impl CompiledSpmv {
    /// Compiles a plan for `a` from the MSID schedule's band hints.
    ///
    /// `hints` must tile `0..a.nrows()` contiguously in ascending order
    /// (the contract `UnrollSchedule` already enforces). An empty hint
    /// slice on a non-empty matrix is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the hints do not tile
    /// the matrix rows.
    pub fn compile<T: Scalar>(a: &CsrMatrix<T>, hints: &[BandHint]) -> Result<Self, SparseError> {
        let mut expected = 0usize;
        for h in hints {
            if h.rows.start != expected || h.rows.end < h.rows.start || h.rows.end > a.nrows() {
                return Err(SparseError::InvalidStructure(format!(
                    "band hint {:?} does not tile rows contiguously (expected start {expected}, nrows {})",
                    h.rows,
                    a.nrows()
                )));
            }
            expected = h.rows.end;
        }
        if expected != a.nrows() {
            return Err(SparseError::InvalidStructure(format!(
                "band hints cover rows 0..{expected} of {}",
                a.nrows()
            )));
        }

        // Column indices are packed as u32; a matrix too wide for that
        // (never the case for the paper's datasets) compiles to scalar bands.
        let packable = a.ncols() <= u32::MAX as usize;

        let mut plan = CompiledSpmv {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            bands: Vec::new(),
            slot_cols: Vec::new(),
            packed: packable,
        };
        if packable {
            plan.slot_cols.reserve(a.nnz());
        }
        for h in hints {
            plan.compile_hint(a, h, packable);
        }
        Ok(plan)
    }

    /// Compiles a plan with a single full-matrix hint at unroll 8 — the
    /// shape used when no MSID schedule is available.
    pub fn compile_default<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let hint = [BandHint {
            rows: 0..a.nrows(),
            unroll: 8,
        }];
        Self::compile(a, &hint).expect("single full hint always tiles")
    }

    /// Recompiles only the hints touched by `delta`, splicing every clean
    /// hint's bands (and their packed slot columns) verbatim from this
    /// plan. Band classification is hint-local — [`Self::compile`] never
    /// lets a band cross a hint boundary and segments each hint from its
    /// own rows only — so the patched plan is **bitwise-identical** to
    /// `CompiledSpmv::compile(a, hints)` at a fraction of the cost when
    /// the delta is small: clean hints reduce to `memcpy`s of their slot
    /// runs.
    ///
    /// `self` must have been compiled from the *same* `hints` against a
    /// matrix with `delta`'s old pattern; `a` is the mutated matrix. The
    /// splice validates that the plan's band boundaries tile every clean
    /// hint exactly, so a hint mismatch fails loudly instead of producing
    /// a mis-sliced plan.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the hints do not tile
    /// `a`'s rows, if the shapes of `self`, `a`, and `delta` disagree, or
    /// if this plan's bands do not align with `hints`.
    pub fn patch<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        hints: &[BandHint],
        delta: &PatternDelta,
    ) -> Result<CompiledSpmv, SparseError> {
        if self.nrows != a.nrows()
            || self.ncols != a.ncols()
            || delta.nrows != a.nrows()
            || delta.ncols != a.ncols()
        {
            return Err(SparseError::InvalidStructure(format!(
                "patch shape mismatch: plan {}x{}, delta {}x{}, matrix {}x{}",
                self.nrows,
                self.ncols,
                delta.nrows,
                delta.ncols,
                a.nrows(),
                a.ncols()
            )));
        }
        let mut expected = 0usize;
        for h in hints {
            if h.rows.start != expected || h.rows.end < h.rows.start || h.rows.end > a.nrows() {
                return Err(SparseError::InvalidStructure(format!(
                    "band hint {:?} does not tile rows contiguously (expected start {expected}, nrows {})",
                    h.rows,
                    a.nrows()
                )));
            }
            expected = h.rows.end;
        }
        if expected != a.nrows() {
            return Err(SparseError::InvalidStructure(format!(
                "band hints cover rows 0..{expected} of {}",
                a.nrows()
            )));
        }

        let packable = a.ncols() <= u32::MAX as usize;
        let mut plan = CompiledSpmv {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            bands: Vec::with_capacity(self.bands.len()),
            slot_cols: Vec::new(),
            packed: packable,
        };
        if packable {
            plan.slot_cols.reserve(a.nnz());
        }
        let dirty = delta.dirty_ranges();
        let mut di = 0usize;
        let mut bi = 0usize;
        for h in hints {
            while di < dirty.len() && dirty[di].end <= h.rows.start {
                di += 1;
            }
            let hint_dirty = di < dirty.len() && dirty[di].start < h.rows.end;
            if hint_dirty {
                // Skip the stale bands and resegment the hint from the
                // mutated rows — exactly what `compile` would do here.
                while bi < self.bands.len() && self.bands[bi].rows.start < h.rows.end {
                    bi += 1;
                }
                plan.compile_hint(a, h, packable);
            } else {
                // Clean hint: its rows are pattern-identical in `a`, so the
                // old bands (structure and slot columns) are exactly what
                // `compile` would emit — splice them in, re-based onto the
                // new slot array.
                let mut covered = h.rows.start;
                while bi < self.bands.len() && self.bands[bi].rows.start < h.rows.end {
                    let band = &self.bands[bi];
                    if band.rows.start != covered || band.rows.end > h.rows.end {
                        return Err(SparseError::InvalidStructure(format!(
                            "plan band {:?} does not align with hint {:?}: \
                             the plan was not compiled from these hints",
                            band.rows, h.rows
                        )));
                    }
                    let slot_len = match band.kind {
                        BandKind::Fixed { width } | BandKind::Ell { width } => band.len() * width,
                        _ if self.packed => band.nnz,
                        _ => 0,
                    };
                    let slot_base = plan.slot_cols.len();
                    plan.slot_cols.extend_from_slice(
                        &self.slot_cols[band.slot_base..band.slot_base + slot_len],
                    );
                    plan.bands.push(Band {
                        rows: band.rows.clone(),
                        kind: band.kind,
                        slot_base,
                        nnz: band.nnz,
                    });
                    covered = band.rows.end;
                    bi += 1;
                }
                if covered != h.rows.end {
                    return Err(SparseError::InvalidStructure(format!(
                        "plan bands cover rows {}..{covered} of hint {:?}: \
                         the plan was not compiled from these hints",
                        h.rows.start, h.rows
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// Segments one schedule entry into specialized bands. Bands never
    /// cross hint boundaries: the MSID schedule segments rows by density,
    /// so hint edges track width changes and keep each band's slot width
    /// tight — merging across them was measured to *hurt* the ELL kernels
    /// by inflating per-band widths and padding.
    fn compile_hint<T: Scalar>(&mut self, a: &CsrMatrix<T>, hint: &BandHint, packable: bool) {
        let rp = a.row_ptr();
        let mut start = hint.rows.start;
        while start < hint.rows.end {
            let heavy = rp[start + 1] - rp[start] >= DENSE_ROW_MIN_NNZ;
            let mut end = start + 1;
            while end < hint.rows.end && (rp[end + 1] - rp[end] >= DENSE_ROW_MIN_NNZ) == heavy {
                end += 1;
            }
            if heavy {
                self.push_band(start..end, BandKind::DenseRow, a);
            } else {
                self.compile_light_segment(a, start..end, hint.unroll, packable);
            }
            start = end;
        }
    }

    /// Segments a run of non-heavy rows: uniform runs become `Fixed` bands,
    /// the gaps become `Ell`, `Unrolled`, or `Scalar` bands.
    fn compile_light_segment<T: Scalar>(
        &mut self,
        a: &CsrMatrix<T>,
        rows: Range<usize>,
        unroll: usize,
        packable: bool,
    ) {
        let rp = a.row_ptr();
        let width = |r: usize| rp[r + 1] - rp[r];
        let mut pending = rows.start;
        let mut start = rows.start;
        while start < rows.end {
            let w = width(start);
            let mut end = start + 1;
            while end < rows.end && width(end) == w {
                end += 1;
            }
            if packable && w <= MAX_FIXED_WIDTH && end - start >= MIN_FIXED_RUN {
                if pending < start {
                    self.push_mixed_band(a, pending..start, unroll, packable);
                }
                self.push_band(start..end, BandKind::Fixed { width: w }, a);
                pending = end;
            }
            start = end;
        }
        if pending < rows.end {
            self.push_mixed_band(a, pending..rows.end, unroll, packable);
        }
    }

    /// Classifies a mixed-width segment as `Ell`, `Unrolled`, or `Scalar`.
    fn push_mixed_band<T: Scalar>(
        &mut self,
        a: &CsrMatrix<T>,
        rows: Range<usize>,
        unroll: usize,
        packable: bool,
    ) {
        let rp = a.row_ptr();
        let nnz = rp[rows.end] - rp[rows.start];
        let len = rows.end - rows.start;
        let max_w = rows.clone().map(|r| rp[r + 1] - rp[r]).max().unwrap_or(0);
        let slots = len * max_w;
        let padding = if slots == 0 {
            0.0
        } else {
            (slots - nnz) as f64 / slots as f64
        };
        let padding_limit = if max_w <= ELL_NARROW_WIDTH {
            ELL_NARROW_MAX_PADDING
        } else {
            ELL_MAX_PADDING
        };
        let kind = if packable && max_w <= ELL_MAX_WIDTH && padding <= padding_limit {
            BandKind::Ell { width: max_w }
        } else if nnz >= len * UNROLL_MIN_MEAN_NNZ {
            BandKind::Unrolled {
                unroll: clamp_unroll(unroll),
            }
        } else {
            BandKind::Scalar
        };
        self.push_band(rows, kind, a);
    }

    /// Records a band, packing its `u32` slot columns: ELL slot layout for
    /// `Fixed`/`Ell`, CSR-contiguous for the other kinds (skipped entirely
    /// for an unpackable matrix, whose bands run the generic fallback).
    fn push_band<T: Scalar>(&mut self, rows: Range<usize>, kind: BandKind, a: &CsrMatrix<T>) {
        if rows.is_empty() {
            return;
        }
        let rp = a.row_ptr();
        let slot_base = self.slot_cols.len();
        match kind {
            BandKind::Fixed { width } | BandKind::Ell { width } => {
                self.slot_cols.reserve(rows.len() * width);
                for r in rows.clone() {
                    let (cols, _) = a.row(r);
                    for &c in cols {
                        self.slot_cols.push(c as u32);
                    }
                    // Pad to the slot width with the last real column (or 0
                    // for an empty row); padding slots are never read.
                    let pad = cols.last().copied().unwrap_or(0) as u32;
                    for _ in cols.len()..width {
                        self.slot_cols.push(pad);
                    }
                }
            }
            _ if self.packed => {
                let cols = a.col_idx();
                self.slot_cols
                    .extend(cols[rp[rows.start]..rp[rows.end]].iter().map(|&c| c as u32));
            }
            _ => {}
        }
        self.bands.push(Band {
            nnz: rp[rows.end] - rp[rows.start],
            rows,
            kind,
            slot_base,
        });
    }

    /// Number of rows the plan was compiled for.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns the plan was compiled for.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries the plan was compiled for.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The compiled bands, ascending and tiling `0..nrows`.
    pub fn bands(&self) -> &[Band] {
        &self.bands
    }

    /// Cheap provenance check: `true` if `a` has the shape this plan was
    /// compiled for. Callers that obtained the plan from a pattern cache
    /// assert (as `PlanCache` does) that a matching shape implies a
    /// matching pattern; [`Self::verify_pattern`] performs the deep check.
    pub fn matches<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        self.nrows == a.nrows() && self.ncols == a.ncols() && self.nnz == a.nnz()
    }

    /// Deep provenance check: `true` if every packed slot column and band
    /// boundary agrees with `a`'s pattern. O(nnz); meant for tests and
    /// debug assertions, not the hot path.
    pub fn verify_pattern<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        if !self.matches(a) {
            return false;
        }
        let mut expected = 0usize;
        for band in &self.bands {
            if band.rows.start != expected {
                return false;
            }
            expected = band.rows.end;
            match band.kind {
                BandKind::Fixed { width } | BandKind::Ell { width } => {
                    for (i, r) in band.rows.clone().enumerate() {
                        let (cols, _) = a.row(r);
                        if cols.len() > width {
                            return false;
                        }
                        let base = band.slot_base + i * width;
                        if cols
                            .iter()
                            .zip(&self.slot_cols[base..base + cols.len()])
                            .any(|(&c, &s)| c as u32 != s)
                        {
                            return false;
                        }
                    }
                }
                _ if self.packed => {
                    let rp = a.row_ptr();
                    let run = &a.col_idx()[rp[band.rows.start]..rp[band.rows.end]];
                    if run.len() != band.nnz
                        || run
                            .iter()
                            .zip(&self.slot_cols[band.slot_base..band.slot_base + band.nnz])
                            .any(|(&c, &s)| c as u32 != s)
                    {
                        return false;
                    }
                }
                _ => {}
            }
        }
        expected == self.nrows
    }

    /// Splits the band list into at most `parts` contiguous, NNZ-balanced
    /// spans of band indices. Threads never split a band, so parallel
    /// execution is bitwise-identical to serial at any `parts`.
    ///
    /// Returned spans are non-empty, ascending, and tile `0..bands.len()`;
    /// fewer than `parts` spans are returned when there are not enough
    /// bands (or not enough work) to go around.
    pub fn partition(&self, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.max(1);
        let mut out = Vec::with_capacity(parts.min(self.bands.len()));
        if self.bands.is_empty() {
            return out;
        }
        let total = self.nnz.max(1);
        let mut band = 0usize;
        let mut done = 0usize;
        for p in 0..parts {
            if band == self.bands.len() {
                break;
            }
            let remaining_parts = parts - p;
            let target = done + (total - done).div_ceil(remaining_parts);
            let start = band;
            while band < self.bands.len() && (band == start || done < target) {
                done += self.bands[band].nnz;
                band += 1;
            }
            out.push(start..band);
        }
        // Any leftover bands (possible when late bands are empty) join the
        // final span so the spans always tile the band list.
        if let Some(last) = out.last_mut() {
            last.end = self.bands.len();
        }
        out
    }

    /// Rows covered by a contiguous span of bands.
    pub fn span_rows(&self, bands: Range<usize>) -> Range<usize> {
        if bands.is_empty() || self.bands.is_empty() {
            return 0..0;
        }
        self.bands[bands.start].rows.start..self.bands[bands.end - 1].rows.end
    }

    /// Executes the full plan: `y = A x`, bitwise-identical to
    /// [`CsrMatrix::mul_vec_into`]. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on wrong-length `x`/`y`
    /// and [`SparseError::InvalidStructure`] if `a`'s shape does not match
    /// the plan (see [`Self::matches`]).
    pub fn execute<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        x: &[T],
        y: &mut [T],
    ) -> Result<(), SparseError> {
        self.check(a, x, y)?;
        self.execute_span(0..self.bands.len(), a, x, y);
        Ok(())
    }

    /// Executes the full plan fused with a dot product: computes `y = A x`
    /// and returns `y · z`, both bitwise-identical to the unfused pair
    /// (SpMV, then a row-ascending dot). Allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Self::execute`], plus a mismatch error for `z`.
    pub fn execute_dot<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        x: &[T],
        y: &mut [T],
        z: &[T],
    ) -> Result<T, SparseError> {
        self.check(a, x, y)?;
        if z.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: z.len(),
                what: "dot vector length",
            });
        }
        let mut acc = T::ZERO;
        for b in 0..self.bands.len() {
            let rows = self.bands[b].rows.clone();
            self.execute_span(b..b + 1, a, x, &mut y[rows.clone()]);
            // Accumulate the dot in row-ascending order: bands ascend and
            // tile the rows, so this matches dot(y, z) after a full SpMV.
            for (yi, zi) in y[rows.clone()].iter().zip(&z[rows]) {
                acc += *yi * *zi;
            }
        }
        Ok(acc)
    }

    fn check<T: Scalar>(&self, a: &CsrMatrix<T>, x: &[T], y: &[T]) -> Result<(), SparseError> {
        if !self.matches(a) {
            return Err(SparseError::InvalidStructure(format!(
                "compiled plan ({}x{}, nnz {}) does not match matrix ({}x{}, nnz {})",
                self.nrows,
                self.ncols,
                self.nnz,
                a.nrows(),
                a.ncols(),
                a.nnz()
            )));
        }
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
                what: "input vector length",
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: y.len(),
                what: "output vector length",
            });
        }
        debug_assert!(self.verify_pattern(a), "compiled plan pattern mismatch");
        Ok(())
    }

    /// Executes a contiguous span of bands into `y_span`, which must cover
    /// exactly [`Self::span_rows`]`(bands)`. This is the unit of work a
    /// parallel caller hands each thread; disjoint spans write disjoint
    /// `y` slices. Allocation-free; no dimension checks (crate-visible
    /// callers go through [`Self::execute`] or validated kernels).
    pub fn execute_span<T: Scalar>(
        &self,
        bands: Range<usize>,
        a: &CsrMatrix<T>,
        x: &[T],
        y_span: &mut [T],
    ) {
        let row0 = self.span_rows(bands.clone()).start;
        let rp = a.row_ptr();
        let cols = a.col_idx();
        let vals = a.values();
        for band in &self.bands[bands] {
            let y = &mut y_span[band.rows.start - row0..band.rows.end - row0];
            let band_rp = &rp[band.rows.start..band.rows.end + 1];
            if !self.packed {
                // Matrix too wide for u32 slots: every band runs the
                // generic walk over the CSR's own columns.
                run_fallback(band_rp, cols, vals, x, y);
                continue;
            }
            match band.kind {
                BandKind::Fixed { width } => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + y.len() * width];
                    run_fixed_dispatch(width, band_rp[0], slots, vals, x, y);
                }
                BandKind::Ell { width } => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + y.len() * width];
                    run_ell(width, band_rp, slots, vals, x, y);
                }
                BandKind::Unrolled { unroll } => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + band.nnz];
                    match unroll {
                        1 => run_unrolled::<T, 1>(band_rp, slots, vals, x, y),
                        2 => run_unrolled::<T, 2>(band_rp, slots, vals, x, y),
                        4 => run_unrolled::<T, 4>(band_rp, slots, vals, x, y),
                        8 => run_unrolled::<T, 8>(band_rp, slots, vals, x, y),
                        _ => run_unrolled::<T, 16>(band_rp, slots, vals, x, y),
                    }
                }
                BandKind::Scalar => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + band.nnz];
                    run_scalar(band_rp, slots, vals, x, y);
                }
                BandKind::DenseRow => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + band.nnz];
                    run_dense_row(band_rp, slots, vals, x, y);
                }
            }
        }
    }

    /// Executes the full plan on the `Fast` tier: `y = A x` with
    /// reassociated per-row reductions (see the module docs). Agrees with
    /// [`Self::execute`] to a few ULP per element on well-conditioned
    /// inputs; not bitwise. Allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Self::execute`].
    pub fn execute_fast<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        x: &[T],
        y: &mut [T],
    ) -> Result<(), SparseError> {
        self.check(a, x, y)?;
        self.execute_span_fast(0..self.bands.len(), a, x, y);
        Ok(())
    }

    /// `Fast`-tier fused SpMV·dot: computes `y = A x` and returns `y · z`,
    /// both with reassociated reductions. Allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Self::execute_dot`].
    pub fn execute_dot_fast<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        x: &[T],
        y: &mut [T],
        z: &[T],
    ) -> Result<T, SparseError> {
        self.check(a, x, y)?;
        if z.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: z.len(),
                what: "dot vector length",
            });
        }
        let mut acc = T::ZERO;
        for b in 0..self.bands.len() {
            let rows = self.bands[b].rows.clone();
            self.execute_span_fast(b..b + 1, a, x, &mut y[rows.clone()]);
            // Band-local lane-wise dot while the y slice is still hot.
            acc += dot_fast(&y[rows.clone()], &z[rows]);
        }
        Ok(acc)
    }

    /// `Fast`-tier twin of [`Self::execute_span`]: the same band walk with
    /// the lane-accumulated kernels. Disjoint spans still write disjoint
    /// `y` slices, so parallel callers partition identically on both
    /// tiers. Allocation-free; no dimension checks.
    pub fn execute_span_fast<T: Scalar>(
        &self,
        bands: Range<usize>,
        a: &CsrMatrix<T>,
        x: &[T],
        y_span: &mut [T],
    ) {
        // One bound check for the whole span: every packed slot is a CSR
        // column (`< ncols` by `CsrMatrix`'s structure validation; padding
        // repeats a real column), so after this assert the fast kernels'
        // unchecked `x` gathers ([`gather`]) cannot escape `x`.
        assert!(
            x.len() >= self.ncols,
            "x len {} shorter than matrix width {}",
            x.len(),
            self.ncols
        );
        let row0 = self.span_rows(bands.clone()).start;
        let rp = a.row_ptr();
        let cols = a.col_idx();
        let vals = a.values();
        for band in &self.bands[bands] {
            let y = &mut y_span[band.rows.start - row0..band.rows.end - row0];
            let band_rp = &rp[band.rows.start..band.rows.end + 1];
            if !self.packed {
                // Unpackable freak case: the generic serial walk is the
                // only kernel; both tiers share it.
                run_fallback(band_rp, cols, vals, x, y);
                continue;
            }
            match band.kind {
                BandKind::Fixed { width } => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + y.len() * width];
                    run_fixed_fast_dispatch(width, band_rp[0], slots, vals, x, y);
                }
                BandKind::Ell { width } => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + y.len() * width];
                    run_ell_fast(width, band_rp, slots, vals, x, y);
                }
                // The unroll factor is irrelevant on the fast tier: each
                // CSR-walk row picks serial vs. lane gather by length.
                BandKind::Unrolled { .. } | BandKind::Scalar => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + band.nnz];
                    run_rows_fast(band_rp, slots, vals, x, y);
                }
                BandKind::DenseRow => {
                    let slots = &self.slot_cols[band.slot_base..band.slot_base + band.nnz];
                    run_dense_row_fast(band_rp, slots, vals, x, y);
                }
            }
        }
    }
}

/// Rounds an MSID unroll factor down to the nearest monomorphized factor.
fn clamp_unroll(unroll: usize) -> usize {
    let mut best = UNROLL_FACTORS[0];
    for &u in &UNROLL_FACTORS {
        if u <= unroll {
            best = u;
        }
    }
    best
}

/// Audit check shared by every packed-slot kernel: in debug builds, walk
/// the band's slot columns once and confirm they all land inside `x`.
/// A slot that escaped `verify_pattern` (stale cache entry, corrupted
/// plan) must fail loudly here instead of silently gathering garbage —
/// the lane kernels read `x[slot]` unconditionally.
#[inline]
fn debug_assert_slots_in_bounds<T>(slots: &[u32], x: &[T]) {
    debug_assert!(
        slots.iter().all(|&c| (c as usize) < x.len()),
        "stale packed slot column out of bounds (x len {})",
        x.len()
    );
}

/// Reads `x[c]` without a per-element bounds check — the fast tier's
/// gather primitive. This is *checked, not assumed*: `execute_span_fast`
/// asserts `x.len() >= ncols` once per call, every packed slot is a CSR
/// column `< ncols` by construction (padding repeats a real column), and
/// debug builds re-audit every band via [`debug_assert_slots_in_bounds`].
/// The deterministic kernels keep the checked loads; eliding them there
/// would change nothing observable but the tiers deliberately differ only
/// where the fast tier buys something.
#[inline(always)]
fn gather<T: Scalar>(x: &[T], c: u32) -> T {
    debug_assert!((c as usize) < x.len(), "packed slot escapes x");
    // SAFETY: `c < ncols <= x.len()` — asserted at span entry and
    // guaranteed for every slot at plan build; see the doc above.
    unsafe { *x.get_unchecked(c as usize) }
}

/// Dispatches a `Fixed` band to its monomorphized width.
#[inline]
fn run_fixed_dispatch<T: Scalar>(
    width: usize,
    val_base: usize,
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    match width {
        0 => y.fill(T::ZERO),
        1 => run_fixed::<T, 1>(val_base, slots, vals, x, y),
        2 => run_fixed::<T, 2>(val_base, slots, vals, x, y),
        3 => run_fixed::<T, 3>(val_base, slots, vals, x, y),
        4 => run_fixed::<T, 4>(val_base, slots, vals, x, y),
        5 => run_fixed::<T, 5>(val_base, slots, vals, x, y),
        6 => run_fixed::<T, 6>(val_base, slots, vals, x, y),
        7 => run_fixed::<T, 7>(val_base, slots, vals, x, y),
        8 => run_fixed::<T, 8>(val_base, slots, vals, x, y),
        9 => run_fixed::<T, 9>(val_base, slots, vals, x, y),
        10 => run_fixed::<T, 10>(val_base, slots, vals, x, y),
        11 => run_fixed::<T, 11>(val_base, slots, vals, x, y),
        12 => run_fixed::<T, 12>(val_base, slots, vals, x, y),
        13 => run_fixed::<T, 13>(val_base, slots, vals, x, y),
        14 => run_fixed::<T, 14>(val_base, slots, vals, x, y),
        15 => run_fixed::<T, 15>(val_base, slots, vals, x, y),
        _ => run_fixed::<T, 16>(val_base, slots, vals, x, y),
    }
}

/// Uniform-width band: four independent row accumulator chains hide FP add
/// latency; `W` is a compile-time constant so the inner loop fully unrolls
/// and the per-lane slices become fixed-size arrays (no bounds checks).
#[inline]
fn run_fixed<T: Scalar, const W: usize>(
    val_base: usize,
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let n = y.len();
    let mut r = 0usize;
    while r + 4 <= n {
        let b0 = r * W;
        let s0: &[u32; W] = slots[b0..b0 + W].try_into().unwrap();
        let s1: &[u32; W] = slots[b0 + W..b0 + 2 * W].try_into().unwrap();
        let s2: &[u32; W] = slots[b0 + 2 * W..b0 + 3 * W].try_into().unwrap();
        let s3: &[u32; W] = slots[b0 + 3 * W..b0 + 4 * W].try_into().unwrap();
        let v = val_base + b0;
        let v0: &[T; W] = vals[v..v + W].try_into().unwrap();
        let v1: &[T; W] = vals[v + W..v + 2 * W].try_into().unwrap();
        let v2: &[T; W] = vals[v + 2 * W..v + 3 * W].try_into().unwrap();
        let v3: &[T; W] = vals[v + 3 * W..v + 4 * W].try_into().unwrap();
        let mut a0 = T::ZERO;
        let mut a1 = T::ZERO;
        let mut a2 = T::ZERO;
        let mut a3 = T::ZERO;
        for k in 0..W {
            a0 += v0[k] * x[s0[k] as usize];
            a1 += v1[k] * x[s1[k] as usize];
            a2 += v2[k] * x[s2[k] as usize];
            a3 += v3[k] * x[s3[k] as usize];
        }
        y[r] = a0;
        y[r + 1] = a1;
        y[r + 2] = a2;
        y[r + 3] = a3;
        r += 4;
    }
    while r < n {
        let b = r * W;
        let s: &[u32; W] = slots[b..b + W].try_into().unwrap();
        let v: &[T; W] = vals[val_base + b..val_base + b + W].try_into().unwrap();
        let mut acc = T::ZERO;
        for k in 0..W {
            acc += v[k] * x[s[k] as usize];
        }
        y[r] = acc;
        r += 1;
    }
}

/// Low-variance ELL band: four lanes run an unconditional common prefix of
/// `min(len0..len3)` slots, then finish interleaved with per-lane length
/// guards so the accumulator chains stay independent through the ragged
/// region. Padding slots are never accumulated, preserving bitwise
/// identity.
#[inline]
fn run_ell<T: Scalar>(
    width: usize,
    band_rp: &[usize],
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let n = y.len();
    let row = |r: usize| (band_rp[r], band_rp[r + 1] - band_rp[r]);
    let lane = |r: usize, len: usize| &slots[r * width..r * width + len];
    let mut r = 0usize;
    while r + 4 <= n {
        let (o0, l0) = row(r);
        let (o1, l1) = row(r + 1);
        let (o2, l2) = row(r + 2);
        let (o3, l3) = row(r + 3);
        let (s0, s1, s2, s3) = (
            lane(r, l0),
            lane(r + 1, l1),
            lane(r + 2, l2),
            lane(r + 3, l3),
        );
        let (v0, v1, v2, v3) = (
            &vals[o0..o0 + l0],
            &vals[o1..o1 + l1],
            &vals[o2..o2 + l2],
            &vals[o3..o3 + l3],
        );
        let m = l0.min(l1).min(l2).min(l3);
        let mut a0 = T::ZERO;
        let mut a1 = T::ZERO;
        let mut a2 = T::ZERO;
        let mut a3 = T::ZERO;
        for k in 0..m {
            a0 += v0[k] * x[s0[k] as usize];
            a1 += v1[k] * x[s1[k] as usize];
            a2 += v2[k] * x[s2[k] as usize];
            a3 += v3[k] * x[s3[k] as usize];
        }
        // Interleaved, length-guarded continuation: lanes past their own
        // length skip the slot, so padding is still never accumulated, but
        // the four accumulator chains stay independent instead of draining
        // one sequential tail loop per lane.
        let lmax = l0.max(l1).max(l2).max(l3);
        for k in m..lmax {
            if k < l0 {
                a0 += v0[k] * x[s0[k] as usize];
            }
            if k < l1 {
                a1 += v1[k] * x[s1[k] as usize];
            }
            if k < l2 {
                a2 += v2[k] * x[s2[k] as usize];
            }
            if k < l3 {
                a3 += v3[k] * x[s3[k] as usize];
            }
        }
        y[r] = a0;
        y[r + 1] = a1;
        y[r + 2] = a2;
        y[r + 3] = a3;
        r += 4;
    }
    while r < n {
        let (o, l) = row(r);
        let s = lane(r, l);
        let v = &vals[o..o + l];
        let mut acc = T::ZERO;
        for k in 0..l {
            acc += v[k] * x[s[k] as usize];
        }
        y[r] = acc;
        r += 1;
    }
}

/// Moderate band: CSR walk over packed `u32` slot columns with a `U`-wide
/// unrolled inner loop. One accumulator chain per row keeps the summation
/// order identical to the generic walk.
#[inline]
fn run_unrolled<T: Scalar, const U: usize>(
    band_rp: &[usize],
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let base = band_rp[0];
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let rc = &slots[o - base..e - base];
        let rv = &vals[o..e];
        let mut acc = T::ZERO;
        let mut k = 0usize;
        while k + U <= rc.len() {
            let ca: &[u32; U] = rc[k..k + U].try_into().unwrap();
            let va: &[T; U] = rv[k..k + U].try_into().unwrap();
            for j in 0..U {
                acc += va[j] * x[ca[j] as usize];
            }
            k += U;
        }
        for j in k..rc.len() {
            acc += rv[j] * x[rc[j] as usize];
        }
        *yr = acc;
    }
}

/// Irregular band: scalar CSR walk over packed `u32` slot columns.
#[inline]
fn run_scalar<T: Scalar>(band_rp: &[usize], slots: &[u32], vals: &[T], x: &[T], y: &mut [T]) {
    debug_assert_slots_in_bounds(slots, x);
    let base = band_rp[0];
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let mut acc = T::ZERO;
        for (&c, &v) in slots[o - base..e - base].iter().zip(&vals[o..e]) {
            acc += v * x[c as usize];
        }
        *yr = acc;
    }
}

/// Unpackable matrix (`ncols > u32::MAX`): the generic scalar CSR walk over
/// the matrix's own columns, verbatim.
#[inline]
fn run_fallback<T: Scalar>(band_rp: &[usize], cols: &[usize], vals: &[T], x: &[T], y: &mut [T]) {
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let mut acc = T::ZERO;
        for (&c, &v) in cols[o..e].iter().zip(&vals[o..e]) {
            acc += v * x[c];
        }
        *yr = acc;
    }
}

/// Heavy outlier rows: when the row's columns are one contiguous run
/// (sorted CSR makes this an O(1) check), stream `x` as a slice with no
/// gather; otherwise fall back to the 16-wide unrolled gather.
#[inline]
fn run_dense_row<T: Scalar>(band_rp: &[usize], slots: &[u32], vals: &[T], x: &[T], y: &mut [T]) {
    debug_assert_slots_in_bounds(slots, x);
    let base = band_rp[0];
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let len = e - o;
        let rc = &slots[o - base..e - base];
        if len > 0 && (rc[len - 1] - rc[0]) as usize == len - 1 {
            let xs = &x[rc[0] as usize..rc[0] as usize + len];
            let mut acc = T::ZERO;
            for (v, xv) in vals[o..e].iter().zip(xs) {
                acc += *v * *xv;
            }
            *yr = acc;
        } else {
            let rv = &vals[o..e];
            let mut acc = T::ZERO;
            let mut k = 0usize;
            while k + 16 <= rc.len() {
                let ca: &[u32; 16] = rc[k..k + 16].try_into().unwrap();
                let va: &[T; 16] = rv[k..k + 16].try_into().unwrap();
                for j in 0..16 {
                    acc += va[j] * x[ca[j] as usize];
                }
                k += 16;
            }
            for j in k..rc.len() {
                acc += rv[j] * x[rc[j] as usize];
            }
            *yr = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Fast-tier kernels (`DeterminismPolicy::Fast`): the same band walk through
// the `Lanes4` accumulator, with the per-element `x` bounds checks elided
// (`gather`, justified by the span-entry assert). `Fixed`/`Ell` bands run
// the 4-row interleave in lane form — per-row numerics identical, each
// lane is one row's serial chain. Within-row reassociation is reserved
// for long contiguous runs and `DenseRow` outliers: on the short rows of
// the CSR-walk kinds the out-of-order window already overlaps the
// independent per-row chains, so a per-row lane reduce only adds cost.
// ---------------------------------------------------------------------------

/// Scattered CSR-walk row length at which the fast tier switches from the
/// plain serial chain to the 16-slot-unrolled walk. Below it the unroll
/// bookkeeping costs more than it saves; at or above it the wider body
/// keeps the load ports fed.
const ROW_UNROLL_LEN: usize = 16;

/// Dispatches a `Fixed` band to its monomorphized fast-tier width.
#[inline]
fn run_fixed_fast_dispatch<T: Scalar>(
    width: usize,
    val_base: usize,
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    match width {
        0 => y.fill(T::ZERO),
        1 => run_fixed_fast::<T, 1>(val_base, slots, vals, x, y),
        2 => run_fixed_fast::<T, 2>(val_base, slots, vals, x, y),
        3 => run_fixed_fast::<T, 3>(val_base, slots, vals, x, y),
        4 => run_fixed_fast::<T, 4>(val_base, slots, vals, x, y),
        5 => run_fixed_fast::<T, 5>(val_base, slots, vals, x, y),
        6 => run_fixed_fast::<T, 6>(val_base, slots, vals, x, y),
        7 => run_fixed_fast::<T, 7>(val_base, slots, vals, x, y),
        8 => run_fixed_fast::<T, 8>(val_base, slots, vals, x, y),
        9 => run_fixed_fast::<T, 9>(val_base, slots, vals, x, y),
        10 => run_fixed_fast::<T, 10>(val_base, slots, vals, x, y),
        11 => run_fixed_fast::<T, 11>(val_base, slots, vals, x, y),
        12 => run_fixed_fast::<T, 12>(val_base, slots, vals, x, y),
        13 => run_fixed_fast::<T, 13>(val_base, slots, vals, x, y),
        14 => run_fixed_fast::<T, 14>(val_base, slots, vals, x, y),
        15 => run_fixed_fast::<T, 15>(val_base, slots, vals, x, y),
        _ => run_fixed_fast::<T, 16>(val_base, slots, vals, x, y),
    }
}

/// Uniform-width band, fast tier: the 4-row interleave becomes the four
/// lanes of a [`Lanes4`] multiply-accumulate — per-row numerics are
/// unchanged (each lane is one row's serial chain), but the lane form
/// gives LLVM a straight gather-FMA body to vectorize, and the `x`
/// gathers go through the unchecked [`gather`].
#[inline]
fn run_fixed_fast<T: Scalar, const W: usize>(
    val_base: usize,
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let n = y.len();
    let mut r = 0usize;
    while r + 4 <= n {
        let b0 = r * W;
        let s0: &[u32; W] = slots[b0..b0 + W].try_into().unwrap();
        let s1: &[u32; W] = slots[b0 + W..b0 + 2 * W].try_into().unwrap();
        let s2: &[u32; W] = slots[b0 + 2 * W..b0 + 3 * W].try_into().unwrap();
        let s3: &[u32; W] = slots[b0 + 3 * W..b0 + 4 * W].try_into().unwrap();
        let v = val_base + b0;
        let v0: &[T; W] = vals[v..v + W].try_into().unwrap();
        let v1: &[T; W] = vals[v + W..v + 2 * W].try_into().unwrap();
        let v2: &[T; W] = vals[v + 2 * W..v + 3 * W].try_into().unwrap();
        let v3: &[T; W] = vals[v + 3 * W..v + 4 * W].try_into().unwrap();
        let mut acc = Lanes4::zero();
        for k in 0..W {
            acc = acc.mul_add(
                Lanes4::new([v0[k], v1[k], v2[k], v3[k]]),
                Lanes4::new([
                    gather(x, s0[k]),
                    gather(x, s1[k]),
                    gather(x, s2[k]),
                    gather(x, s3[k]),
                ]),
            );
        }
        y[r..r + 4].copy_from_slice(&acc.to_array());
        r += 4;
    }
    while r < n {
        let b = r * W;
        let s: &[u32; W] = slots[b..b + W].try_into().unwrap();
        let v: &[T; W] = vals[val_base + b..val_base + b + W].try_into().unwrap();
        let mut acc = T::ZERO;
        for k in 0..W {
            acc += v[k] * gather(x, s[k]);
        }
        y[r] = acc;
        r += 1;
    }
}

/// Narrow low-variance ELL band, fast tier: the unconditional common
/// prefix runs as [`Lanes4`] multiply-accumulates (per-row numerics
/// unchanged), then the ragged continuation finishes with the same
/// length-guarded interleave as the deterministic kernel; `x` gathers go
/// through the unchecked [`gather`].
#[inline]
fn run_ell_fast<T: Scalar>(
    width: usize,
    band_rp: &[usize],
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let n = y.len();
    let row = |r: usize| (band_rp[r], band_rp[r + 1] - band_rp[r]);
    let lane = |r: usize, len: usize| &slots[r * width..r * width + len];
    let mut r = 0usize;
    while r + 4 <= n {
        let (o0, l0) = row(r);
        let (o1, l1) = row(r + 1);
        let (o2, l2) = row(r + 2);
        let (o3, l3) = row(r + 3);
        let (s0, s1, s2, s3) = (
            lane(r, l0),
            lane(r + 1, l1),
            lane(r + 2, l2),
            lane(r + 3, l3),
        );
        let (v0, v1, v2, v3) = (
            &vals[o0..o0 + l0],
            &vals[o1..o1 + l1],
            &vals[o2..o2 + l2],
            &vals[o3..o3 + l3],
        );
        let m = l0.min(l1).min(l2).min(l3);
        let mut acc = Lanes4::zero();
        for k in 0..m {
            acc = acc.mul_add(
                Lanes4::new([v0[k], v1[k], v2[k], v3[k]]),
                Lanes4::new([
                    gather(x, s0[k]),
                    gather(x, s1[k]),
                    gather(x, s2[k]),
                    gather(x, s3[k]),
                ]),
            );
        }
        let [mut a0, mut a1, mut a2, mut a3] = acc.to_array();
        let lmax = l0.max(l1).max(l2).max(l3);
        for k in m..lmax {
            if k < l0 {
                a0 += v0[k] * gather(x, s0[k]);
            }
            if k < l1 {
                a1 += v1[k] * gather(x, s1[k]);
            }
            if k < l2 {
                a2 += v2[k] * gather(x, s2[k]);
            }
            if k < l3 {
                a3 += v3[k] * gather(x, s3[k]);
            }
        }
        y[r] = a0;
        y[r + 1] = a1;
        y[r + 2] = a2;
        y[r + 3] = a3;
        r += 4;
    }
    while r < n {
        let (o, l) = row(r);
        let s = lane(r, l);
        let v = &vals[o..o + l];
        let mut acc = T::ZERO;
        for k in 0..l {
            acc += v[k] * gather(x, s[k]);
        }
        y[r] = acc;
        r += 1;
    }
}

/// One long row's gather dot with reassociated partial-sum lanes — the
/// fast tier's treatment for scattered [`BandKind::DenseRow`] outliers,
/// where a single row's serial chain is long enough that breaking it
/// (which the deterministic contract forbids) pays for the final reduce.
#[inline]
fn row_gather_fast<T: Scalar>(rc: &[u32], rv: &[T], x: &[T]) -> T {
    let len = rc.len();
    let mut acc0 = Lanes4::zero();
    let mut acc1 = Lanes4::zero();
    let mut k = 0usize;
    // Two independent lane chains (eight slots per step) so one chain's
    // multiply-accumulate latency hides behind the other on wide rows.
    while k + 8 <= len {
        let ca: &[u32; 8] = rc[k..k + 8].try_into().unwrap();
        let va: &[T; 8] = rv[k..k + 8].try_into().unwrap();
        acc0 = acc0.mul_add(
            Lanes4::new([va[0], va[1], va[2], va[3]]),
            Lanes4::new([
                gather(x, ca[0]),
                gather(x, ca[1]),
                gather(x, ca[2]),
                gather(x, ca[3]),
            ]),
        );
        acc1 = acc1.mul_add(
            Lanes4::new([va[4], va[5], va[6], va[7]]),
            Lanes4::new([
                gather(x, ca[4]),
                gather(x, ca[5]),
                gather(x, ca[6]),
                gather(x, ca[7]),
            ]),
        );
        k += 8;
    }
    while k + 4 <= len {
        let ca: &[u32; 4] = rc[k..k + 4].try_into().unwrap();
        let va: &[T; 4] = rv[k..k + 4].try_into().unwrap();
        acc0 = acc0.mul_add(
            Lanes4::new(*va),
            Lanes4::new([
                gather(x, ca[0]),
                gather(x, ca[1]),
                gather(x, ca[2]),
                gather(x, ca[3]),
            ]),
        );
        k += 4;
    }
    let mut tail = T::ZERO;
    for j in k..len {
        tail += rv[j] * gather(x, rc[j]);
    }
    acc0.add(acc1).reduce() + tail
}

/// `Unrolled`/`Scalar` bands, fast tier: contiguous-column runs become a
/// [`dot_fast`] (long runs) or a serial slice walk (short ones); scattered
/// rows keep the serial per-row chain — plain below
/// [`ROW_UNROLL_LEN`] slots (the out-of-order window already overlaps
/// adjacent rows' independent chains there, so unroll machinery is pure
/// overhead), 16-slot-unrolled above it — with every `x` load through the
/// unchecked [`gather`].
#[inline]
fn run_rows_fast<T: Scalar>(band_rp: &[usize], slots: &[u32], vals: &[T], x: &[T], y: &mut [T]) {
    debug_assert_slots_in_bounds(slots, x);
    let base = band_rp[0];
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let len = e - o;
        let rc = &slots[o - base..e - base];
        let rv = &vals[o..e];
        if len > 0 && (rc[len - 1] - rc[0]) as usize == len - 1 {
            let xs = &x[rc[0] as usize..rc[0] as usize + len];
            *yr = if len >= ROW_UNROLL_LEN {
                dot_fast(rv, xs)
            } else {
                let mut acc = T::ZERO;
                for (v, xv) in rv.iter().zip(xs) {
                    acc += *v * *xv;
                }
                acc
            };
        } else if len < ROW_UNROLL_LEN {
            let mut acc = T::ZERO;
            for (&c, &v) in rc.iter().zip(rv) {
                acc += v * gather(x, c);
            }
            *yr = acc;
        } else {
            let mut acc = T::ZERO;
            let mut k = 0usize;
            while k + 16 <= len {
                let ca: &[u32; 16] = rc[k..k + 16].try_into().unwrap();
                let va: &[T; 16] = rv[k..k + 16].try_into().unwrap();
                for j in 0..16 {
                    acc += va[j] * gather(x, ca[j]);
                }
                k += 16;
            }
            for j in k..len {
                acc += rv[j] * gather(x, rc[j]);
            }
            *yr = acc;
        }
    }
}

/// Heavy outlier rows, fast tier: the contiguous-column fast path becomes
/// a lane-wise [`dot_fast`] over the `x` slice; scattered rows use the
/// 4-lane gather reduction.
#[inline]
fn run_dense_row_fast<T: Scalar>(
    band_rp: &[usize],
    slots: &[u32],
    vals: &[T],
    x: &[T],
    y: &mut [T],
) {
    debug_assert_slots_in_bounds(slots, x);
    let base = band_rp[0];
    for (r, yr) in y.iter_mut().enumerate() {
        let (o, e) = (band_rp[r], band_rp[r + 1]);
        let len = e - o;
        let rc = &slots[o - base..e - base];
        if len > 0 && (rc[len - 1] - rc[0]) as usize == len - 1 {
            let xs = &x[rc[0] as usize..rc[0] as usize + len];
            *yr = dot_fast(&vals[o..e], xs);
        } else {
            *yr = row_gather_fast(rc, &vals[o..e], x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, RowDistribution};
    use crate::CooMatrix;

    fn dense_x(ncols: usize) -> Vec<f64> {
        (0..ncols)
            .map(|i| ((i % 11) as f64 - 5.0) * 0.37 + if i % 3 == 0 { -0.0 } else { 0.25 })
            .collect()
    }

    fn assert_bitwise_equal(a: &CsrMatrix<f64>, plan: &CompiledSpmv) {
        let x = dense_x(a.ncols());
        let expected = a.mul_vec(&x).unwrap();
        let mut y = vec![f64::NAN; a.nrows()];
        plan.execute(a, &x, &mut y).unwrap();
        for (i, (got, want)) in y.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "row {i}: compiled {got} != generic {want}"
            );
        }
    }

    #[test]
    fn compiled_matches_generic_on_structured_matrices() {
        let mats: Vec<CsrMatrix<f64>> = vec![
            generate::poisson1d(64),
            generate::poisson2d(13, 17),
            generate::random_pattern(300, RowDistribution::Uniform { min: 1, max: 40 }, 7),
            generate::random_pattern(
                257,
                RowDistribution::Bimodal {
                    low: 3,
                    high: 150,
                    high_fraction: 0.04,
                },
                11,
            ),
        ];
        for a in &mats {
            let plan = CompiledSpmv::compile_default(a);
            assert!(plan.verify_pattern(a));
            assert_bitwise_equal(a, &plan);
        }
    }

    #[test]
    fn compiled_respects_schedule_hints_and_covers_all_kinds() {
        let a = generate::random_pattern::<f64>(
            400,
            RowDistribution::Bimodal {
                low: 5,
                high: 200,
                high_fraction: 0.03,
            },
            5,
        );
        let hints = vec![
            BandHint {
                rows: 0..100,
                unroll: 2,
            },
            BandHint {
                rows: 100..250,
                unroll: 8,
            },
            BandHint {
                rows: 250..400,
                unroll: 32,
            },
        ];
        let plan = CompiledSpmv::compile(&a, &hints).unwrap();
        // Bands tile the row space contiguously, in order, and never cross
        // a hint boundary; every Unrolled band carries the (clamped) unroll
        // factor of the hint that contains it.
        let mut next = 0usize;
        for band in plan.bands() {
            assert_eq!(band.rows.start, next);
            next = band.rows.end;
            let h = hints
                .iter()
                .find(|h| h.rows.contains(&band.rows.start))
                .unwrap();
            assert!(band.rows.end <= h.rows.end, "band crosses a hint edge");
            if let BandKind::Unrolled { unroll } = band.kind {
                assert_eq!(unroll, clamp_unroll(h.unroll));
            }
        }
        assert_eq!(next, a.nrows());
        assert!(plan.verify_pattern(&a));
        assert_bitwise_equal(&a, &plan);
    }

    #[test]
    fn uniform_matrix_compiles_to_fixed_bands() {
        let a = generate::random_pattern::<f64>(128, RowDistribution::Constant(6), 3);
        let plan = CompiledSpmv::compile_default(&a);
        assert!(plan
            .bands()
            .iter()
            .all(|b| b.kind == BandKind::Fixed { width: 7 }));
        assert_bitwise_equal(&a, &plan);
    }

    #[test]
    fn empty_and_zero_row_matrices_execute() {
        let empty = CooMatrix::<f64>::new(0, 0).to_csr();
        let plan = CompiledSpmv::compile(&empty, &[]).unwrap();
        let mut y: Vec<f64> = vec![];
        plan.execute(&empty, &[], &mut y).unwrap();

        let zeros = CooMatrix::<f64>::new(9, 4).to_csr();
        let plan = CompiledSpmv::compile_default(&zeros);
        let mut y = vec![f64::NAN; 9];
        plan.execute(&zeros, &[1.0; 4], &mut y).unwrap();
        assert_eq!(y, vec![0.0; 9]);
    }

    #[test]
    fn padding_slots_are_never_accumulated() {
        // Accumulating a padding slot as `+ 0.0 * x[c]` is not a no-op:
        // with a non-finite x[c] it injects NaN (0.0 * inf). Rows the
        // pattern says don't touch the inf column must not see it.
        let mut coo = CooMatrix::<f64>::new(12, 6);
        for i in 0..12 {
            if i % 2 == 0 {
                // Even rows: {0..=4} — these legitimately see the inf.
                coo.push(i, 0, 1.0).unwrap();
            }
            // All rows: {1..=4}. Ragged lengths (4/5) force an Ell band
            // whose padding stays under the narrow-band budget.
            for c in 1..5 {
                coo.push(i, c, 1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let plan = CompiledSpmv::compile_default(&a);
        assert!(plan
            .bands()
            .iter()
            .any(|b| matches!(b.kind, BandKind::Ell { width: 5 })));
        let x = vec![f64::INFINITY, 1.0, 1.0, 1.0, 1.0, 1.0];
        let expected = a.mul_vec(&x).unwrap();
        let mut y = vec![0.0; 12];
        plan.execute(&a, &x, &mut y).unwrap();
        for (i, (got, want)) in y.iter().zip(&expected).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "row {i}");
        }
        // Odd rows never touch column 0, so they stay exactly 4.0.
        assert!(y.iter().skip(1).step_by(2).all(|&v| v == 4.0));
        assert!(y.iter().step_by(2).all(|&v| v == f64::INFINITY));
    }

    #[test]
    fn hint_tiling_is_validated() {
        let a = generate::poisson1d::<f64>(16);
        let gap = vec![
            BandHint {
                rows: 0..8,
                unroll: 4,
            },
            BandHint {
                rows: 10..16,
                unroll: 4,
            },
        ];
        assert!(CompiledSpmv::compile(&a, &gap).is_err());
        let short = vec![BandHint {
            rows: 0..8,
            unroll: 4,
        }];
        assert!(CompiledSpmv::compile(&a, &short).is_err());
        assert!(CompiledSpmv::compile(&a, &[]).is_err());
    }

    #[test]
    fn plan_shape_mismatch_is_rejected() {
        let a = generate::poisson1d::<f64>(16);
        let b = generate::poisson1d::<f64>(17);
        let plan = CompiledSpmv::compile_default(&a);
        assert!(!plan.matches(&b));
        let mut y = vec![0.0; 17];
        assert!(plan.execute(&b, &[1.0; 17], &mut y).is_err());
    }

    #[test]
    fn partitions_tile_bands_and_respect_boundaries() {
        let a =
            generate::random_pattern::<f64>(500, RowDistribution::Uniform { min: 1, max: 30 }, 13);
        let plan = CompiledSpmv::compile_default(&a);
        for parts in [1, 2, 3, 8, 64] {
            let spans = plan.partition(parts);
            assert!(spans.len() <= parts.max(1));
            let mut next_band = 0usize;
            let mut next_row = 0usize;
            for span in &spans {
                assert_eq!(span.start, next_band);
                assert!(!span.is_empty());
                next_band = span.end;
                let rows = plan.span_rows(span.clone());
                assert_eq!(rows.start, next_row);
                next_row = rows.end;
            }
            assert_eq!(next_band, plan.bands().len());
            assert_eq!(next_row, a.nrows());
        }
    }

    #[test]
    fn span_execution_matches_full_execution() {
        let a =
            generate::random_pattern::<f64>(311, RowDistribution::Uniform { min: 0, max: 24 }, 29);
        let plan = CompiledSpmv::compile_default(&a);
        let x = dense_x(a.ncols());
        let mut full = vec![0.0f64; a.nrows()];
        plan.execute(&a, &x, &mut full).unwrap();
        for parts in [2, 5, 8] {
            let mut y = vec![f64::NAN; a.nrows()];
            for span in plan.partition(parts) {
                let rows = plan.span_rows(span.clone());
                plan.execute_span(span, &a, &x, &mut y[rows]);
            }
            for (got, want) in y.iter().zip(&full) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn execute_dot_matches_unfused() {
        let a =
            generate::random_pattern::<f64>(200, RowDistribution::Uniform { min: 1, max: 20 }, 41);
        let plan = CompiledSpmv::compile_default(&a);
        let x = dense_x(a.ncols());
        let z: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin()).collect();
        let mut y_ref = vec![0.0f64; a.nrows()];
        plan.execute(&a, &x, &mut y_ref).unwrap();
        let dot_ref: f64 = y_ref
            .iter()
            .zip(&z)
            .map(|(a, b)| a * b)
            .fold(0.0, |s, v| s + v);
        let mut y = vec![0.0f64; a.nrows()];
        let dot = plan.execute_dot(&a, &x, &mut y, &z).unwrap();
        assert_eq!(dot.to_bits(), dot_ref.to_bits());
        for (got, want) in y.iter().zip(&y_ref) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fast_execution_matches_deterministic_within_ulp_on_all_kinds() {
        // Same matrix mix as the bitwise suite: covers Fixed, Ell,
        // Unrolled, Scalar, and DenseRow bands.
        let mats: Vec<CsrMatrix<f64>> = vec![
            generate::poisson1d(64),
            generate::poisson2d(13, 17),
            generate::random_pattern(300, RowDistribution::Uniform { min: 1, max: 40 }, 7),
            generate::random_pattern(
                257,
                RowDistribution::Bimodal {
                    low: 3,
                    high: 150,
                    high_fraction: 0.04,
                },
                11,
            ),
        ];
        for a in &mats {
            let plan = CompiledSpmv::compile_default(a);
            let x = dense_x(a.ncols());
            let mut det = vec![f64::NAN; a.nrows()];
            plan.execute(a, &x, &mut det).unwrap();
            let mut fast = vec![f64::NAN; a.nrows()];
            plan.execute_fast(a, &x, &mut fast).unwrap();
            for (i, (f, d)) in fast.iter().zip(&det).enumerate() {
                // Reassociation error is relative to the magnitude of the
                // accumulated terms, not the (possibly cancelled) result:
                // bound by a few eps of Σ|v·x| for the row.
                let (cols, vals) = a.row(i);
                let mag: f64 = cols.iter().zip(vals).map(|(&c, &v)| (v * x[c]).abs()).sum();
                let tol = 4.0 * f64::EPSILON * mag;
                assert!(
                    (*f - *d).abs() <= tol,
                    "row {i}: fast {f} vs deterministic {d} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn fast_fixed_and_ell_bands_are_bitwise_identical() {
        // Lanes-across-rows keeps per-row numerics unchanged for the
        // interleaved kinds, so on an all-Fixed plan the two tiers agree
        // exactly — reassociation only enters on the CSR-walk kinds.
        let a = generate::random_pattern::<f64>(128, RowDistribution::Constant(6), 3);
        let plan = CompiledSpmv::compile_default(&a);
        assert!(plan
            .bands()
            .iter()
            .all(|b| matches!(b.kind, BandKind::Fixed { .. })));
        let x = dense_x(a.ncols());
        let mut det = vec![0.0f64; a.nrows()];
        plan.execute(&a, &x, &mut det).unwrap();
        let mut fast = vec![0.0f64; a.nrows()];
        plan.execute_fast(&a, &x, &mut fast).unwrap();
        for (f, d) in fast.iter().zip(&det) {
            assert_eq!(f.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn execute_dot_fast_matches_unfused_fast_pipeline() {
        let a =
            generate::random_pattern::<f64>(200, RowDistribution::Uniform { min: 1, max: 20 }, 41);
        let plan = CompiledSpmv::compile_default(&a);
        let x = dense_x(a.ncols());
        let z: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin()).collect();
        let mut y_det = vec![0.0f64; a.nrows()];
        let dot_det = plan.execute_dot(&a, &x, &mut y_det, &z).unwrap();
        let mut y = vec![0.0f64; a.nrows()];
        let dot = plan.execute_dot_fast(&a, &x, &mut y, &z).unwrap();
        for (i, (f, d)) in y.iter().zip(&y_det).enumerate() {
            let (cols, vals) = a.row(i);
            let mag: f64 = cols.iter().zip(vals).map(|(&c, &v)| (v * x[c]).abs()).sum();
            assert!((*f - *d).abs() <= 4.0 * f64::EPSILON * mag, "row {i}");
        }
        let tol = 1e-12 * (1.0 + dot_det.abs());
        assert!((dot - dot_det).abs() <= tol, "{dot} vs {dot_det}");
        // Shape errors are shared with the deterministic surface.
        assert!(plan.execute_dot_fast(&a, &x, &mut y, &z[1..]).is_err());
    }

    /// Row-local pattern mutation: each listed row drops its first entry
    /// and gains a fresh trailing column, so both the row length and the
    /// column set change without touching any other row.
    fn mutate_rows(a: &CsrMatrix<f64>, rows: &[usize]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(a.nrows(), a.ncols());
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            if rows.contains(&r) {
                for (&c, &v) in cols.iter().zip(vals).skip(1) {
                    coo.push(r, c, v).unwrap();
                }
                let extra = (cols.last().copied().unwrap_or(0) + 1) % a.ncols();
                if !cols.contains(&extra) {
                    coo.push(r, extra, 0.5).unwrap();
                }
            } else {
                for (&c, &v) in cols.iter().zip(vals) {
                    coo.push(r, c, v).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn pattern_delta_reports_dirty_rows_and_shape_mismatches() {
        let a = generate::random_pattern::<f64>(64, RowDistribution::Uniform { min: 2, max: 9 }, 3);
        let same = PatternDelta::between(&a, &a).unwrap();
        assert!(same.is_empty());
        assert_eq!(same.dirty_row_count(), 0);
        assert_eq!(same.dirty_fraction(), 0.0);

        let m = mutate_rows(&a, &[5, 6, 40]);
        let d = PatternDelta::between(&a, &m).unwrap();
        assert_eq!(d.dirty_ranges(), &[5..7, 40..41]);
        assert_eq!(d.dirty_row_count(), 3);
        assert!((d.dirty_fraction() - 3.0 / 64.0).abs() < 1e-15);
        // Values alone never dirty a row.
        let b = CsrMatrix::try_from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().iter().map(|v| v * 2.0).collect(),
        )
        .unwrap();
        assert!(PatternDelta::between(&a, &b).unwrap().is_empty());

        let shorter = generate::poisson1d::<f64>(63);
        assert!(PatternDelta::between(&a, &shorter).is_none());
    }

    #[test]
    fn patched_plan_is_bitwise_identical_to_recompile() {
        let mats: Vec<CsrMatrix<f64>> = vec![
            generate::poisson2d(10, 10),
            generate::random_pattern(300, RowDistribution::Uniform { min: 1, max: 40 }, 7),
            generate::random_pattern(
                257,
                RowDistribution::Bimodal {
                    low: 3,
                    high: 150,
                    high_fraction: 0.04,
                },
                11,
            ),
            generate::random_pattern(128, RowDistribution::Constant(6), 3),
        ];
        for a in &mats {
            let third = a.nrows() / 3;
            let hints = vec![
                BandHint {
                    rows: 0..third,
                    unroll: 2,
                },
                BandHint {
                    rows: third..2 * third,
                    unroll: 8,
                },
                BandHint {
                    rows: 2 * third..a.nrows(),
                    unroll: 16,
                },
            ];
            let plan = CompiledSpmv::compile(a, &hints).unwrap();
            for dirty in [
                vec![1usize],
                vec![third + 2, third + 3],
                vec![2, a.nrows() - 1],
            ] {
                let m = mutate_rows(a, &dirty);
                let delta = PatternDelta::between(a, &m).unwrap();
                assert!(!delta.is_empty());
                let patched = plan.patch(&m, &hints, &delta).unwrap();
                let scratch = CompiledSpmv::compile(&m, &hints).unwrap();
                assert_eq!(patched, scratch, "patched plan diverges from recompile");
                assert!(patched.verify_pattern(&m));
                assert_bitwise_equal(&m, &patched);
            }
            // An empty delta splices every hint and reproduces the plan.
            let empty = PatternDelta::between(a, a).unwrap();
            assert_eq!(plan.patch(a, &hints, &empty).unwrap(), plan);
        }
    }

    #[test]
    fn patch_rejects_foreign_hints_and_shapes() {
        let a = generate::poisson1d::<f64>(32);
        let plan = CompiledSpmv::compile_default(&a);
        let empty = PatternDelta::between(&a, &a).unwrap();
        // Hints that split the plan's interior Fixed band cannot splice.
        let split = vec![
            BandHint {
                rows: 0..16,
                unroll: 8,
            },
            BandHint {
                rows: 16..32,
                unroll: 8,
            },
        ];
        assert!(plan.patch(&a, &split, &empty).is_err());
        // Hints must still tile the rows.
        assert!(plan
            .patch(
                &a,
                &[BandHint {
                    rows: 0..16,
                    unroll: 8
                }],
                &empty
            )
            .is_err());
        // Shape disagreements are rejected up front.
        let b = generate::poisson1d::<f64>(33);
        let hints_b = [BandHint {
            rows: 0..33,
            unroll: 8,
        }];
        assert!(plan.patch(&b, &hints_b, &empty).is_err());
    }

    #[test]
    fn corrupted_slot_fails_pattern_verification() {
        // An out-of-bounds slot column (stale plan, cache corruption) must
        // be visible to the deep check both tiers run under debug_assert.
        let a = generate::poisson1d::<f64>(32);
        let mut plan = CompiledSpmv::compile_default(&a);
        assert!(plan.verify_pattern(&a));
        let mid = plan.slot_cols.len() / 2;
        plan.slot_cols[mid] = a.ncols() as u32 + 7;
        assert!(!plan.verify_pattern(&a));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "pattern mismatch")]
    fn corrupted_slot_panics_before_execution_in_debug() {
        let a = generate::poisson1d::<f64>(32);
        let mut plan = CompiledSpmv::compile_default(&a);
        let mid = plan.slot_cols.len() / 2;
        plan.slot_cols[mid] = a.ncols() as u32 + 7;
        let x = dense_x(a.ncols());
        let mut y = vec![0.0f64; a.nrows()];
        let _ = plan.execute(&a, &x, &mut y);
    }
}
