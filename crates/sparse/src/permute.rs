//! Symmetric permutations (reordering).
//!
//! The paper's related work includes reordering-based SpMV optimization
//! (reference \[39\]); for Acamar, sorting rows by population makes each
//! *set* of rows homogeneous, which tightens the fit of the per-set
//! unroll factor. This module provides validated symmetric permutations
//! `B = P A Pᵀ` and the NNZ-sorting permutation, so that study is
//! expressible (see the `ablation_reorder` bench).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// Validates that `perm` is a bijection on `0..n`.
fn validate_permutation(perm: &[usize], n: usize) -> Result<(), SparseError> {
    if perm.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: perm.len(),
            what: "permutation length",
        });
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n {
            return Err(SparseError::IndexOutOfBounds {
                index: p,
                bound: n,
                axis: "row",
            });
        }
        if seen[p] {
            return Err(SparseError::InvalidStructure(format!(
                "permutation repeats index {p}"
            )));
        }
        seen[p] = true;
    }
    Ok(())
}

/// Applies the symmetric permutation `B = P A Pᵀ`, i.e.
/// `B[i][j] = A[perm[i]][perm[j]]`.
///
/// Solving `B y = P b` and un-permuting `y` yields the solution of
/// `A x = b` (see [`permute_vec`] / [`unpermute_vec`]).
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular `A` and a
/// validation error if `perm` is not a bijection on the row indices.
pub fn permute_symmetric<T: Scalar>(
    a: &CsrMatrix<T>,
    perm: &[usize],
) -> Result<CsrMatrix<T>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    validate_permutation(perm, n)?;
    let inv = invert_permutation(perm);
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (old_i, cols, vals) in a.iter_rows() {
        let new_i = inv[old_i];
        for (&old_j, &v) in cols.iter().zip(vals) {
            coo.push(new_i, inv[old_j], v).expect("indices in bounds");
        }
    }
    Ok(coo.to_csr())
}

/// The permutation sorting rows by ascending NNZ (stable: ties keep
/// their original order). `perm[i]` is the *original* index of the row
/// placed at position `i`.
pub fn permutation_by_row_nnz<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..a.nrows()).collect();
    perm.sort_by_key(|&i| a.row_nnz(i));
    perm
}

/// Inverts a permutation: `inv[perm[i]] = i`.
///
/// # Panics
///
/// Panics if `perm` contains an index `>= perm.len()` (use
/// [`permute_symmetric`]'s validation for untrusted input).
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Gathers `v` through `perm`: `out[i] = v[perm[i]]` (this is `P v`).
///
/// # Panics
///
/// Panics if lengths differ or an index is out of bounds.
pub fn permute_vec<T: Copy>(v: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(v.len(), perm.len(), "length mismatch");
    perm.iter().map(|&p| v[p]).collect()
}

/// Scatters `v` back through `perm`: `out[perm[i]] = v[i]` (this is
/// `Pᵀ v`, the inverse of [`permute_vec`]).
///
/// # Panics
///
/// Panics if lengths differ or an index is out of bounds.
pub fn unpermute_vec<T: Copy + Default>(v: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(v.len(), perm.len(), "length mismatch");
    let mut out = vec![T::default(); v.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = v[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, RowDistribution};

    #[test]
    fn identity_permutation_is_noop() {
        let a = generate::poisson2d::<f64>(4, 4);
        let id: Vec<usize> = (0..16).collect();
        assert_eq!(permute_symmetric(&a, &id).unwrap(), a);
    }

    #[test]
    fn permutation_round_trips() {
        let a = generate::random_pattern::<f64>(30, RowDistribution::Uniform { min: 1, max: 6 }, 5);
        let perm = permutation_by_row_nnz(&a);
        let b = permute_symmetric(&a, &perm).unwrap();
        // applying the inverse permutation restores A
        let back = permute_symmetric(&b, &invert_permutation(&perm)).unwrap();
        assert_eq!(back, a);
        // entry correspondence
        for i in 0..30 {
            for j in 0..30 {
                let inv = invert_permutation(&perm);
                assert_eq!(b.get(inv[i], inv[j]), a.get(i, j));
            }
        }
    }

    #[test]
    fn sorted_rows_are_monotone_in_nnz() {
        let a = generate::random_pattern::<f64>(
            50,
            RowDistribution::Bimodal {
                low: 2,
                high: 20,
                high_fraction: 0.3,
            },
            7,
        );
        let perm = permutation_by_row_nnz(&a);
        let b = permute_symmetric(&a, &perm).unwrap();
        for i in 1..50 {
            assert!(b.row_nnz(i) >= b.row_nnz(i - 1));
        }
    }

    #[test]
    fn permuted_solve_recovers_original_solution() {
        let a = generate::diagonally_dominant::<f64>(
            20,
            RowDistribution::Uniform { min: 2, max: 5 },
            1.6,
            3,
        );
        let b: Vec<f64> = (0..20).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x_direct = a.to_dense().solve(&b).unwrap();

        let perm = permutation_by_row_nnz(&a);
        let ap = permute_symmetric(&a, &perm).unwrap();
        let bp = permute_vec(&b, &perm);
        let yp = ap.to_dense().solve(&bp).unwrap();
        let x = unpermute_vec(&yp, &perm);
        for (u, v) in x.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn vector_permutations_invert_each_other() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        let perm = vec![2usize, 0, 3, 1];
        let p = permute_vec(&v, &perm);
        assert_eq!(p, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(unpermute_vec(&p, &perm), v);
    }

    #[test]
    fn bad_permutations_are_rejected() {
        let a = generate::poisson1d::<f64>(4);
        assert!(permute_symmetric(&a, &[0, 1, 2]).is_err()); // short
        assert!(permute_symmetric(&a, &[0, 1, 2, 9]).is_err()); // out of range
        assert!(permute_symmetric(&a, &[0, 1, 1, 2]).is_err()); // repeat
        let rect = CsrMatrix::<f64>::try_from_parts(1, 2, vec![0, 1], vec![0], vec![1.0]).unwrap();
        assert!(permute_symmetric(&rect, &[0]).is_err());
    }
}
