//! Structural analysis of coefficient matrices.
//!
//! Implements the checks the paper's **Matrix Structure unit** performs
//! (strict diagonal dominance, symmetry via CSR↔CSC comparison; Section
//! IV-B), plus the cheap spectral estimates (Gershgorin discs, power
//! iteration) used to reason about definiteness in tests and dataset
//! generators.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Coarse definiteness classification derived from cheap structural bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Definiteness {
    /// All Gershgorin discs lie strictly in the right half plane (for a
    /// symmetric matrix this proves positive definiteness).
    PositiveDefinite,
    /// All Gershgorin discs lie strictly in the left half plane.
    NegativeDefinite,
    /// Discs certify both positive and negative eigenvalues.
    Indefinite,
    /// The bounds are inconclusive.
    Unknown,
}

impl std::fmt::Display for Definiteness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Definiteness::PositiveDefinite => "positive definite",
            Definiteness::NegativeDefinite => "negative definite",
            Definiteness::Indefinite => "indefinite",
            Definiteness::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Full structural report for a coefficient matrix.
///
/// Produced by [`analyze`]; consumed by the solver-selection logic in
/// `acamar-solvers` and the Matrix Structure unit in `acamar-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureReport {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// `nnz / (nrows * ncols)`.
    pub density: f64,
    /// Numerically symmetric (CSR equals CSC, paper's test).
    pub symmetric: bool,
    /// Symmetric sparsity pattern (values may differ).
    pub pattern_symmetric: bool,
    /// Strictly diagonally dominant: `∀i, Σ_{j≠i} |a_ij| < |a_ii|` (Eq. 1).
    pub strictly_diagonally_dominant: bool,
    /// Weakly diagonally dominant (`≤` instead of `<`).
    pub weakly_diagonally_dominant: bool,
    /// Every diagonal entry stored and nonzero.
    pub nonzero_diagonal: bool,
    /// Every diagonal entry strictly positive.
    pub positive_diagonal: bool,
    /// Diagonal contains both positive and negative entries.
    pub mixed_sign_diagonal: bool,
    /// Definiteness classification from Gershgorin bounds (only meaningful
    /// when `symmetric`).
    pub gershgorin_definiteness: Definiteness,
    /// Half bandwidth: `max |i - j|` over stored entries.
    pub bandwidth: usize,
}

impl StructureReport {
    /// `true` when the matrix is symmetric and the Gershgorin bound proves
    /// positive definiteness (a *sufficient*, not necessary, condition for
    /// CG convergence — mirrors the paper's pragmatic symmetry-only check,
    /// which this strengthens when the bound happens to certify it).
    pub fn certified_spd(&self) -> bool {
        self.symmetric && self.gershgorin_definiteness == Definiteness::PositiveDefinite
    }
}

/// Paper-faithful symmetry test: convert CSR to CSC and compare the arrays
/// (Section IV-B: "If the CSC format matches the CSR format, the matrix A
/// is considered symmetric").
pub fn symmetric_via_csc<T: Scalar>(a: &CsrMatrix<T>) -> bool {
    if a.nrows() != a.ncols() {
        return false;
    }
    let csc = CscMatrix::from_csr(a);
    csc.col_ptr() == a.row_ptr() && csc.row_idx() == a.col_idx() && csc.values() == a.values()
}

/// Strict diagonal dominance per paper Eq. 1:
/// `∀i, Σ_{j≠i} |A_ij| < |A_ii|`.
pub fn strictly_diagonally_dominant<T: Scalar>(a: &CsrMatrix<T>) -> bool {
    diagonal_dominance_margin(a) > 0.0
}

/// Weak diagonal dominance: `∀i, Σ_{j≠i} |A_ij| ≤ |A_ii|`.
pub fn weakly_diagonally_dominant<T: Scalar>(a: &CsrMatrix<T>) -> bool {
    diagonal_dominance_margin(a) >= 0.0
}

/// The worst-case dominance margin `min_i (|a_ii| - Σ_{j≠i}|a_ij|)`,
/// in `f64`. Positive ⇒ strictly dominant; zero ⇒ weakly.
pub fn diagonal_dominance_margin<T: Scalar>(a: &CsrMatrix<T>) -> f64 {
    if a.nrows() != a.ncols() {
        return f64::NEG_INFINITY;
    }
    let mut worst = f64::INFINITY;
    for (i, cols, vals) in a.iter_rows() {
        let mut diag = 0.0f64;
        let mut off = 0.0f64;
        for (&c, &v) in cols.iter().zip(vals) {
            if c == i {
                diag = v.to_f64().abs();
            } else {
                off += v.to_f64().abs();
            }
        }
        worst = worst.min(diag - off);
    }
    if a.nrows() == 0 {
        0.0
    } else {
        worst
    }
}

/// Gershgorin-disc definiteness classification.
///
/// For symmetric `A` all eigenvalues are real and lie in
/// `∪_i [a_ii - R_i, a_ii + R_i]` with `R_i = Σ_{j≠i}|a_ij|`.
pub fn gershgorin_definiteness<T: Scalar>(a: &CsrMatrix<T>) -> Definiteness {
    if a.nrows() != a.ncols() || a.nrows() == 0 {
        return Definiteness::Unknown;
    }
    let mut any_certain_negative = false;
    let mut any_certain_positive = false;
    let mut all_positive = true;
    let mut all_negative = true;
    for (i, cols, vals) in a.iter_rows() {
        let mut diag = 0.0f64;
        let mut radius = 0.0f64;
        for (&c, &v) in cols.iter().zip(vals) {
            if c == i {
                diag = v.to_f64();
            } else {
                radius += v.to_f64().abs();
            }
        }
        let lo = diag - radius;
        let hi = diag + radius;
        if lo <= 0.0 {
            all_positive = false;
        }
        if hi >= 0.0 {
            all_negative = false;
        }
        if hi < 0.0 {
            any_certain_negative = true;
        }
        if lo > 0.0 {
            any_certain_positive = true;
        }
    }
    if all_positive {
        Definiteness::PositiveDefinite
    } else if all_negative {
        Definiteness::NegativeDefinite
    } else if any_certain_positive && any_certain_negative {
        Definiteness::Indefinite
    } else {
        Definiteness::Unknown
    }
}

/// Estimates the spectral radius of `A` by power iteration.
///
/// Deterministic: starts from the all-ones vector. Returns `None` for
/// non-square or empty matrices, or if the iteration degenerates.
pub fn spectral_radius_estimate<T: Scalar>(a: &CsrMatrix<T>, iters: usize) -> Option<f64> {
    if a.nrows() != a.ncols() || a.nrows() == 0 {
        return None;
    }
    let n = a.nrows();
    let mut x: Vec<f64> = vec![1.0; n];
    let af: CsrMatrix<f64> = a.cast();
    let mut lambda = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..iters.max(1) {
        af.mul_vec_into(&x, &mut y).ok()?;
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if !norm.is_finite() || norm == 0.0 {
            return None;
        }
        lambda = norm
            / x.iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt()
                .max(f64::MIN_POSITIVE);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    Some(lambda)
}

/// Runs every structural check and returns the combined report.
///
/// # Examples
///
/// ```
/// use acamar_sparse::{analysis, generate};
///
/// let a = generate::poisson2d::<f64>(8, 8);
/// let report = analysis::analyze(&a);
/// assert!(report.symmetric);
/// assert!(report.weakly_diagonally_dominant);
/// ```
pub fn analyze<T: Scalar>(a: &CsrMatrix<T>) -> StructureReport {
    let diag = a.diagonal();
    let positive_diagonal = !diag.is_empty() && diag.iter().all(|&d| d > T::ZERO);
    let has_pos = diag.iter().any(|&d| d > T::ZERO);
    let has_neg = diag.iter().any(|&d| d < T::ZERO);
    let margin = diagonal_dominance_margin(a);
    let mut bandwidth = 0usize;
    for (i, cols, _) in a.iter_rows() {
        for &c in cols {
            bandwidth = bandwidth.max(i.abs_diff(c));
        }
    }
    StructureReport {
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        density: a.density(),
        symmetric: symmetric_via_csc(a),
        pattern_symmetric: a.is_pattern_symmetric(),
        strictly_diagonally_dominant: margin > 0.0,
        weakly_diagonally_dominant: margin >= 0.0,
        nonzero_diagonal: a.has_nonzero_diagonal(),
        positive_diagonal,
        mixed_sign_diagonal: has_pos && has_neg,
        gershgorin_definiteness: gershgorin_definiteness(a),
        bandwidth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn csr(trips: &[(usize, usize, f64)], n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in trips {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn symmetry_via_csc_matches_direct_check() {
        let sym = csr(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0)], 2);
        assert!(symmetric_via_csc(&sym));
        assert!(sym.is_symmetric(0.0));
        let asym = csr(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 4.0)], 2);
        assert!(!symmetric_via_csc(&asym));
    }

    #[test]
    fn strict_dominance_detected() {
        let dd = csr(&[(0, 0, 3.0), (0, 1, -1.0), (1, 0, 1.0), (1, 1, 2.5)], 2);
        assert!(strictly_diagonally_dominant(&dd));
        let weak = csr(&[(0, 0, 1.0), (0, 1, -1.0), (1, 1, 2.0)], 2);
        assert!(!strictly_diagonally_dominant(&weak));
        assert!(weakly_diagonally_dominant(&weak));
    }

    #[test]
    fn dominance_margin_sign() {
        let dd = csr(&[(0, 0, 3.0), (0, 1, 1.0), (1, 1, 5.0)], 2);
        assert!(diagonal_dominance_margin(&dd) > 0.0);
        let not = csr(&[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 5.0)], 2);
        assert!(diagonal_dominance_margin(&not) < 0.0);
    }

    #[test]
    fn gershgorin_classifies_definiteness() {
        let pd = csr(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0)], 2);
        assert_eq!(gershgorin_definiteness(&pd), Definiteness::PositiveDefinite);
        let nd = csr(&[(0, 0, -4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, -4.0)], 2);
        assert_eq!(gershgorin_definiteness(&nd), Definiteness::NegativeDefinite);
        let indef = csr(&[(0, 0, 5.0), (1, 1, -5.0)], 2);
        assert_eq!(gershgorin_definiteness(&indef), Definiteness::Indefinite);
    }

    #[test]
    fn spectral_radius_of_diagonal_matrix() {
        let d = CsrMatrix::from_diagonal(&[1.0, -3.0, 2.0]);
        let rho = spectral_radius_estimate(&d, 100).unwrap();
        assert!((rho - 3.0).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn analyze_full_report() {
        let a = csr(
            &[
                (0, 0, 10.0),
                (0, 2, 1.0),
                (1, 1, -8.0),
                (2, 0, 1.0),
                (2, 2, 10.0),
            ],
            3,
        );
        let r = analyze(&a);
        assert_eq!(r.nnz, 5);
        assert!(r.symmetric);
        assert!(r.strictly_diagonally_dominant);
        assert!(r.nonzero_diagonal);
        assert!(!r.positive_diagonal);
        assert!(r.mixed_sign_diagonal);
        assert_eq!(r.gershgorin_definiteness, Definiteness::Indefinite);
        assert_eq!(r.bandwidth, 2);
        assert!(!r.certified_spd());
    }

    #[test]
    fn rectangular_matrices_are_never_symmetric_or_dominant() {
        let mut coo = CooMatrix::<f64>::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(!symmetric_via_csc(&a));
        assert!(!strictly_diagonally_dominant(&a));
        assert_eq!(gershgorin_definiteness(&a), Definiteness::Unknown);
    }
}
