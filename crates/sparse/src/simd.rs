//! Portable fixed-lane SIMD backbone for the `Fast` determinism tier.
//!
//! The repo's default numeric contract is *bitwise determinism*: every
//! reduction runs in one fixed serial order so results replay exactly
//! across runs, worker counts, and fault-injection seeds. That contract
//! forbids float reassociation — and with it the lane-parallel partial
//! sums a vector unit needs to hide FP-add latency.
//!
//! This module provides the opt-out. [`DeterminismPolicy`] names the two
//! tiers; [`Lanes4`] is a fixed four-lane `f64x4`-style accumulator — a
//! plain `[T; 4]` newtype whose `#[inline]` element-wise operations give
//! LLVM straight-line code it reliably autovectorizes (no nightly
//! features, no target-specific intrinsics, MSRV unchanged). The free
//! functions ([`dot_fast`], [`axpy_normsq_fast`]) are the reassociated
//! reduction kernels the `Fast` tier swaps in for the hot serial folds.
//!
//! Reassociation changes results only in the last few ULP on
//! well-conditioned data (four partial sums instead of one), which is why
//! the `Fast` tier is validated by residual-accuracy and
//! convergence-verdict gates instead of bitwise ones — see DESIGN §15.

use crate::scalar::Scalar;

/// Per-job numeric determinism contract.
///
/// Selects how reductions (dot products, norms, fused SpMV·dot) are
/// ordered on the host execution path:
///
/// * [`DeterminismPolicy::Deterministic`] — the default and the repo's
///   historical contract: one fixed serial summation order, bitwise
///   reproducible across runs, worker counts, warm/cold caches, and
///   chaos replay.
/// * [`DeterminismPolicy::Fast`] — reassociated lane-parallel reductions
///   via [`Lanes4`]: faster on latency-bound reduction chains, but
///   results are only *accuracy*-equivalent (a few ULP of reassociation
///   noise), so bitwise gates and chaos replay do not apply. Validated
///   by residual-accuracy and convergence-verdict gates instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeterminismPolicy {
    /// Bitwise-reproducible tree/serial reductions (the default).
    #[default]
    Deterministic,
    /// SIMD-friendly reassociated reductions; accuracy-validated only.
    Fast,
}

impl DeterminismPolicy {
    /// `true` for the [`DeterminismPolicy::Fast`] tier.
    #[inline]
    pub fn is_fast(self) -> bool {
        matches!(self, DeterminismPolicy::Fast)
    }

    /// Stable lowercase label (`"deterministic"` / `"fast"`), used as a
    /// metric and report tag.
    pub fn label(self) -> &'static str {
        match self {
            DeterminismPolicy::Deterministic => "deterministic",
            DeterminismPolicy::Fast => "fast",
        }
    }

    /// Every policy, in declaration order.
    pub const ALL: [DeterminismPolicy; 2] =
        [DeterminismPolicy::Deterministic, DeterminismPolicy::Fast];
}

impl std::fmt::Display for DeterminismPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed four-lane accumulator: the portable `f64x4`.
///
/// Element-wise arithmetic over a `[T; 4]` with every operation
/// `#[inline]` — the shape LLVM's autovectorizer turns into packed
/// vector instructions on any target with 256-bit (or two 128-bit)
/// lanes, with scalar code as the portable fallback. The horizontal
/// [`Lanes4::reduce`] runs in one fixed order, so a `Fast` reduction is
/// deterministic *for a given lane count* — it differs from the serial
/// order only by the 4-way reassociation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes4<T>([T; 4]);

impl<T: Scalar> Lanes4<T> {
    /// All lanes zero.
    #[inline]
    pub fn zero() -> Self {
        Lanes4([T::ZERO; 4])
    }

    /// Lanes from an array.
    #[inline]
    pub fn new(lanes: [T; 4]) -> Self {
        Lanes4(lanes)
    }

    /// Lanes from the first four elements of a slice.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 4`.
    #[inline]
    pub fn from_slice(s: &[T]) -> Self {
        Lanes4([s[0], s[1], s[2], s[3]])
    }

    /// Element-wise `self + a * b` (the vector multiply-accumulate).
    #[inline]
    #[must_use]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        let mut out = self.0;
        for (k, o) in out.iter_mut().enumerate() {
            *o += a.0[k] * b.0[k];
        }
        Lanes4(out)
    }

    /// Element-wise sum. Named `add` deliberately (there is no operator
    /// overload on `Lanes4`; kernels call lane ops explicitly so the
    /// reduction order stays visible at every call site).
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        let mut out = self.0;
        for (k, o) in out.iter_mut().enumerate() {
            *o += other.0[k];
        }
        Lanes4(out)
    }

    /// Horizontal sum in the fixed order `(l0 + l1) + (l2 + l3)`.
    #[inline]
    pub fn reduce(self) -> T {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// The lanes as an array.
    #[inline]
    pub fn to_array(self) -> [T; 4] {
        self.0
    }
}

/// Reassociated dot product: four independent four-lane partial-sum
/// chains over the aligned body (sixteen elements per step, enough
/// in-flight accumulators to hide the FP-add latency of each chain), a
/// four-wide and then serial cleanup, one horizontal reduce at the end.
///
/// Agrees with the serial fold to a few ULP on well-conditioned inputs;
/// the `Fast` tier's replacement for the deterministic `dot`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_fast<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let n = x.len();
    let mut acc0 = Lanes4::zero();
    let mut acc1 = Lanes4::zero();
    let mut acc2 = Lanes4::zero();
    let mut acc3 = Lanes4::zero();
    let mut k = 0usize;
    while k + 16 <= n {
        acc0 = acc0.mul_add(Lanes4::from_slice(&x[k..]), Lanes4::from_slice(&y[k..]));
        acc1 = acc1.mul_add(
            Lanes4::from_slice(&x[k + 4..]),
            Lanes4::from_slice(&y[k + 4..]),
        );
        acc2 = acc2.mul_add(
            Lanes4::from_slice(&x[k + 8..]),
            Lanes4::from_slice(&y[k + 8..]),
        );
        acc3 = acc3.mul_add(
            Lanes4::from_slice(&x[k + 12..]),
            Lanes4::from_slice(&y[k + 12..]),
        );
        k += 16;
    }
    while k + 4 <= n {
        acc0 = acc0.mul_add(Lanes4::from_slice(&x[k..]), Lanes4::from_slice(&y[k..]));
        k += 4;
    }
    let mut tail = T::ZERO;
    for j in k..n {
        tail += x[j] * y[j];
    }
    acc0.add(acc1).add(acc2.add(acc3)).reduce() + tail
}

/// Reassociated squared norm: [`dot_fast`]`(x, x)`.
#[inline]
pub fn norm_sq_fast<T: Scalar>(x: &[T]) -> T {
    dot_fast(x, x)
}

/// Fused reassociated `y += alpha * x; return ||y||²` in one pass, with
/// four independent four-lane partial-sum chains (sixteen elements per
/// step). The update to `y` is element-wise (identical to the serial
/// fused kernel); only the norm reduction reassociates.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy_normsq_fast<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) -> T {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let n = y.len();
    let mut acc0 = Lanes4::zero();
    let mut acc1 = Lanes4::zero();
    let mut acc2 = Lanes4::zero();
    let mut acc3 = Lanes4::zero();
    let mut i = 0usize;
    while i + 16 <= n {
        for k in i..i + 16 {
            y[k] += alpha * x[k];
        }
        acc0 = acc0.mul_add(Lanes4::from_slice(&y[i..]), Lanes4::from_slice(&y[i..]));
        acc1 = acc1.mul_add(
            Lanes4::from_slice(&y[i + 4..]),
            Lanes4::from_slice(&y[i + 4..]),
        );
        acc2 = acc2.mul_add(
            Lanes4::from_slice(&y[i + 8..]),
            Lanes4::from_slice(&y[i + 8..]),
        );
        acc3 = acc3.mul_add(
            Lanes4::from_slice(&y[i + 12..]),
            Lanes4::from_slice(&y[i + 12..]),
        );
        i += 16;
    }
    let mut tail = T::ZERO;
    for k in i..n {
        y[k] += alpha * x[k];
        tail += y[k] * y[k];
    }
    acc0.add(acc1).add(acc2.add(acc3)).reduce() + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64, offset: f64) -> Vec<f64> {
        (0..n).map(|i| ((i % 13) as f64) * scale - offset).collect()
    }

    fn dot_serial(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).fold(0.0, |acc, (a, b)| acc + a * b)
    }

    #[test]
    fn policy_defaults_and_labels() {
        assert_eq!(
            DeterminismPolicy::default(),
            DeterminismPolicy::Deterministic
        );
        assert!(!DeterminismPolicy::Deterministic.is_fast());
        assert!(DeterminismPolicy::Fast.is_fast());
        assert_eq!(DeterminismPolicy::Fast.label(), "fast");
        assert_eq!(
            format!("{}", DeterminismPolicy::Deterministic),
            "deterministic"
        );
        assert_eq!(DeterminismPolicy::ALL.len(), 2);
    }

    #[test]
    fn lanes_reduce_order_is_fixed() {
        let l = Lanes4::new([1.0f64, 2.0, 4.0, 8.0]);
        assert_eq!(l.reduce(), (1.0 + 2.0) + (4.0 + 8.0));
        assert_eq!(l.to_array(), [1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn dot_fast_agrees_with_serial_to_ulp_scale() {
        for n in [0usize, 1, 3, 4, 7, 64, 257] {
            let x = seq(n, 0.37, 2.5);
            let y = seq(n, -0.21, 1.0);
            let fast = dot_fast(&x, &y);
            let serial = dot_serial(&x, &y);
            let tol = 1e-12 * (1.0 + serial.abs());
            assert!((fast - serial).abs() <= tol, "n={n}: {fast} vs {serial}");
        }
    }

    #[test]
    fn dot_fast_exact_on_lane_disjoint_sums() {
        // Powers of two sum exactly in any association: fast == serial bitwise.
        let x: Vec<f64> = (0..32).map(|i| (1u64 << (i % 20)) as f64).collect();
        let y = vec![1.0f64; 32];
        assert_eq!(dot_fast(&x, &y).to_bits(), dot_serial(&x, &y).to_bits());
    }

    #[test]
    fn axpy_normsq_fast_updates_y_exactly_and_norm_approximately() {
        for n in [0usize, 2, 4, 9, 130] {
            let x = seq(n, 0.5, 2.0);
            let y0 = seq(n, -0.25, 0.5);
            let alpha = -0.37f64;

            let mut y_fast = y0.clone();
            let nsq_fast = axpy_normsq_fast(alpha, &x, &mut y_fast);

            let mut y_ref = y0;
            let mut nsq_ref = 0.0f64;
            for (yi, &xi) in y_ref.iter_mut().zip(&x) {
                *yi += alpha * xi;
                nsq_ref += *yi * *yi;
            }
            // The vector update is element-wise: bitwise identical.
            for (a, b) in y_fast.iter().zip(&y_ref) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let tol = 1e-12 * (1.0 + nsq_ref.abs());
            assert!((nsq_fast - nsq_ref).abs() <= tol, "n={n}");
        }
    }

    #[test]
    fn norm_sq_fast_is_nonnegative_and_matches_dot() {
        let x = seq(97, 0.31, 1.7);
        let n = norm_sq_fast(&x);
        assert!(n >= 0.0);
        assert_eq!(n.to_bits(), dot_fast(&x, &x).to_bits());
    }
}
