//! Compressed Sparse Column (CSC) matrix.
//!
//! The paper's Matrix Structure unit converts the CSR input to CSC and
//! compares the two to decide symmetry (Section IV-B). This module provides
//! that conversion and the comparison primitives it needs.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A sparse matrix in Compressed Sparse Column format.
///
/// Invariants mirror [`CsrMatrix`]: `col_ptr` has `ncols + 1` monotone
/// offsets and row indices are strictly increasing within each column.
///
/// # Examples
///
/// ```
/// use acamar_sparse::{CooMatrix, CscMatrix};
///
/// let mut coo = CooMatrix::<f64>::new(2, 2);
/// coo.push(0, 0, 1.0)?;
/// coo.push(1, 0, 2.0)?;
/// let csr = coo.to_csr();
/// let csc = CscMatrix::from_csr(&csr);
/// assert_eq!(csc.col(0).0, &[0, 1]);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Converts a CSR matrix to CSC (an exact transpose of the storage).
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let nnz = a.nnz();
        let mut col_ptr = vec![0usize; ncols + 1];
        for &c in a.col_idx() {
            col_ptr[c + 1] += 1;
        }
        for c in 0..ncols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![T::ZERO; nnz];
        let mut next = col_ptr.clone();
        for (i, cols, vals) in a.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                let k = next[c];
                row_idx[k] = i;
                values[k] = v;
                next[c] += 1;
            }
        }
        // Rows were visited in increasing order, so each column's row
        // indices are already strictly increasing.
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column-pointer array (`ncols + 1` offsets).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array.
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[T]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Reinterprets this CSC matrix as the CSR storage of the *transpose*.
    ///
    /// CSC arrays of `A` are exactly the CSR arrays of `Aᵀ`; this is a
    /// zero-copy move.
    pub fn into_transposed_csr(self) -> CsrMatrix<T> {
        CsrMatrix::from_raw_parts_unchecked(
            self.ncols,
            self.nrows,
            self.col_ptr,
            self.row_idx,
            self.values,
        )
    }

    /// Converts back to CSR storage of the *same* matrix.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Direct counting sort by row — one scatter pass instead of
        // cloning the arrays and transposing twice.
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![T::ZERO; nnz];
        let mut next = row_ptr.clone();
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                let k = next[i];
                col_idx[k] = j;
                values[k] = v;
                next[i] += 1;
            }
        }
        // Columns were visited in increasing order, so each row's column
        // indices are already strictly increasing.
        CsrMatrix::from_raw_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 3 0]
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn from_csr_produces_column_storage() {
        let a = sample();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.col(0), (&[0usize][..], &[1.0][..]));
        assert_eq!(c.col(1), (&[1usize][..], &[3.0][..]));
        assert_eq!(c.col(2), (&[0usize][..], &[2.0][..]));
    }

    #[test]
    fn round_trip_csr_csc_csr() {
        let a = sample();
        let back = a.to_csc().to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn transposed_csr_view_is_transpose() {
        let a = sample();
        let t = a.to_csc().into_transposed_csr();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
    }

    #[test]
    fn symmetric_matrix_has_identical_csr_and_csc_arrays() {
        // The paper's symmetry test: CSR arrays == CSC arrays.
        let a = CsrMatrix::try_from_parts(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![4.0, 1.0, 1.0, 4.0],
        )
        .unwrap();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.col_ptr(), a.row_ptr());
        assert_eq!(c.row_idx(), a.col_idx());
        assert_eq!(c.values(), a.values());
    }

    #[test]
    fn empty_columns_have_zero_span() {
        let a = CsrMatrix::<f32>::try_from_parts(2, 3, vec![0, 1, 1], vec![2], vec![7.0]).unwrap();
        let c = a.to_csc();
        assert_eq!(c.col(0).0.len(), 0);
        assert_eq!(c.col(1).0.len(), 0);
        assert_eq!(c.col(2), (&[0usize][..], &[7.0_f32][..]));
    }
}
