//! Dense matrix support for verification.
//!
//! Iterative solvers in this workspace are validated against direct dense
//! solves (Gaussian elimination with partial pivoting) on small systems;
//! this module provides just enough dense linear algebra for that purpose.

use crate::error::SparseError;
use crate::scalar::Scalar;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix.
///
/// # Examples
///
/// ```
/// use acamar_sparse::DenseMatrix;
///
/// let mut a = DenseMatrix::<f64>::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = a.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// A zero-filled `nrows x ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![T::ZERO; nrows * ncols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if
    /// `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<T>) -> Result<Self, SparseError> {
        if data.len() != nrows * ncols {
            return Err(SparseError::DimensionMismatch {
                expected: nrows * ncols,
                found: data.len(),
                what: "dense data length",
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// A view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols, "vector length mismatch");
        (0..self.nrows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect()
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Intended for verification on small systems; O(n³).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square `A`,
    /// [`SparseError::DimensionMismatch`] for a wrong-length `b`, and
    /// [`SparseError::ZeroDiagonal`] when the matrix is (numerically)
    /// singular.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if b.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: b.len(),
                what: "right-hand-side length",
            });
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            // partial pivot
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == T::ZERO {
                return Err(SparseError::ZeroDiagonal { row: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                x.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let f = a[i * n + k] / pivot;
                if f == T::ZERO {
                    continue;
                }
                for j in k..n {
                    let v = a[k * n + j];
                    a[i * n + j] -= f * v;
                }
                let xk = x[k];
                x[i] -= f * xk;
            }
        }
        // back substitution
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in (k + 1)..n {
                acc -= a[k * n + j] * x[j];
            }
            x[k] = acc / a[k * n + k];
        }
        Ok(x)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &v| acc + v * v).sqrt()
    }
}

impl<T: Scalar> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &self.data[i * self.ncols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_checks_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0_f64; 3]).is_err());
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0_f64; 4]).is_ok());
    }

    #[test]
    fn identity_mul_is_identity() {
        let i = DenseMatrix::<f64>::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn solve_small_system() {
        // [3 1; 1 2] x = [9; 8] => x = [2; 3]
        let a = DenseMatrix::from_row_major(2, 2, vec![3.0, 1.0, 1.0, 2.0]).unwrap();
        let x = a.solve(&[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SparseError::ZeroDiagonal { .. })
        ));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = DenseMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(SparseError::NotSquare { .. })
        ));
        let b = DenseMatrix::<f64>::identity(2);
        assert!(matches!(
            b.solve(&[1.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let a = DenseMatrix::from_row_major(2, 2, vec![3.0, 0.0, 4.0, 0.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_residual_is_small_on_random_like_system() {
        // Deterministic "pseudo-random" SPD-ish system.
        let n = 12;
        let mut a = DenseMatrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 31 + j * 17) % 13) as f64 / 13.0;
                a[(i, j)] = v;
            }
            a[(i, i)] += n as f64; // make well conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x);
        let err: f64 = r.iter().zip(&b).map(|(u, v)| (u - v).abs()).sum();
        assert!(err < 1e-9, "residual too large: {err}");
    }
}
