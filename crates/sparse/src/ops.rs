//! Sparse matrix algebra: addition and multiplication.
//!
//! Needed for building composite operators (shifted systems `A + σI`,
//! normal equations, preconditioner construction) on top of the CSR
//! substrate.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// Computes `alpha * A + beta * B` (pattern union).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if the shapes differ.
///
/// # Examples
///
/// ```
/// use acamar_sparse::{ops, CsrMatrix};
///
/// let a = CsrMatrix::<f64>::identity(3);
/// let shifted = ops::add(&a, &a, 1.0, 0.5)?; // 1.5 I
/// assert_eq!(shifted.get(1, 1), 1.5);
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn add<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    alpha: T,
    beta: T,
) -> Result<CsrMatrix<T>, SparseError> {
    if a.nrows() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: a.nrows(),
            found: b.nrows(),
            what: "row count",
        });
    }
    if a.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: a.ncols(),
            found: b.ncols(),
            what: "column count",
        });
    }
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    row_ptr.push(0usize);
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        // merge two sorted column lists
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
            let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
            if take_a && take_b && ac[p] == bc[q] {
                col_idx.push(ac[p]);
                values.push(alpha * av[p] + beta * bv[q]);
                p += 1;
                q += 1;
            } else if take_a {
                col_idx.push(ac[p]);
                values.push(alpha * av[p]);
                p += 1;
            } else {
                col_idx.push(bc[q]);
                values.push(beta * bv[q]);
                q += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::try_from_parts(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

/// Computes the sparse product `A * B` (Gustavson's row-wise algorithm).
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::{generate, ops};
///
/// let a = generate::poisson1d::<f64>(5);
/// let a2 = ops::matmul(&a, &a)?;            // A², pentadiagonal
/// assert_eq!(a2.get(0, 2), 1.0);            // (-1)(-1)
/// assert_eq!(a2.get(0, 0), 5.0);            // 2*2 + (-1)(-1)
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn matmul<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: a.ncols(),
            found: b.nrows(),
            what: "inner dimension",
        });
    }
    let n = a.nrows();
    let m = b.ncols();
    let mut coo = CooMatrix::with_capacity(n, m, a.nnz() + b.nnz());
    // dense accumulator with a touched-list (Gustavson)
    let mut acc = vec![T::ZERO; m];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..n {
        let (ac, av) = a.row(i);
        for (&k, &aik) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k);
            for (&j, &bkj) in bc.iter().zip(bv) {
                if acc[j] == T::ZERO && !touched.contains(&j) {
                    touched.push(j);
                }
                acc[j] += aik * bkj;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            coo.push(i, j, acc[j]).expect("indices in bounds");
            acc[j] = T::ZERO;
        }
        touched.clear();
    }
    Ok(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, RowDistribution};

    #[test]
    fn add_merges_patterns() {
        let a = generate::poisson1d::<f64>(4);
        let i = CsrMatrix::identity(4);
        let s = add(&a, &i, 1.0, 3.0).unwrap();
        assert_eq!(s.get(0, 0), 5.0); // 2 + 3
        assert_eq!(s.get(0, 1), -1.0); // only in A
        assert_eq!(s.nnz(), a.nnz()); // identity pattern subsumed
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = CsrMatrix::<f64>::identity(3);
        let b = CsrMatrix::<f64>::identity(4);
        assert!(add(&a, &b, 1.0, 1.0).is_err());
    }

    #[test]
    fn add_matches_dense_reference() {
        let a = generate::random_pattern::<f64>(20, RowDistribution::Uniform { min: 1, max: 5 }, 3);
        let b = generate::random_pattern::<f64>(20, RowDistribution::Uniform { min: 1, max: 5 }, 4);
        let s = add(&a, &b, 2.0, -0.5).unwrap();
        for i in 0..20 {
            for j in 0..20 {
                let want = 2.0 * a.get(i, j) - 0.5 * b.get(i, j);
                assert!((s.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let a = generate::random_pattern::<f64>(15, RowDistribution::Uniform { min: 1, max: 4 }, 5);
        let b = generate::random_pattern::<f64>(15, RowDistribution::Uniform { min: 1, max: 4 }, 6);
        let c = matmul(&a, &b).unwrap();
        let (da, db) = (a.to_dense(), b.to_dense());
        for i in 0..15 {
            for j in 0..15 {
                let mut want = 0.0;
                for k in 0..15 {
                    want += da[(i, k)] * db[(k, j)];
                }
                assert!(
                    (c.get(i, j) - want).abs() < 1e-10,
                    "({i},{j}): {} vs {want}",
                    c.get(i, j)
                );
            }
        }
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = generate::poisson2d::<f64>(4, 4);
        let i = CsrMatrix::identity(16);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = CsrMatrix::<f64>::identity(3);
        let b = CsrMatrix::<f64>::identity(4);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn rectangular_matmul_shapes() {
        // (2x3) * (3x2) = (2x2)
        let a =
            CsrMatrix::try_from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0_f64, 2.0, 3.0])
                .unwrap();
        let b = a.transpose();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.get(0, 0), 5.0); // 1 + 4
        assert_eq!(c.get(1, 1), 9.0);
    }
}
