//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's datasets come from the SuiteSparse collection, which is
//! distributed in Matrix Market format. This reader/writer supports the
//! `matrix coordinate` container with `real`/`integer`/`pattern` fields and
//! `general`/`symmetric`/`skew-symmetric` storage, which covers every
//! matrix in the paper's Table II.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::IoError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};

/// Symmetry qualifier of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; `(i, j)` implies `(j, i)`.
    Symmetric,
    /// Lower triangle stored; `(i, j)` implies `-(j, i)`.
    SkewSymmetric,
}

/// Reads a Matrix Market coordinate file into CSR form.
///
/// Symmetric and skew-symmetric storage is expanded to general storage.
/// `pattern` files produce matrices of ones.
///
/// # Errors
///
/// Returns [`IoError`] on malformed headers, non-numeric data, index
/// overflow, or unsupported features (`complex` field, `array` container).
///
/// # Examples
///
/// ```
/// use acamar_sparse::io::read_matrix_market;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n2 2 4.0\n";
/// let a = read_matrix_market::<f64, _>(text.as_bytes())?;
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.get(1, 1), 4.0);
/// # Ok::<(), acamar_sparse::IoError>(())
/// ```
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => {
                return Err(IoError::Parse {
                    line: line_no,
                    message: "empty file".into(),
                })
            }
        }
    };
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("bad header: {header:?}"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(IoError::Unsupported(format!("container {:?}", toks[2])));
    }
    let pattern = match toks[3].as_str() {
        "real" | "integer" | "double" => false,
        "pattern" => true,
        other => return Err(IoError::Unsupported(format!("field {other:?}"))),
    };
    let symmetry = match toks[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(IoError::Unsupported(format!("symmetry {other:?}"))),
    };

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(IoError::Parse {
                    line: line_no,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| IoError::Parse {
            line: line_no,
            message: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("size line needs 3 fields, got {}", dims.len()),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::<T>::with_capacity(nrows, ncols, nnz * 2);
    let mut seen = 0usize;
    for l in lines {
        line_no += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err(line_no, "missing row index"))?
            .parse()
            .map_err(|e| parse_err(line_no, &format!("bad row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err(line_no, "missing column index"))?
            .parse()
            .map_err(|e| parse_err(line_no, &format!("bad column index: {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err(line_no, "missing value"))?
                .parse()
                .map_err(|e| parse_err(line_no, &format!("bad value: {e}")))?
        };
        if i == 0 || j == 0 {
            return Err(parse_err(line_no, "matrix market indices are 1-based"));
        }
        let (r, c) = (i - 1, j - 1);
        coo.push(r, c, T::from_f64(v))?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    coo.push(c, r, T::from_f64(v))?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c, r, T::from_f64(-v))?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("expected {nnz} entries, found {seen}"),
        });
    }
    Ok(coo.to_csr())
}

fn parse_err(line: usize, message: &str) -> IoError {
    IoError::Parse {
        line,
        message: message.to_string(),
    }
}

/// Writes a CSR matrix as `matrix coordinate real general`.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::io::{read_matrix_market, write_matrix_market};
/// use acamar_sparse::CsrMatrix;
///
/// let a = CsrMatrix::<f64>::identity(3);
/// let mut buf = Vec::new();
/// write_matrix_market(&a, &mut buf)?;
/// let b = read_matrix_market::<f64, _>(buf.as_slice())?;
/// assert_eq!(a, b);
/// # Ok::<(), acamar_sparse::IoError>(())
/// ```
pub fn write_matrix_market<T: Scalar, W: Write>(
    a: &CsrMatrix<T>,
    mut writer: W,
) -> Result<(), IoError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by acamar-sparse")?;
    writeln!(writer, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, cols, vals) in a.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            writeln!(writer, "{} {} {:e}", i + 1, c + 1, v.to_f64())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 2 1.5\n\
                    3 3 -2.0\n";
        let a = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.get(0, 1), 1.5);
        assert_eq!(a.get(2, 2), -2.0);
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 1.0\n";
        let a = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn expands_skew_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = read_matrix_market::<f64, _>(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(0, 1), -3.0);
    }

    #[test]
    fn reads_pattern_as_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 1\n\
                    2 2\n";
        let a = read_matrix_market::<f32, _>(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(matches!(
            read_matrix_market::<f64, _>("garbage\n".as_bytes()),
            Err(IoError::Parse { .. })
        ));
        assert!(matches!(
            read_matrix_market::<f64, _>(
                "%%MatrixMarket matrix array real general\n2 2\n".as_bytes()
            ),
            Err(IoError::Unsupported(_))
        ));
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market::<f64, _>(short.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(matches!(
            read_matrix_market::<f64, _>(text.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn write_read_round_trip() {
        let a =
            CsrMatrix::try_from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.25, -0.5, 1e-9])
                .unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market::<f64, _>(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }
}
