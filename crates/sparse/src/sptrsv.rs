//! Level-scheduled sparse triangular solve (SpTRSV).
//!
//! Forward/backward substitution over a sparse triangular factor is the
//! inner kernel of every incomplete-factorization preconditioner (DESIGN
//! §17). Unlike SpMV it carries a dependency chain: row `i` of a lower
//! triangle cannot start until every `x[j]` with `l_ij != 0, j < i` is
//! final. The classic way to expose parallelism anyway is *level
//! scheduling*: a topological layering of the row dependency DAG in which
//! every row of a level depends only on rows of strictly earlier levels,
//! so all rows within one level solve concurrently.
//!
//! [`CompiledSptrsv`] mirrors the [`crate::compiled::CompiledSpmv`]
//! contract: it is **pattern-only** (no values captured), cheap to build
//! (one O(nnz) pass), and intended to be cached per pattern fingerprint
//! and shared across every matrix with the same structure — in particular
//! an IC(0)/ILU(0) factor, whose pattern is by construction the triangle
//! of the matrix it was factored from.
//!
//! ## Determinism contract
//!
//! Within a row the accumulation walks the CSR entries left to right,
//! exactly like the serial reference, and rows never share a partial sum.
//! Level-scheduled execution under
//! [`DeterminismPolicy::Deterministic`](crate::DeterminismPolicy) is
//! therefore **bitwise identical** to serial forward substitution at any
//! worker count — the property `tests/properties.rs` locks down. The
//! `Fast` tier re-associates each row's accumulation through
//! [`Lanes4`](crate::simd::Lanes4) partial sums, trading bitwise
//! stability for within-row vectorization, mirroring the SpMV fast tier.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::simd::Lanes4;

/// Which triangle of the matrix a plan solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Triangle {
    /// Forward substitution over the lower triangle (diagonal included).
    Lower,
    /// Backward substitution over the upper triangle (diagonal included).
    Upper,
}

impl Triangle {
    /// Human-readable label (`"lower"` / `"upper"`).
    pub fn label(self) -> &'static str {
        match self {
            Triangle::Lower => "lower",
            Triangle::Upper => "upper",
        }
    }
}

/// A compiled, pattern-only level schedule for sparse triangular solves.
///
/// Build once per sparsity pattern with [`CompiledSptrsv::compile_lower`]
/// or [`CompiledSptrsv::compile_upper`], then execute against any matrix
/// sharing that triangle's pattern — the original matrix itself (its
/// off-triangle entries are ignored) or an incomplete factor with the
/// identical triangle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSptrsv {
    triangle: Triangle,
    nrows: usize,
    /// Number of structural entries inside the triangle, diagonal included.
    tri_nnz: usize,
    /// Row indices grouped by level; rows within a level are ascending.
    order: Vec<u32>,
    /// CSR-style offsets into `order`: level `l` spans
    /// `order[level_ptr[l]..level_ptr[l + 1]]`.
    level_ptr: Vec<u32>,
}

impl CompiledSptrsv {
    /// Compile a forward-substitution schedule from the lower triangle of
    /// `a`'s pattern.
    ///
    /// Entries above the diagonal are ignored, so a full symmetric matrix
    /// and its IC(0) `L` factor compile to the same plan.
    ///
    /// # Errors
    ///
    /// [`SparseError::NotSquare`] if `a` is not square, and
    /// [`SparseError::ZeroDiagonal`] if any row lacks a structural
    /// diagonal entry (substitution needs to divide by it).
    pub fn compile_lower<T: Scalar>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Self::compile(a, Triangle::Lower)
    }

    /// Compile a backward-substitution schedule from the upper triangle of
    /// `a`'s pattern. See [`CompiledSptrsv::compile_lower`].
    pub fn compile_upper<T: Scalar>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Self::compile(a, Triangle::Upper)
    }

    fn compile<T: Scalar>(a: &CsrMatrix<T>, triangle: Triangle) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        // level[i] = 1 + max(level[j]) over this row's in-triangle
        // dependencies j; rows with no off-diagonal dependency sit at
        // level 0. Lower triangles resolve in ascending row order (every
        // dependency has a smaller index), upper in descending.
        let mut level = vec![0u32; n];
        let mut tri_nnz = 0usize;
        let rows: Box<dyn Iterator<Item = usize>> = match triangle {
            Triangle::Lower => Box::new(0..n),
            Triangle::Upper => Box::new((0..n).rev()),
        };
        for i in rows {
            let (cols, _) = a.row(i);
            let mut lvl = 0u32;
            let mut has_diag = false;
            for &c in cols {
                let in_triangle = match triangle {
                    Triangle::Lower => c <= i,
                    Triangle::Upper => c >= i,
                };
                if !in_triangle {
                    continue;
                }
                tri_nnz += 1;
                if c == i {
                    has_diag = true;
                } else {
                    lvl = lvl.max(level[c] + 1);
                }
            }
            if !has_diag {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            level[i] = lvl;
        }
        let nlevels = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        // Counting sort of rows by level keeps rows ascending within each
        // level, which downstream chunking relies on for reproducibility.
        let mut level_ptr = vec![0u32; nlevels + 1];
        for &l in &level {
            level_ptr[l as usize + 1] += 1;
        }
        for l in 0..nlevels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor: Vec<u32> = level_ptr[..nlevels].to_vec();
        let mut order = vec![0u32; n];
        for (i, &l) in level.iter().enumerate() {
            order[cursor[l as usize] as usize] = i as u32;
            cursor[l as usize] += 1;
        }
        Ok(Self {
            triangle,
            nrows: n,
            tri_nnz,
            order,
            level_ptr,
        })
    }

    /// Which triangle this plan solves.
    pub fn triangle(&self) -> Triangle {
        self.triangle
    }

    /// Number of rows the plan was compiled for.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Structural entries inside the triangle, diagonal included.
    pub fn tri_nnz(&self) -> usize {
        self.tri_nnz
    }

    /// Number of topological levels (the critical-path length).
    pub fn level_count(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Width (row count) of the widest level — the scratch size
    /// [`CompiledSptrsv::execute`] needs and the upper bound on usable
    /// parallelism.
    pub fn max_level_width(&self) -> usize {
        self.level_ptr
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean rows per level; `nrows / level_count` parallelism on average.
    pub fn avg_level_width(&self) -> f64 {
        if self.level_count() == 0 {
            return 0.0;
        }
        self.nrows as f64 / self.level_count() as f64
    }

    /// Cheap provenance check: does `m` have the shape this plan was
    /// compiled for? Pattern equality is the caller's contract (plans are
    /// cached per pattern fingerprint); use
    /// [`CompiledSptrsv::verify_pattern`] for the full O(nnz) audit.
    pub fn matches<T: Scalar>(&self, m: &CsrMatrix<T>) -> bool {
        m.nrows() == self.nrows && m.ncols() == self.nrows
    }

    /// Full O(nnz) audit that `m`'s triangle pattern is the one compiled.
    pub fn verify_pattern<T: Scalar>(&self, m: &CsrMatrix<T>) -> bool {
        if !self.matches(m) {
            return false;
        }
        match Self::compile(m, self.triangle) {
            Ok(fresh) => fresh == *self,
            Err(_) => false,
        }
    }

    /// Serial substitution in natural row order — the bitwise reference
    /// the level-scheduled paths are validated against.
    ///
    /// Entries of `m` outside the plan's triangle are skipped, so passing
    /// the full matrix solves against its triangle implicitly.
    ///
    /// # Errors
    ///
    /// [`SparseError::DimensionMismatch`] if `b`/`x` disagree with the
    /// plan's row count, [`SparseError::NotSquare`] if `m` does not match
    /// the compiled shape.
    pub fn solve_serial<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &mut [T],
    ) -> Result<(), SparseError> {
        self.check_operands(m, b, x)?;
        match self.triangle {
            Triangle::Lower => {
                for i in 0..self.nrows {
                    x[i] = Self::row_solve_deterministic(m, i, b[i], x, self.triangle);
                }
            }
            Triangle::Upper => {
                for i in (0..self.nrows).rev() {
                    x[i] = Self::row_solve_deterministic(m, i, b[i], x, self.triangle);
                }
            }
        }
        Ok(())
    }

    /// Level-scheduled deterministic solve.
    ///
    /// `scratch` must hold at least [`CompiledSptrsv::max_level_width`]
    /// elements; each level's results are computed into per-worker
    /// disjoint scratch chunks and scattered back serially, so the result
    /// is bitwise identical to [`CompiledSptrsv::solve_serial`] at any
    /// `workers >= 1`.
    ///
    /// # Errors
    ///
    /// As [`CompiledSptrsv::solve_serial`], plus
    /// [`SparseError::DimensionMismatch`] when `scratch` is too small.
    pub fn execute<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &mut [T],
        workers: usize,
        scratch: &mut [T],
    ) -> Result<(), SparseError> {
        self.execute_inner(m, b, x, workers, scratch, false)
    }

    /// Level-scheduled solve with `Lanes4` within-row accumulation (the
    /// `Fast` determinism tier). Re-associates each row's partial sums,
    /// so results may differ from the reference in the last ulps; still
    /// deterministic for a fixed build, input, and plan.
    ///
    /// # Errors
    ///
    /// As [`CompiledSptrsv::execute`].
    pub fn execute_fast<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &mut [T],
        workers: usize,
        scratch: &mut [T],
    ) -> Result<(), SparseError> {
        self.execute_inner(m, b, x, workers, scratch, true)
    }

    /// Convenience wrapper over [`CompiledSptrsv::execute`] that owns its
    /// scratch. Prefer `execute` with a pooled buffer in warm loops.
    ///
    /// # Errors
    ///
    /// As [`CompiledSptrsv::execute`].
    pub fn solve<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &mut [T],
        workers: usize,
    ) -> Result<(), SparseError> {
        let mut scratch = vec![T::ZERO; self.max_level_width()];
        self.execute(m, b, x, workers, &mut scratch)
    }

    fn check_operands<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &[T],
    ) -> Result<(), SparseError> {
        if !self.matches(m) {
            return Err(SparseError::NotSquare {
                nrows: m.nrows(),
                ncols: m.ncols(),
            });
        }
        if b.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: b.len(),
                what: "right-hand side length",
            });
        }
        if x.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: x.len(),
                what: "solution length",
            });
        }
        Ok(())
    }

    fn execute_inner<T: Scalar>(
        &self,
        m: &CsrMatrix<T>,
        b: &[T],
        x: &mut [T],
        workers: usize,
        scratch: &mut [T],
        fast: bool,
    ) -> Result<(), SparseError> {
        self.check_operands(m, b, x)?;
        let width_needed = self.max_level_width();
        if scratch.len() < width_needed {
            return Err(SparseError::DimensionMismatch {
                expected: width_needed,
                found: scratch.len(),
                what: "sptrsv scratch length",
            });
        }
        let workers = workers.max(1);
        for l in 0..self.level_count() {
            let rows = &self.order[self.level_ptr[l] as usize..self.level_ptr[l + 1] as usize];
            let width = rows.len();
            if workers == 1 || width < 2 * workers {
                // Narrow level (or serial caller): solve in place — each
                // row only reads x entries from earlier levels.
                for &i in rows {
                    let i = i as usize;
                    x[i] = Self::row_solve(m, i, b[i], x, self.triangle, fast);
                }
                continue;
            }
            // Wide level: chunk the level's row list contiguously across
            // workers. Each worker reads `x` immutably (entries final
            // since earlier levels) and writes its disjoint scratch
            // chunk; the serial scatter below keeps all mutation of `x`
            // on this thread, so the whole scheme is safe Rust and
            // bitwise independent of the worker count.
            let scratch = &mut scratch[..width];
            let chunk = width.div_ceil(workers);
            let x_ro: &[T] = x;
            std::thread::scope(|scope| {
                let mut remaining = &mut scratch[..];
                let mut offset = 0usize;
                while offset < width {
                    let take = chunk.min(width - offset);
                    let (mine, rest) = remaining.split_at_mut(take);
                    remaining = rest;
                    let rows = &rows[offset..offset + take];
                    let triangle = self.triangle;
                    scope.spawn(move || {
                        for (slot, &i) in mine.iter_mut().zip(rows) {
                            let i = i as usize;
                            *slot = Self::row_solve(m, i, b[i], x_ro, triangle, fast);
                        }
                    });
                    offset += take;
                }
            });
            for (&i, &v) in rows.iter().zip(scratch.iter()) {
                x[i as usize] = v;
            }
        }
        Ok(())
    }

    #[inline]
    fn row_solve<T: Scalar>(
        m: &CsrMatrix<T>,
        i: usize,
        bi: T,
        x: &[T],
        tri: Triangle,
        fast: bool,
    ) -> T {
        if fast {
            Self::row_solve_fast(m, i, bi, x, tri)
        } else {
            Self::row_solve_deterministic(m, i, bi, x, tri)
        }
    }

    /// One row of substitution, CSR entry order, scalar accumulation —
    /// identical arithmetic in the serial reference and every
    /// deterministic level-scheduled chunk.
    #[inline]
    fn row_solve_deterministic<T: Scalar>(
        m: &CsrMatrix<T>,
        i: usize,
        bi: T,
        x: &[T],
        tri: Triangle,
    ) -> T {
        let (cols, vals) = m.row(i);
        let mut acc = bi;
        let mut diag = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            let in_triangle = match tri {
                Triangle::Lower => c <= i,
                Triangle::Upper => c >= i,
            };
            if !in_triangle {
                continue;
            }
            if c == i {
                diag = v;
            } else {
                acc -= v * x[c];
            }
        }
        acc / diag
    }

    /// Fast-tier row substitution: gather the in-triangle off-diagonal
    /// products into four lanes, reduce once. Matches the SpMV fast
    /// tier's re-association contract.
    #[inline]
    fn row_solve_fast<T: Scalar>(m: &CsrMatrix<T>, i: usize, bi: T, x: &[T], tri: Triangle) -> T {
        let (cols, vals) = m.row(i);
        let mut lanes = Lanes4::zero();
        let mut buf = [T::ZERO; 4];
        let mut fill = 0usize;
        let mut diag = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            let in_triangle = match tri {
                Triangle::Lower => c <= i,
                Triangle::Upper => c >= i,
            };
            if !in_triangle {
                continue;
            }
            if c == i {
                diag = v;
                continue;
            }
            buf[fill] = v * x[c];
            fill += 1;
            if fill == 4 {
                lanes = lanes.add(Lanes4::new(buf));
                buf = [T::ZERO; 4];
                fill = 0;
            }
        }
        if fill > 0 {
            lanes = lanes.add(Lanes4::new(buf));
        }
        (bi - lanes.reduce()) / diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::rng::DetRng;

    /// Random sparse unit-ish lower-triangular matrix with a safe diagonal.
    fn random_lower(n: usize, seed: u64) -> CsrMatrix<f64> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut coo = crate::CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..i {
                if rng.gen_bool(0.2) {
                    coo.push(i, j, rng.gen_f64() * 2.0 - 1.0).unwrap();
                }
            }
            coo.push(i, i, 2.0 + rng.gen_f64()).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn lower_solve_matches_dense_reference() {
        let l = random_lower(40, 7);
        let plan = CompiledSptrsv::compile_lower(&l).unwrap();
        let b: Vec<f64> = (0..40).map(|i| (i as f64).sin() + 2.0).collect();
        let mut x = vec![0.0; 40];
        plan.solve_serial(&l, &b, &mut x).unwrap();
        // L x should reproduce b.
        let mut back = vec![0.0; 40];
        l.mul_vec_into(&x, &mut back).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            assert!((bi - ri).abs() < 1e-10, "{bi} vs {ri}");
        }
    }

    #[test]
    fn upper_solve_round_trips_through_transpose() {
        let l = random_lower(32, 11);
        let u = l.transpose();
        let plan = CompiledSptrsv::compile_upper(&u).unwrap();
        let b: Vec<f64> = (0..32).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut x = vec![0.0; 32];
        plan.solve_serial(&u, &b, &mut x).unwrap();
        let mut back = vec![0.0; 32];
        u.mul_vec_into(&x, &mut back).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            assert!((bi - ri).abs() < 1e-10);
        }
    }

    #[test]
    fn level_scheduled_is_bitwise_identical_to_serial() {
        for seed in [1u64, 2, 3] {
            let l = random_lower(96, seed);
            let plan = CompiledSptrsv::compile_lower(&l).unwrap();
            let b: Vec<f64> = (0..96).map(|i| (i as f64 * 0.37).cos()).collect();
            let mut reference = vec![0.0; 96];
            plan.solve_serial(&l, &b, &mut reference).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let mut x = vec![0.0; 96];
                plan.solve(&l, &b, &mut x, workers).unwrap();
                assert_eq!(
                    x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "workers={workers} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn full_matrix_solves_its_own_lower_triangle() {
        // Passing a full symmetric matrix ignores the upper entries — the
        // Gauss-Seidel/IC(0) sharing contract.
        let a = generate::poisson2d::<f64>(8, 8);
        let plan = CompiledSptrsv::compile_lower(&a).unwrap();
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        plan.solve_serial(&a, &b, &mut x).unwrap();
        // Verify against explicit tril(A) substitution.
        for (i, &bi) in b.iter().enumerate() {
            let (cols, vals) = a.row(i);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c <= i {
                    acc += v * x[c];
                }
            }
            assert!((acc - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn poisson_levels_match_grid_wavefronts() {
        // 5-point 2D Poisson lower triangle: level(i) is the Manhattan
        // wavefront index, so an nx-by-ny grid has nx + ny - 1 levels.
        let a = generate::poisson2d::<f64>(6, 9);
        let plan = CompiledSptrsv::compile_lower(&a).unwrap();
        assert_eq!(plan.level_count(), 6 + 9 - 1);
        assert_eq!(plan.nrows(), 54);
        assert!(plan.max_level_width() <= 6);
        assert!(plan.avg_level_width() > 1.0);
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        let mut coo = crate::CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap(); // no (1, 1) entry
        coo.push(2, 2, 1.0).unwrap();
        let m = coo.to_csr();
        match CompiledSptrsv::compile_lower(&m) {
            Err(SparseError::ZeroDiagonal { row }) => assert_eq!(row, 1),
            other => panic!("expected ZeroDiagonal, got {other:?}"),
        }
    }

    #[test]
    fn fast_tier_stays_close_to_reference() {
        let l = random_lower(64, 23);
        let plan = CompiledSptrsv::compile_lower(&l).unwrap();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut reference = vec![0.0; 64];
        plan.solve_serial(&l, &b, &mut reference).unwrap();
        let mut fast = vec![0.0; 64];
        let mut scratch = vec![0.0; plan.max_level_width()];
        plan.execute_fast(&l, &b, &mut fast, 4, &mut scratch)
            .unwrap();
        for (r, f) in reference.iter().zip(&fast) {
            assert!((r - f).abs() <= 1e-9 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn verify_pattern_audits_provenance() {
        let l = random_lower(24, 5);
        let plan = CompiledSptrsv::compile_lower(&l).unwrap();
        assert!(plan.verify_pattern(&l));
        let other = random_lower(24, 6);
        assert!(!plan.verify_pattern(&other) || other.nnz() == l.nnz());
        let smaller = random_lower(12, 5);
        assert!(!plan.matches(&smaller));
    }

    #[test]
    fn scratch_too_small_is_rejected() {
        let a = generate::poisson2d::<f64>(8, 8);
        let plan = CompiledSptrsv::compile_lower(&a).unwrap();
        let b = vec![1.0; 64];
        let mut x = vec![0.0; 64];
        let mut scratch = vec![0.0; 1];
        if plan.max_level_width() > 1 {
            assert!(matches!(
                plan.execute(&a, &b, &mut x, 4, &mut scratch),
                Err(SparseError::DimensionMismatch { .. })
            ));
        }
    }
}
