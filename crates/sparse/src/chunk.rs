//! Row chunking.
//!
//! Acamar processes coefficient matrices in `4096 x 4096` chunks (paper
//! Section V-B/V-C): the SpMV engine streams the matrix one row-chunk at a
//! time, and the Row Length Trace / sampling-rate machinery operates within
//! each chunk. This module provides the chunk iterator used by both the
//! fabric model and the core accelerator.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::ops::Range;

/// The paper's fixed problem-chunk dimension.
pub const PAPER_CHUNK_ROWS: usize = 4096;

/// A contiguous chunk of rows of a larger matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChunk {
    /// Index of this chunk (0-based).
    pub index: usize,
    /// The row range of the original matrix covered by this chunk.
    pub rows: Range<usize>,
    /// Total stored entries within the chunk.
    pub nnz: usize,
}

impl RowChunk {
    /// Number of rows in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.end - self.rows.start
    }

    /// `true` if the chunk covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Splits `a` into row chunks of at most `chunk_rows` rows.
///
/// The final chunk may be shorter.
///
/// # Panics
///
/// Panics if `chunk_rows == 0` — a zero-row chunk cannot tile a matrix, and
/// silently coercing it to one row has historically hidden caller bugs
/// (a miscomputed `rows / threads` quotient would quietly produce n chunks).
///
/// # Examples
///
/// ```
/// use acamar_sparse::{chunk::row_chunks, generate};
///
/// let a = generate::poisson1d::<f64>(10);
/// let chunks = row_chunks(&a, 4);
/// assert_eq!(chunks.len(), 3);
/// assert_eq!(chunks[2].rows, 8..10);
/// ```
pub fn row_chunks<T: Scalar>(a: &CsrMatrix<T>, chunk_rows: usize) -> Vec<RowChunk> {
    assert!(chunk_rows > 0, "row_chunks requires chunk_rows > 0");
    let step = chunk_rows;
    let mut out = Vec::with_capacity(a.nrows().div_ceil(step));
    let mut start = 0usize;
    let mut index = 0usize;
    while start < a.nrows() {
        let end = (start + step).min(a.nrows());
        debug_assert!(
            a.row_ptr()[start] <= a.row_ptr()[end],
            "CSR row_ptr must be monotone over chunk {start}..{end}"
        );
        let nnz = a.row_ptr()[end] - a.row_ptr()[start];
        out.push(RowChunk {
            index,
            rows: start..end,
            nnz,
        });
        start = end;
        index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn chunks_cover_all_rows_without_overlap() {
        let a = generate::poisson2d::<f64>(7, 9); // 63 rows
        let chunks = row_chunks(&a, 16);
        assert_eq!(chunks.len(), 4);
        let mut next = 0usize;
        let mut nnz = 0usize;
        for (k, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, k);
            assert_eq!(c.rows.start, next);
            next = c.rows.end;
            nnz += c.nnz;
            assert!(!c.is_empty());
        }
        assert_eq!(next, a.nrows());
        assert_eq!(nnz, a.nnz());
    }

    #[test]
    fn single_chunk_when_matrix_is_small() {
        let a = generate::poisson1d::<f64>(5);
        let chunks = row_chunks(&a, PAPER_CHUNK_ROWS);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 5);
    }

    #[test]
    #[should_panic(expected = "chunk_rows > 0")]
    fn zero_chunk_rows_panics() {
        let a = generate::poisson1d::<f64>(3);
        let _ = row_chunks(&a, 0);
    }
}
