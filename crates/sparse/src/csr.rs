//! Compressed Sparse Row (CSR) matrix — the compute format.
//!
//! Acamar takes its coefficient matrix in CSR (paper Section IV); every
//! kernel and analysis in this workspace operates on [`CsrMatrix`].

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants (enforced by [`CsrMatrix::try_from_parts`] and maintained by
/// all constructors):
///
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone
///   non-decreasing, `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * column indices within each row are strictly increasing (sorted, no
///   duplicates) and `< ncols`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::CsrMatrix;
///
/// // [ 2 -1  0 ]
/// // [-1  2 -1 ]
/// // [ 0 -1  2 ]
/// let a = CsrMatrix::try_from_parts(
///     3, 3,
///     vec![0, 2, 5, 7],
///     vec![0, 1, 0, 1, 2, 1, 2],
///     vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0],
/// ).unwrap();
/// assert_eq!(a.nnz(), 7);
/// let y = a.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
/// assert_eq!(y, vec![1.0, 0.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if `row_ptr` is malformed
    /// or column indices are unsorted/duplicated within a row, and
    /// [`SparseError::IndexOutOfBounds`] if a column index exceeds `ncols`.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr[0] = {} (must be 0)",
                row_ptr[0]
            )));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::DimensionMismatch {
                expected: col_idx.len(),
                found: values.len(),
                what: "values length vs col_idx length",
            });
        }
        if *row_ptr.last().expect("nonempty row_ptr") != col_idx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr[nrows] = {} != nnz = {}",
                row_ptr[nrows],
                col_idx.len()
            )));
        }
        for r in 0..nrows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::InvalidStructure(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &c in &col_idx[lo..hi] {
                if c >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: c,
                        bound: ncols,
                        axis: "column",
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::InvalidStructure(format!(
                            "columns not strictly increasing in row {r} ({p} then {c})"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Internal constructor for callers that already guarantee the
    /// invariants (COO/CSC conversions, generators).
    pub(crate) fn from_raw_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// A square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn from_diagonal(diag: &[T]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (explicit) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of entries that are stored: `nnz / (nrows * ncols)`.
    ///
    /// This is the "Sparsity%" column of the paper's Table II (expressed as
    /// a fraction, not a percentage).
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// The row-pointer array (`nrows + 1` offsets).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the value array (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Stored entries per row, as a vector of counts.
    pub fn row_nnz_counts(&self) -> Vec<usize> {
        (0..self.nrows).map(|i| self.row_nnz(i)).collect()
    }

    /// Iterates over rows as `(row_index, cols, values)`.
    pub fn iter_rows(&self) -> RowIter<'_, T> {
        RowIter { m: self, next: 0 }
    }

    /// The value at `(i, j)`, or zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows` or `j >= ncols`.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(j < self.ncols, "column index {j} out of bounds");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => T::ZERO,
        }
    }

    /// The diagonal as a dense vector (missing entries are zero).
    ///
    /// Works for rectangular matrices too (length `min(nrows, ncols)`).
    pub fn diagonal(&self) -> Vec<T> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns `true` if every diagonal entry is stored and nonzero.
    pub fn has_nonzero_diagonal(&self) -> bool {
        let n = self.nrows.min(self.ncols);
        (0..n).all(|i| self.get(i, i) != T::ZERO)
    }

    /// Sparse matrix–vector product `y = A x` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        let mut y = vec![T::ZERO; self.nrows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Sparse matrix–vector product `y = A x` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != ncols` or
    /// `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[T], y: &mut [T]) -> Result<(), SparseError> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
                what: "input vector length",
            });
        }
        if y.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                expected: self.nrows,
                found: y.len(),
                what: "output vector length",
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            *yi = acc;
        }
        Ok(())
    }

    /// Converts to Compressed Sparse Column format.
    ///
    /// This is the operation the paper's Matrix Structure unit performs to
    /// test symmetry (Section IV-B).
    pub fn to_csc(&self) -> CscMatrix<T> {
        CscMatrix::from_csr(self)
    }

    /// The transpose, as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix<T> {
        // CSC of A has the same arrays as CSR of A^T.
        let csc = self.to_csc();
        csc.into_transposed_csr()
    }

    /// Materializes as a dense matrix (intended for tests and small systems).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (i, cols, vals) in self.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                d[(i, c)] = v;
            }
        }
        d
    }

    /// Applies `f` to every stored value, preserving the pattern.
    pub fn map_values<F: FnMut(T) -> T>(&self, mut f: F) -> CsrMatrix<T> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every stored value by `s`.
    pub fn scale(&self, s: T) -> CsrMatrix<T> {
        self.map_values(|v| v * s)
    }

    /// Converts the value type (e.g. `f64 -> f32` for the hardware model).
    pub fn cast<U: Scalar>(&self) -> CsrMatrix<U> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f64(v.to_f64()))
                .collect(),
        }
    }

    /// Numeric symmetry test: `A[i][j] == A[j][i]` within relative
    /// tolerance `tol` on every stored entry (and pattern symmetry).
    ///
    /// For the paper-faithful CSR-vs-CSC comparison used by the Matrix
    /// Structure unit, see
    /// [`analysis::symmetric_via_csc`](crate::analysis::symmetric_via_csc);
    /// both agree on well-formed matrices.
    pub fn is_symmetric(&self, tol: T) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        // Compare against the CSC view directly: CSC arrays of A are the
        // CSR arrays of Aᵀ, so no transpose matrix needs materializing.
        let csc = self.to_csc();
        if csc.col_ptr() != &self.row_ptr[..] || csc.row_idx() != &self.col_idx[..] {
            return false;
        }
        self.values
            .iter()
            .zip(csc.values())
            .all(|(&a, &b)| (a - b).abs() <= tol * T::ONE.max(a.abs().max(b.abs())))
    }

    /// Structural (pattern-only) symmetry test.
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let n = self.ncols;
        // Column histogram + prefix sum yields the transpose's row_ptr;
        // reject early if it already disagrees.
        let mut col_ptr = vec![0usize; n + 1];
        for &c in &self.col_idx {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        if col_ptr != self.row_ptr {
            return false;
        }
        // Pattern-only scatter: build just the transpose's column indices,
        // skipping the value pass a full transpose would pay for.
        let mut t_col = vec![0usize; self.col_idx.len()];
        let mut next = col_ptr;
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for &c in &self.col_idx[lo..hi] {
                t_col[next[c]] = i;
                next[c] += 1;
            }
        }
        t_col == self.col_idx
    }

    /// Splits off the strictly-lower, diagonal, and strictly-upper parts:
    /// `A = L + D + U` (the Jacobi decomposition of Algorithm 1).
    pub fn split_ldu(&self) -> (CsrMatrix<T>, Vec<T>, CsrMatrix<T>) {
        let mut l_ptr = vec![0usize];
        let mut l_col = Vec::new();
        let mut l_val = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_col = Vec::new();
        let mut u_val = Vec::new();
        let n = self.nrows.min(self.ncols);
        let mut d = vec![T::ZERO; n];
        for (i, cols, vals) in self.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                use std::cmp::Ordering::*;
                match c.cmp(&i) {
                    Less => {
                        l_col.push(c);
                        l_val.push(v);
                    }
                    Equal => d[i] = v,
                    Greater => {
                        u_col.push(c);
                        u_val.push(v);
                    }
                }
            }
            l_ptr.push(l_col.len());
            u_ptr.push(u_col.len());
        }
        (
            CsrMatrix::from_raw_parts_unchecked(self.nrows, self.ncols, l_ptr, l_col, l_val),
            d,
            CsrMatrix::from_raw_parts_unchecked(self.nrows, self.ncols, u_ptr, u_col, u_val),
        )
    }

    /// Extracts rows `range` as a new matrix with the same column count.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > nrows`.
    pub fn row_slice(&self, range: std::ops::Range<usize>) -> CsrMatrix<T> {
        assert!(range.end <= self.nrows, "row range out of bounds");
        let base = self.row_ptr[range.start];
        let row_ptr: Vec<usize> = self.row_ptr[range.start..=range.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let lo = self.row_ptr[range.start];
        let hi = self.row_ptr[range.end];
        CsrMatrix {
            nrows: range.end - range.start,
            ncols: self.ncols,
            row_ptr,
            col_idx: self.col_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }
}

/// Iterator over the rows of a [`CsrMatrix`], yielding
/// `(row_index, column_indices, values)`.
#[derive(Debug)]
pub struct RowIter<'a, T> {
    m: &'a CsrMatrix<T>,
    next: usize,
}

impl<'a, T: Scalar> Iterator for RowIter<'a, T> {
    type Item = (usize, &'a [usize], &'a [T]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.m.nrows {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let (cols, vals) = self.m.row(i);
        Some((i, cols, vals))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.m.nrows - self.next;
        (rem, Some(rem))
    }
}

impl<'a, T: Scalar> ExactSizeIterator for RowIter<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri3() -> CsrMatrix<f64> {
        CsrMatrix::try_from_parts(
            3,
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        let e = CsrMatrix::<f64>::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
        let e = CsrMatrix::<f64>::try_from_parts(1, 2, vec![1, 1], vec![], vec![]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
        let e = CsrMatrix::<f64>::try_from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn validation_rejects_unsorted_or_duplicate_columns() {
        let e = CsrMatrix::<f64>::try_from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
        let e = CsrMatrix::<f64>::try_from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn validation_rejects_out_of_bounds_column() {
        let e = CsrMatrix::<f64>::try_from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
        assert!(matches!(e, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn identity_and_diagonal() {
        let i = CsrMatrix::<f32>::identity(3);
        assert_eq!(i.diagonal(), vec![1.0; 3]);
        assert!(i.has_nonzero_diagonal());
        let d = CsrMatrix::from_diagonal(&[1.0, 0.0, 3.0]);
        assert!(!d.has_nonzero_diagonal());
    }

    #[test]
    fn get_and_row_access() {
        let a = tri3();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.row_nnz(1), 3);
        assert_eq!(a.row_nnz_counts(), vec![2, 3, 2]);
        let rows: Vec<usize> = a.iter_rows().map(|(i, _, _)| i).collect();
        assert_eq!(rows, vec![0, 1, 2]);
        assert_eq!(a.iter_rows().len(), 3);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = tri3();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.mul_vec(&x).unwrap();
        let d = a.to_dense();
        let yd = d.mul_vec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    fn mul_vec_checks_dims() {
        let a = tri3();
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(a.mul_vec_into(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = CsrMatrix::try_from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
            .unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_checks() {
        let a = tri3();
        assert!(a.is_symmetric(1e-12));
        assert!(a.is_pattern_symmetric());
        let b = CsrMatrix::try_from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1.0, 5.0, 1.0])
            .unwrap();
        assert!(!b.is_pattern_symmetric());
        assert!(!b.is_symmetric(1e-12));
    }

    #[test]
    fn split_ldu_reassembles() {
        let a = tri3();
        let (l, d, u) = a.split_ldu();
        assert_eq!(d, vec![2.0, 2.0, 2.0]);
        assert_eq!(l.nnz() + u.nnz() + 3, a.nnz());
        // L + D + U == A entrywise
        for (i, &di) in d.iter().enumerate() {
            for j in 0..3 {
                let dij = if i == j { di } else { 0.0 };
                assert_eq!(l.get(i, j) + dij + u.get(i, j), a.get(i, j));
            }
        }
    }

    #[test]
    fn row_slice_extracts_subrange() {
        let a = tri3();
        let s = a.row_slice(1..3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.get(0, 0), -1.0); // old row 1
        assert_eq!(s.get(1, 2), 2.0); // old row 2
        assert_eq!(s.nnz(), 5);
    }

    #[test]
    fn cast_between_precisions() {
        let a = tri3();
        let f: CsrMatrix<f32> = a.cast();
        assert_eq!(f.get(1, 1), 2.0_f32);
        assert_eq!(f.nnz(), a.nnz());
    }

    #[test]
    fn density_and_scale() {
        let a = tri3();
        assert!((a.density() - 7.0 / 9.0).abs() < 1e-12);
        let b = a.scale(2.0);
        assert_eq!(b.get(0, 0), 4.0);
    }
}
