//! Row-population statistics.
//!
//! The paper's resource-underutilization analysis (Section III-B, Eq. 5)
//! is driven entirely by the distribution of non-zeros per row; this module
//! computes that distribution and the per-set averages used by the Row
//! Length Trace unit (Eq. 7–8).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Summary statistics of the NNZ-per-row distribution of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RowNnzStats {
    /// Number of rows observed.
    pub rows: usize,
    /// Total stored entries.
    pub total_nnz: usize,
    /// Minimum NNZ over rows.
    pub min: usize,
    /// Maximum NNZ over rows.
    pub max: usize,
    /// Mean NNZ per row.
    pub mean: f64,
    /// Population standard deviation of NNZ per row.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`; 0 when `mean == 0`).
    pub cv: f64,
    /// Histogram over power-of-two buckets: `histogram[k]` counts rows with
    /// `2^k <= nnz < 2^(k+1)` (bucket 0 also counts empty rows).
    pub histogram: Vec<usize>,
}

impl RowNnzStats {
    /// Computes statistics for `a`.
    ///
    /// # Examples
    ///
    /// ```
    /// use acamar_sparse::{generate, RowNnzStats};
    ///
    /// let a = generate::poisson2d::<f64>(16, 16);
    /// let s = RowNnzStats::of(&a);
    /// assert_eq!(s.max, 5); // interior rows of the 5-point stencil
    /// assert!(s.mean > 3.0 && s.mean < 5.0);
    /// ```
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let counts = a.row_nnz_counts();
        Self::of_counts(&counts)
    }

    /// Computes statistics from a raw NNZ-per-row count vector.
    pub fn of_counts(counts: &[usize]) -> Self {
        let rows = counts.len();
        if rows == 0 {
            return RowNnzStats {
                rows: 0,
                total_nnz: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
                cv: 0.0,
                histogram: Vec::new(),
            };
        }
        let total: usize = counts.iter().sum();
        let min = *counts.iter().min().expect("nonempty");
        let max = *counts.iter().max().expect("nonempty");
        let mean = total as f64 / rows as f64;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / rows as f64;
        let std_dev = var.sqrt();
        let cv = if mean > 0.0 { std_dev / mean } else { 0.0 };
        let buckets = if max == 0 {
            1
        } else {
            (usize::BITS - max.leading_zeros()) as usize
        };
        let mut histogram = vec![0usize; buckets.max(1)];
        for &c in counts {
            let b = if c <= 1 {
                0
            } else {
                (usize::BITS - 1 - c.leading_zeros()) as usize
            };
            let slot = b.min(histogram.len() - 1);
            histogram[slot] += 1;
        }
        RowNnzStats {
            rows,
            total_nnz: total,
            min,
            max,
            mean,
            std_dev,
            cv,
            histogram,
        }
    }
}

/// Splits `nrows` rows into `sampling_rate` contiguous sets and returns the
/// average NNZ/row of each set (paper Eq. 7–9).
///
/// `Set Size = ceil(nrows / sampling_rate)`; the final set may be shorter.
/// A `sampling_rate` of zero is treated as one. Returns one entry per
/// *actual* set (at most `sampling_rate`).
pub fn per_set_average_nnz<T: Scalar>(a: &CsrMatrix<T>, sampling_rate: usize) -> Vec<f64> {
    let rate = sampling_rate.max(1);
    let nrows = a.nrows();
    if nrows == 0 {
        return Vec::new();
    }
    let set_size = nrows.div_ceil(rate);
    let mut out = Vec::with_capacity(rate.min(nrows));
    let mut start = 0usize;
    while start < nrows {
        let end = (start + set_size).min(nrows);
        let nnz: usize = (start..end).map(|i| a.row_nnz(i)).sum();
        out.push(nnz as f64 / (end - start) as f64);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn matrix_with_row_counts(counts: &[usize]) -> CsrMatrix<f64> {
        let n = counts.len();
        let ncols = counts.iter().copied().max().unwrap_or(0).max(1);
        let mut coo = CooMatrix::new(n, ncols);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn stats_on_uniform_rows() {
        let a = matrix_with_row_counts(&[4, 4, 4, 4]);
        let s = RowNnzStats::of(&a);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.total_nnz, 16);
    }

    #[test]
    fn stats_on_skewed_rows() {
        let a = matrix_with_row_counts(&[1, 1, 1, 9]);
        let s = RowNnzStats::of(&a);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.mean, 3.0);
        assert!(s.std_dev > 3.0);
        assert!(s.cv > 1.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let a = matrix_with_row_counts(&[0, 1, 2, 3, 4, 8]);
        let s = RowNnzStats::of(&a);
        // bucket 0: nnz in {0, 1} -> 2 rows; bucket 1: {2, 3} -> 2 rows;
        // bucket 2: {4..7} -> 1 row; bucket 3: {8..15} -> 1 row.
        assert_eq!(s.histogram, vec![2, 2, 1, 1]);
    }

    #[test]
    fn empty_matrix_stats() {
        let s = RowNnzStats::of_counts(&[]);
        assert_eq!(s.rows, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn per_set_averages_follow_eq7() {
        let a = matrix_with_row_counts(&[2, 4, 6, 8]);
        // sampling rate 2 -> set size 2 -> averages [3, 7]
        assert_eq!(per_set_average_nnz(&a, 2), vec![3.0, 7.0]);
        // sampling rate 4 -> per-row
        assert_eq!(per_set_average_nnz(&a, 4), vec![2.0, 4.0, 6.0, 8.0]);
        // sampling rate 1 -> whole matrix
        assert_eq!(per_set_average_nnz(&a, 1), vec![5.0]);
    }

    #[test]
    fn per_set_handles_non_dividing_rates() {
        let a = matrix_with_row_counts(&[2, 4, 6, 8, 10]);
        // 5 rows, rate 2 -> set size 3 -> sets of 3 and 2 rows
        let sets = per_set_average_nnz(&a, 2);
        assert_eq!(sets, vec![4.0, 9.0]);
        // rate larger than rows -> one set per row
        assert_eq!(per_set_average_nnz(&a, 100).len(), 5);
        // rate zero treated as one
        assert_eq!(per_set_average_nnz(&a, 0), vec![6.0]);
    }
}
