//! Floating-point scalar abstraction.
//!
//! The paper's hardware computes in 32-bit floating point (Section V-B),
//! while software verification is more comfortable in `f64`. Everything in
//! this workspace is therefore generic over [`Scalar`], implemented for
//! `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar usable in sparse kernels and solvers.
///
/// This trait is sealed in spirit: it is only meaningfully implementable for
/// IEEE-754 binary floating point types, and the workspace implements it for
/// `f32` and `f64`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::Scalar;
///
/// fn hypot<T: Scalar>(a: T, b: T) -> T {
///     (a * a + b * b).sqrt()
/// }
///
/// assert_eq!(hypot(3.0_f64, 4.0_f64), 5.0);
/// assert_eq!(hypot(3.0_f32, 4.0_f32), 5.0);
/// ```
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Sum
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (`f32` widens losslessly).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Returns `true` if the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Returns `true` if the value is NaN.
    fn is_nan(self) -> bool;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
    /// Largest finite value of the type.
    fn max_value() -> Self;
    /// The larger of two values (NaN-propagating like `f64::max` is not
    /// required; ties resolve to `other`).
    fn max(self, other: Self) -> Self;
    /// The smaller of two values.
    fn min(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline]
            fn max_value() -> Self {
                <$t>::MAX
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn scalar_types_are_send_sync() {
        assert_send_sync::<f32>();
        assert_send_sync::<f64>();
    }

    #[test]
    fn identities_behave() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f64::ONE * f64::ONE, 1.0);
    }

    #[test]
    fn conversions_round_trip_for_f32_values() {
        let v = 1.25_f32;
        assert_eq!(f32::from_f64(v.to_f64()), v);
    }

    #[test]
    fn abs_sqrt_and_finiteness() {
        assert_eq!((-2.0_f64).abs(), 2.0);
        assert_eq!(9.0_f32.sqrt(), 3.0);
        assert!(1.0_f32.is_finite());
        assert!(!(f64::MAX * 2.0).is_finite());
        assert!((f64::NAN).is_nan());
    }

    #[test]
    fn min_max() {
        assert_eq!(2.0_f64.max(3.0), 3.0);
        assert_eq!(2.0_f64.min(3.0), 2.0);
    }

    #[test]
    fn generic_sum_works() {
        fn total<T: Scalar>(xs: &[T]) -> T {
            xs.iter().copied().sum()
        }
        assert_eq!(total(&[1.0_f32, 2.0, 3.0]), 6.0);
    }
}
