//! Graph Laplacians.
//!
//! Section II-A of the paper lists graph theory (spectral methods, place &
//! route) among the `Ax = b` sources; these generators produce Laplacian
//! matrices of deterministic and random graphs.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rng::DetRng as StdRng;
use crate::scalar::Scalar;

/// Laplacian of the path graph on `n` vertices (`L = D - A`), with an
/// optional `shift` added to the diagonal to make it nonsingular/SPD.
///
/// # Panics
///
/// Panics if `n == 0` or `shift < 0`.
pub fn path_laplacian<T: Scalar>(n: usize, shift: f64) -> CsrMatrix<T> {
    assert!(n > 0, "path_laplacian requires n > 0");
    assert!(shift >= 0.0, "shift must be non-negative");
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
        let deg = if n == 1 { 0.0 } else { deg };
        coo.push(i, i, T::from_f64(deg + shift)).expect("in bounds");
        if i > 0 {
            coo.push(i, i - 1, T::from_f64(-1.0)).expect("in bounds");
        }
        if i + 1 < n {
            coo.push(i, i + 1, T::from_f64(-1.0)).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Laplacian of the `nx x ny` grid graph with a diagonal `shift`.
///
/// With `shift > 0` this is SPD and (for the grid) equals the Poisson
/// operator plus boundary-degree corrections.
///
/// # Panics
///
/// Panics if either dimension is zero or `shift < 0`.
pub fn grid_laplacian<T: Scalar>(nx: usize, ny: usize, shift: f64) -> CsrMatrix<T> {
    assert!(nx > 0 && ny > 0, "grid dims must be positive");
    assert!(shift >= 0.0, "shift must be non-negative");
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            let mut deg = 0.0;
            let push_nb = |coo: &mut CooMatrix<T>, j: usize| {
                coo.push(i, j, T::from_f64(-1.0)).expect("in bounds");
            };
            if y > 0 {
                push_nb(&mut coo, idx(x, y - 1));
                deg += 1.0;
            }
            if x > 0 {
                push_nb(&mut coo, idx(x - 1, y));
                deg += 1.0;
            }
            if x + 1 < nx {
                push_nb(&mut coo, idx(x + 1, y));
                deg += 1.0;
            }
            if y + 1 < ny {
                push_nb(&mut coo, idx(x, y + 1));
                deg += 1.0;
            }
            coo.push(i, i, T::from_f64(deg + shift)).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Laplacian (plus `shift`·I) of a preferential-attachment random graph:
/// each new vertex attaches `m` edges to earlier vertices with probability
/// proportional to their current degree, yielding the heavy-tailed degree
/// distribution of citation graphs like the paper's `cit-HepPh`.
///
/// # Panics
///
/// Panics if `n == 0`, `m == 0`, or `shift < 0`.
pub fn preferential_attachment_laplacian<T: Scalar>(
    n: usize,
    m: usize,
    shift: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(n > 0 && m > 0, "n and m must be positive");
    assert!(shift >= 0.0, "shift must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per half-edge endpoint; sampling uniformly
    // from it implements degree-proportional attachment.
    let mut targets: Vec<usize> = Vec::with_capacity(2 * n * m);
    let mut edges: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for v in 0..n {
        let mut attached = std::collections::BTreeSet::new();
        if v == 0 {
            targets.push(0);
            continue;
        }
        let want = m.min(v);
        let mut guard = 0usize;
        while attached.len() < want && guard < 50 * want {
            guard += 1;
            let u = if targets.is_empty() || rng.gen_bool(0.2) {
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if u != v {
                attached.insert(u);
            }
        }
        for u in attached {
            let (a, b) = (u.min(v), u.max(v));
            if edges.insert((a, b)) {
                targets.push(a);
                targets.push(b);
            }
        }
    }
    let mut deg = vec![0.0f64; n];
    for &(a, b) in &edges {
        deg[a] += 1.0;
        deg[b] += 1.0;
    }
    let mut coo = CooMatrix::with_capacity(n, n, 2 * edges.len() + n);
    for &(a, b) in &edges {
        coo.push(a, b, T::from_f64(-1.0)).expect("in bounds");
        coo.push(b, a, T::from_f64(-1.0)).expect("in bounds");
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, T::from_f64(d + shift)).expect("in bounds");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::stats::RowNnzStats;

    #[test]
    fn path_laplacian_row_sums_equal_shift() {
        let l = path_laplacian::<f64>(5, 0.5);
        for (i, cols, vals) in l.iter_rows() {
            let sum: f64 = cols.iter().zip(vals).map(|(_, &v)| v).sum();
            assert!((sum - 0.5).abs() < 1e-12, "row {i} sums to {sum}");
        }
        assert!(analysis::symmetric_via_csc(&l));
    }

    #[test]
    fn grid_laplacian_matches_degree_structure() {
        let l = grid_laplacian::<f64>(3, 3, 0.0);
        assert_eq!(l.get(4, 4), 4.0); // center
        assert_eq!(l.get(0, 0), 2.0); // corner
        assert!(analysis::weakly_diagonally_dominant(&l));
    }

    #[test]
    fn shifted_laplacians_are_spd() {
        let l = grid_laplacian::<f64>(4, 4, 1.0);
        assert!(analysis::strictly_diagonally_dominant(&l));
        assert_eq!(
            analysis::gershgorin_definiteness(&l),
            analysis::Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed_and_symmetric() {
        let l = preferential_attachment_laplacian::<f64>(300, 2, 1.0, 99);
        assert!(analysis::symmetric_via_csc(&l));
        let s = RowNnzStats::of(&l);
        assert!(
            s.max > 3 * (s.mean as usize).max(1),
            "tail: max {} mean {}",
            s.max,
            s.mean
        );
        // determinism
        let l2 = preferential_attachment_laplacian::<f64>(300, 2, 1.0, 99);
        assert_eq!(l, l2);
    }
}
