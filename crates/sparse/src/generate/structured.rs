//! Banded and convection–diffusion operators.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Tridiagonal matrix with constant bands `(sub, diag, sup)`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::generate::tridiagonal;
///
/// let a = tridiagonal(3, 1.0, -2.0, 1.0);
/// assert_eq!(a.get(1, 0), 1.0);
/// assert_eq!(a.get(1, 1), -2.0);
/// assert_eq!(a.get(1, 2), 1.0);
/// ```
pub fn tridiagonal<T: Scalar>(n: usize, sub: T, diag: T, sup: T) -> CsrMatrix<T> {
    banded(n, &[(-1, sub), (0, diag), (1, sup)])
}

/// Banded matrix from `(offset, value)` pairs: entry `(i, i + offset)` is
/// `value` wherever it lands in bounds.
///
/// # Panics
///
/// Panics if `n == 0` or `bands` is empty or contains duplicate offsets.
pub fn banded<T: Scalar>(n: usize, bands: &[(isize, T)]) -> CsrMatrix<T> {
    assert!(n > 0, "banded requires n > 0");
    assert!(!bands.is_empty(), "banded requires at least one band");
    let mut offsets: Vec<isize> = bands.iter().map(|&(o, _)| o).collect();
    offsets.sort_unstable();
    offsets.dedup();
    assert_eq!(offsets.len(), bands.len(), "duplicate band offsets");

    let mut coo = CooMatrix::with_capacity(n, n, bands.len() * n);
    for i in 0..n {
        for &(off, v) in bands {
            let j = i as isize + off;
            if j >= 0 && (j as usize) < n {
                coo.push(i, j as usize, v).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 2D convection–diffusion operator (upwind differencing) on an
/// `nx x ny` grid: the canonical *non-symmetric* PDE matrix.
///
/// `peclet` controls the convection strength; `peclet = 0` reduces to the
/// symmetric Poisson operator, larger values skew the east/west couplings
/// and break symmetry (like the paper's non-symmetric datasets, e.g.
/// `poisson3Db`, `ifiss_mat`).
///
/// The operator remains weakly diagonally dominant for all `peclet >= 0`
/// (upwinding preserves an M-matrix structure), so BiCG-STAB converges.
///
/// # Panics
///
/// Panics if `nx == 0`, `ny == 0`, or `peclet < 0`.
pub fn convection_diffusion_2d<T: Scalar>(nx: usize, ny: usize, peclet: f64) -> CsrMatrix<T> {
    assert!(nx > 0 && ny > 0, "grid dims must be positive");
    assert!(peclet >= 0.0, "peclet must be non-negative");
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    // Upwind scheme for u_x convection with velocity along +x:
    //   west coupling  = -(1 + peclet)
    //   east coupling  = -1
    //   diagonal       =  4 + peclet
    let west = T::from_f64(-(1.0 + peclet));
    let east = T::from_f64(-1.0);
    let ns = T::from_f64(-1.0);
    let diag = T::from_f64(4.0 + peclet);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if y > 0 {
                coo.push(i, idx(x, y - 1), ns).expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), west).expect("in bounds");
            }
            coo.push(i, i, diag).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), east).expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), ns).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 2D convection–diffusion with *centered* differencing: the canonical
/// hard non-symmetric matrix.
///
/// For cell Péclet `peclet > 2` the east coupling flips sign and the rows
/// lose diagonal dominance (`Σ|off| = 2 + peclet > 4`), so Jacobi
/// diverges; CG is inapplicable (non-symmetric); Krylov methods for
/// non-symmetric systems (BiCG-STAB, GMRES) still converge. This is the
/// `ifiss_mat`/`ns3Da` class of the paper's Table II (✗ ✗ ✓).
///
/// # Panics
///
/// Panics if a grid dimension is zero or `peclet < 0`.
pub fn convection_diffusion_2d_centered<T: Scalar>(
    nx: usize,
    ny: usize,
    peclet: f64,
) -> CsrMatrix<T> {
    assert!(nx > 0 && ny > 0, "grid dims must be positive");
    assert!(peclet >= 0.0, "peclet must be non-negative");
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    let west = T::from_f64(-(1.0 + peclet / 2.0));
    let east = T::from_f64(-(1.0 - peclet / 2.0)); // positive for peclet > 2
    let ns = T::from_f64(-1.0);
    let diag = T::from_f64(4.0);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if y > 0 {
                coo.push(i, idx(x, y - 1), ns).expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), west).expect("in bounds");
            }
            coo.push(i, i, diag).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), east).expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), ns).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn tridiagonal_layout() {
        let a = tridiagonal(4, -1.0, 2.0, -1.0);
        assert_eq!(a.nnz(), 10);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(3, 2), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn banded_with_wide_offsets() {
        let a = banded(5, &[(0, 1.0), (3, 2.0), (-3, 2.0)]);
        assert_eq!(a.get(0, 3), 2.0);
        assert_eq!(a.get(4, 1), 2.0);
        assert_eq!(a.get(2, 2), 1.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate band offsets")]
    fn banded_rejects_duplicate_offsets() {
        let _ = banded(3, &[(0, 1.0), (0, 2.0)]);
    }

    #[test]
    fn convection_diffusion_zero_peclet_is_poisson() {
        let a = convection_diffusion_2d::<f64>(4, 4, 0.0);
        let p = crate::generate::poisson2d::<f64>(4, 4);
        assert_eq!(a, p);
    }

    #[test]
    fn centered_scheme_loses_dominance_above_peclet_2() {
        let ok = convection_diffusion_2d_centered::<f64>(6, 6, 1.5);
        assert!(analysis::weakly_diagonally_dominant(&ok));
        let hard = convection_diffusion_2d_centered::<f64>(6, 6, 4.0);
        assert!(!analysis::weakly_diagonally_dominant(&hard));
        assert!(!analysis::symmetric_via_csc(&hard));
        // interior row: |west| + |east| + 2 = (1+2) + (2-1) + 2 = 6 > 4
        let margin = analysis::diagonal_dominance_margin(&hard);
        assert!((margin - (4.0 - 6.0)).abs() < 1e-9, "margin {margin}");
    }

    #[test]
    fn convection_diffusion_is_nonsymmetric_and_dominant() {
        let a = convection_diffusion_2d::<f64>(6, 6, 2.0);
        let r = analysis::analyze(&a);
        assert!(!r.symmetric);
        assert!(r.pattern_symmetric);
        assert!(r.weakly_diagonally_dominant);
        assert!(r.positive_diagonal);
    }
}
