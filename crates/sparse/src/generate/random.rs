//! Randomized generators with controllable structure.
//!
//! These produce the structural classes of the paper's Table II datasets:
//! strictly diagonally dominant (Jacobi-convergent), symmetric positive
//! definite (CG-convergent), non-symmetric (BiCG-STAB territory), and
//! indefinite (the hard cases). All take an explicit `seed` and are fully
//! deterministic.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rng::DetRng as StdRng;
use crate::scalar::Scalar;

/// Target NNZ-per-row distribution for [`random_pattern`].
///
/// The paper's resource-underutilization argument (Fig. 2) hinges on the
/// *unevenness* of NNZ/row; these shapes span the regimes seen in
/// SuiteSparse matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowDistribution {
    /// Every row has exactly `k` off-diagonal candidates.
    Constant(usize),
    /// NNZ/row uniform in `[min, max]`.
    Uniform {
        /// Minimum off-diagonal entries per row.
        min: usize,
        /// Maximum off-diagonal entries per row.
        max: usize,
    },
    /// Rows are `low` except a `high_fraction` of rows at `high`
    /// (dense-row outliers, like circuit matrices).
    Bimodal {
        /// NNZ of ordinary rows.
        low: usize,
        /// NNZ of outlier rows.
        high: usize,
        /// Fraction of rows that are outliers (clamped to `[0, 1]`).
        high_fraction: f64,
    },
    /// Heavy-tailed (Zipf-like) row populations in `[min, max]` with
    /// `P(k) ∝ k^-exponent` (social/citation graphs like `cit-HepPh`).
    PowerLaw {
        /// Minimum NNZ per row.
        min: usize,
        /// Maximum NNZ per row.
        max: usize,
        /// Tail exponent (larger ⇒ lighter tail); must be positive.
        exponent: f64,
    },
}

impl RowDistribution {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            RowDistribution::Constant(k) => k,
            RowDistribution::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), min.max(max));
                rng.gen_range(lo..=hi)
            }
            RowDistribution::Bimodal {
                low,
                high,
                high_fraction,
            } => {
                if rng.gen_bool(high_fraction.clamp(0.0, 1.0)) {
                    high
                } else {
                    low
                }
            }
            RowDistribution::PowerLaw { min, max, exponent } => {
                let (lo, hi) = (min.min(max).max(1), min.max(max).max(1));
                // Inverse-CDF sampling of P(k) ∝ k^-exponent over [lo, hi].
                let e = 1.0 - exponent;
                let u: f64 = rng.gen_f64();
                let k = if e.abs() < 1e-9 {
                    (lo as f64 * ((hi as f64 / lo as f64).powf(u))).round()
                } else {
                    let a = (lo as f64).powf(e);
                    let b = (hi as f64).powf(e);
                    (a + u * (b - a)).powf(1.0 / e).round()
                };
                (k as usize).clamp(lo, hi)
            }
        }
    }
}

/// Generates a square random sparse matrix with a guaranteed diagonal and
/// the requested off-diagonal row distribution; values are uniform in
/// `[-1, 1]` (diagonal in `[1, 2]`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_pattern<T: Scalar>(n: usize, dist: RowDistribution, seed: u64) -> CsrMatrix<T> {
    assert!(n > 0, "random_pattern requires n > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * 4);
    for i in 0..n {
        let k = dist.sample(&mut rng).min(n.saturating_sub(1));
        let mut cols = std::collections::BTreeSet::new();
        // Rejection-sample distinct off-diagonal columns; for rows denser
        // than half the matrix fall back to a shuffle.
        if k * 2 < n {
            while cols.len() < k {
                let c = rng.gen_range(0..n);
                if c != i {
                    cols.insert(c);
                }
            }
        } else {
            let mut all: Vec<usize> = (0..n).filter(|&c| c != i).collect();
            for idx in 0..k {
                let j = rng.gen_range(idx..all.len());
                all.swap(idx, j);
            }
            cols.extend(all.into_iter().take(k));
        }
        coo.push(i, i, T::from_f64(rng.gen_range(1.0..2.0)))
            .expect("in bounds");
        for c in cols {
            coo.push(i, c, T::from_f64(rng.gen_range(-1.0..1.0)))
                .expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Makes a random-pattern matrix *strictly diagonally dominant* (paper
/// Eq. 1): each diagonal is set to `dominance * Σ_{j≠i}|a_ij|` (plus one to
/// handle empty rows).
///
/// The result converges under Jacobi. It is generally non-symmetric; CG is
/// not applicable.
///
/// # Panics
///
/// Panics if `n == 0` or `dominance <= 1`.
pub fn diagonally_dominant<T: Scalar>(
    n: usize,
    dist: RowDistribution,
    dominance: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(dominance > 1.0, "dominance factor must exceed 1");
    let base = random_pattern::<T>(n, dist, seed);
    set_diagonal_dominance(&base, dominance, 1.0)
}

/// Strictly diagonally dominant matrix whose diagonal *alternates sign* —
/// symmetric pattern, indefinite spectrum straddling zero.
///
/// This is the `fe_rotor`/`sd2010`/`cti` class of Table II: Jacobi
/// converges (dominance), CG diverges (indefinite), and BiCG-STAB's real
/// one-step stabilization cannot damp a spectrum symmetric about the
/// origin, so it stagnates.
///
/// # Panics
///
/// Panics if `n == 0` or `dominance <= 1`.
pub fn indefinite_diagonally_dominant<T: Scalar>(
    n: usize,
    dist: RowDistribution,
    dominance: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(dominance > 1.0, "dominance factor must exceed 1");
    let base = random_pattern::<T>(n, dist, seed);
    let sym = symmetrize(&base);
    let dd = set_diagonal_dominance(&sym, dominance, 1.0);
    // Flip the diagonal sign of every other row. Dominance magnitudes are
    // unchanged, so Jacobi still converges, but Gershgorin discs now sit on
    // both sides of zero.
    let mut out = dd.clone();
    flip_alternate_diagonal(&mut out);
    out
}

/// Symmetric positive definite matrix with a random pattern: the matrix is
/// symmetrized and its diagonal lifted to `(1 + margin) * Σ_{j≠i}|a_ij|`,
/// which certifies positive definiteness by Gershgorin.
///
/// Note this construction is also diagonally dominant, so *all three*
/// solvers converge on it (the `wang3`/`finan512` class). For an SPD
/// matrix on which Jacobi diverges, see [`jacobi_divergent_spd`].
///
/// # Panics
///
/// Panics if `n == 0` or `margin < 0`.
pub fn spd_from_pattern<T: Scalar>(
    n: usize,
    dist: RowDistribution,
    margin: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(margin >= 0.0, "margin must be non-negative");
    let base = random_pattern::<T>(n, dist, seed);
    let sym = symmetrize(&base);
    set_diagonal_dominance(&sym, 1.0 + margin.max(1e-6), 1.0)
}

/// Symmetric positive definite matrix on which the Jacobi method
/// *diverges*: tightly coupled 3x3 diagonal blocks
/// `[[1, c, c], [c, 1, c], [c, c, 1]]` with `0.5 < c < 1`, plus optional
/// weak symmetric long-range entries for sparsity-shape realism.
///
/// Such a block is positive definite (eigenvalues `1 + 2c`, `1 - c`,
/// `1 - c`), but `2D - A` is indefinite (`1 - 2c < 0`), and Jacobi on an
/// SPD matrix converges **iff** `2D - A` is also positive definite — so JB
/// diverges while CG and BiCG-STAB converge. This is the
/// `2cubes_sphere`/`offshore`/`qa8fm` class of Table II.
///
/// `extra_per_row` weak entries of magnitude `weak` are added symmetric
/// pairs; the diagonal is lifted by the added row mass so positive
/// definiteness is preserved.
///
/// # Panics
///
/// Panics if `n == 0` or `coupling` is outside `(0.5, 1.0)`.
pub fn jacobi_divergent_spd<T: Scalar>(
    n: usize,
    coupling: f64,
    extra_per_row: usize,
    weak: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(n > 0, "jacobi_divergent_spd requires n > 0");
    assert!(
        coupling > 0.5 && coupling < 1.0,
        "coupling must lie in (0.5, 1.0)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, n * (3 + 2 * extra_per_row));
    let mut diag = vec![1.0f64; n];

    // Weak symmetric long-range entries first, accumulating diagonal lift.
    for i in 0..n {
        for _ in 0..extra_per_row {
            let j = rng.gen_range(0..n);
            if j == i || j / 3 == i / 3 {
                continue; // skip the block neighborhood
            }
            let v = weak * rng.gen_range(0.5..1.0);
            coo.push(i, j, v).expect("in bounds");
            coo.push(j, i, v).expect("in bounds");
            diag[i] += v.abs();
            diag[j] += v.abs();
        }
    }
    // 3x3 coupled blocks.
    for b in (0..n).step_by(3) {
        let hi = (b + 3).min(n);
        for i in b..hi {
            for j in b..hi {
                if i != j {
                    coo.push(i, j, coupling).expect("in bounds");
                }
            }
        }
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).expect("in bounds");
    }
    coo.to_csr().cast()
}

/// Symmetric block matrix with a spectrum spread over `cond` orders of
/// magnitude: tightly coupled 3x3 blocks `s_b · [[1, c, c], [c, 1, c],
/// [c, c, 1]]` with per-block scales `s_b` log-spaced over `[1, cond]`
/// (shuffled), optionally sign-alternating.
///
/// * `indefinite = false` produces an SPD matrix with condition number
///   `≈ cond · (1 + 2c)/(1 - c)`. With `coupling > 0.5` Jacobi diverges
///   (see [`jacobi_divergent_spd`]); combined with high `cond`, **f32**
///   BiCG-STAB stagnates above the paper's `1e-5` tolerance while CG still
///   converges — the `beircuit` class of Table II (JB ✗, CG ✓, BiCG ✗).
/// * `indefinite = true` flips the sign of every other block: the spectrum
///   straddles zero with wide spread. With `coupling < 0.5` Jacobi still
///   converges (block Jacobi spectral radius `2c < 1`), CG breaks down
///   (indefinite), and f32 BiCG-STAB stagnates for `cond >= 1e3` — the
///   `fe_rotor`/`sd2010`/`cti` class (JB ✓, CG ✗, BiCG ✗).
///
/// # Panics
///
/// Panics if `n < 3`, `coupling` outside `(0, 1)`, or `cond < 1`.
pub fn spread_spectrum_blocks<T: Scalar>(
    n: usize,
    coupling: f64,
    cond: f64,
    indefinite: bool,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(n >= 3, "need at least one 3x3 block");
    assert!(
        coupling > 0.0 && coupling < 1.0,
        "coupling must lie in (0, 1)"
    );
    assert!(cond >= 1.0, "condition spread must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, 3 * n);
    let nb = n / 3;
    // Quantize the log-spaced scales to at most 16 distinct levels: the
    // spectrum then forms clusters, so Krylov iteration counts depend on
    // the cluster count rather than the matrix size (keeping CG's
    // behavior on the SPD variant size-independent) while the spread
    // still sets the f32 accuracy floor.
    let levels = nb.clamp(2, 16);
    let mut scales: Vec<f64> = (0..nb)
        .map(|i| {
            let level = (i * levels / nb).min(levels - 1);
            cond.powf(level as f64 / (levels - 1) as f64)
        })
        .collect();
    for i in (1..nb).rev() {
        let j = rng.gen_range(0..=i);
        scales.swap(i, j);
    }
    for (b, &scale) in scales.iter().enumerate() {
        let s = scale * if indefinite && b % 2 == 1 { -1.0 } else { 1.0 };
        let base = 3 * b;
        for i in base..base + 3 {
            for j in base..base + 3 {
                let v = if i == j { s } else { coupling * s };
                coo.push(i, j, v).expect("in bounds");
            }
        }
    }
    for i in nb * 3..n {
        coo.push(i, i, 1.0).expect("in bounds");
    }
    coo.to_csr().cast()
}

/// Breaks the symmetry of `a` by scaling a pseudo-random subset of
/// strictly-upper entries by `1 + strength` (pattern preserved).
///
/// # Panics
///
/// Panics if `strength <= 0`.
pub fn nonsymmetric_perturbation<T: Scalar>(
    a: &CsrMatrix<T>,
    strength: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(strength > 0.0, "strength must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let factor = T::from_f64(1.0 + strength);
    let mut out = a.clone();
    let nrows = a.nrows();
    // Walk rows via the immutable borrow first, collecting flat indices.
    let mut bump = Vec::new();
    {
        let mut k = 0usize;
        for i in 0..nrows {
            let (cols, vals) = a.row(i);
            for (&c, _v) in cols.iter().zip(vals) {
                if c > i && rng.gen_bool(0.5) {
                    bump.push(k);
                }
                k += 1;
            }
        }
    }
    for k in bump {
        out.values_mut()[k] *= factor;
    }
    out
}

/// Symmetric positive definite matrix with condition number approximately
/// `cond`: a log-spaced positive diagonal plus weak symmetric off-diagonal
/// entries that preserve Gershgorin positive definiteness.
///
/// Used to study f32 convergence floors (CG-vs-BiCG-STAB separation).
///
/// # Panics
///
/// Panics if `n < 2` or `cond < 1`.
pub fn ill_conditioned_spd<T: Scalar>(
    n: usize,
    cond: f64,
    extra_per_row: usize,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(n >= 2, "need at least 2 rows");
    assert!(cond >= 1.0, "condition number must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::<f64>::with_capacity(n, n, n * (1 + 2 * extra_per_row));
    let mut diag: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            cond.powf(t) // log-spaced in [1, cond]
        })
        .collect();
    let d_min = 1.0;
    // Off-diagonal budget per row keeps every Gershgorin disc positive.
    let budget = 0.4 * d_min / (extra_per_row.max(1) as f64 * 2.0);
    for i in 0..n {
        for _ in 0..extra_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v = budget * rng.gen_range(0.1..1.0);
            coo.push(i, j, v).expect("in bounds");
            coo.push(j, i, v).expect("in bounds");
        }
    }
    // Shuffle diagonal placement so large/small entries interleave
    // (keeps per-set NNZ realistic rather than sorted).
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        diag.swap(i, j);
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).expect("in bounds");
    }
    coo.to_csr().cast()
}

/// Symmetrizes: `(A + Aᵀ) / 2`.
fn symmetrize<T: Scalar>(a: &CsrMatrix<T>) -> CsrMatrix<T> {
    let t = a.transpose();
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz() * 2);
    let half = T::from_f64(0.5);
    for (i, cols, vals) in a.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(i, c, v * half).expect("in bounds");
        }
    }
    for (i, cols, vals) in t.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(i, c, v * half).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Rewrites the diagonal to `scale * Σ_{j≠i}|a_ij| + floor`.
fn set_diagonal_dominance<T: Scalar>(a: &CsrMatrix<T>, scale: f64, floor: f64) -> CsrMatrix<T> {
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, a.ncols(), a.nnz() + n);
    for (i, cols, vals) in a.iter_rows() {
        let mut off = 0.0f64;
        for (&c, &v) in cols.iter().zip(vals) {
            if c != i {
                off += v.to_f64().abs();
                coo.push(i, c, v).expect("in bounds");
            }
        }
        coo.push(i, i, T::from_f64(scale * off + floor))
            .expect("in bounds");
    }
    coo.to_csr()
}

/// Negates the diagonal of every odd row in place.
fn flip_alternate_diagonal<T: Scalar>(a: &mut CsrMatrix<T>) {
    let nrows = a.nrows();
    let mut flips = Vec::new();
    {
        let mut k = 0usize;
        for i in 0..nrows {
            let (cols, _) = a.row(i);
            for &c in cols {
                if c == i && i % 2 == 1 {
                    flips.push(k);
                }
                k += 1;
            }
        }
    }
    for k in flips {
        let v = a.values()[k];
        a.values_mut()[k] = -v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{self, Definiteness};
    use crate::stats::RowNnzStats;

    #[test]
    fn random_pattern_is_deterministic_and_has_diagonal() {
        let a = random_pattern::<f64>(40, RowDistribution::Uniform { min: 2, max: 8 }, 42);
        let b = random_pattern::<f64>(40, RowDistribution::Uniform { min: 2, max: 8 }, 42);
        assert_eq!(a, b);
        assert!(a.has_nonzero_diagonal());
        let c = random_pattern::<f64>(40, RowDistribution::Uniform { min: 2, max: 8 }, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn row_distributions_shape_the_rows() {
        let a = random_pattern::<f64>(200, RowDistribution::Constant(4), 1);
        let s = RowNnzStats::of(&a);
        assert_eq!(s.min, 5); // 4 off-diagonal + diagonal
        assert_eq!(s.max, 5);

        let b = random_pattern::<f64>(
            400,
            RowDistribution::Bimodal {
                low: 2,
                high: 40,
                high_fraction: 0.1,
            },
            2,
        );
        let sb = RowNnzStats::of(&b);
        assert_eq!(sb.min, 3);
        assert_eq!(sb.max, 41);
        assert!(sb.cv > 1.0, "bimodal should be high-variance, cv={}", sb.cv);

        let c = random_pattern::<f64>(
            400,
            RowDistribution::PowerLaw {
                min: 1,
                max: 100,
                exponent: 2.0,
            },
            3,
        );
        let sc = RowNnzStats::of(&c);
        assert!(
            sc.mean < 20.0,
            "power law mean should be small: {}",
            sc.mean
        );
        assert!(sc.max > 20, "power law should have heavy tail: {}", sc.max);
    }

    #[test]
    fn diagonally_dominant_is_strictly_dominant() {
        let a = diagonally_dominant::<f64>(60, RowDistribution::Uniform { min: 1, max: 9 }, 1.3, 5);
        assert!(analysis::strictly_diagonally_dominant(&a));
        assert!(!analysis::symmetric_via_csc(&a)); // random values
    }

    #[test]
    fn spd_from_pattern_is_spd_and_symmetric() {
        let a = spd_from_pattern::<f64>(60, RowDistribution::Uniform { min: 2, max: 6 }, 0.2, 6);
        assert!(analysis::symmetric_via_csc(&a));
        assert_eq!(
            analysis::gershgorin_definiteness(&a),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn indefinite_dd_is_dominant_and_indefinite() {
        let a = indefinite_diagonally_dominant::<f64>(
            61,
            RowDistribution::Uniform { min: 2, max: 5 },
            1.4,
            7,
        );
        assert!(analysis::strictly_diagonally_dominant(&a));
        let r = analysis::analyze(&a);
        assert!(r.mixed_sign_diagonal);
        assert_eq!(r.gershgorin_definiteness, Definiteness::Indefinite);
        // pattern stays symmetric but values differ on the diagonal only,
        // so the matrix itself is symmetric except sign flips are on the
        // diagonal -> still symmetric.
        assert!(r.symmetric);
    }

    #[test]
    fn jacobi_divergent_spd_block_properties() {
        let a = jacobi_divergent_spd::<f64>(30, 0.7, 0, 0.0, 8);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert!(!r.strictly_diagonally_dominant); // coupling 0.7*2 > 1
                                                  // verify PD numerically on probes
        for p in 0..3 {
            let x: Vec<f64> = (0..30).map(|i| (((i + p) % 7) as f64) - 3.0).collect();
            let ax = a.mul_vec(&x).unwrap();
            let q: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            assert!(q > 0.0, "not PD on probe {p}: {q}");
        }
        // Jacobi iteration matrix spectral radius > 1: the block Jacobi
        // matrix is -c * (block of ones minus I), with eigenvalue -2c.
        let (l, d, u) = a.split_ldu();
        let mut coo = crate::CooMatrix::<f64>::new(30, 30);
        for (i, cols, vals) in l.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(i, c, v / d[i]).unwrap();
            }
        }
        for (i, cols, vals) in u.iter_rows() {
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(i, c, v / d[i]).unwrap();
            }
        }
        let iter_matrix = coo.to_csr();
        let rho = analysis::spectral_radius_estimate(&iter_matrix, 200).unwrap();
        assert!(rho > 1.0, "Jacobi should diverge, rho = {rho}");
    }

    #[test]
    fn jacobi_divergent_spd_with_extras_stays_spd() {
        let a = jacobi_divergent_spd::<f64>(60, 0.75, 2, 0.01, 9);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        for p in 0..3 {
            let x: Vec<f64> = (0..60).map(|i| (((i * 13 + p) % 9) as f64) - 4.0).collect();
            let ax = a.mul_vec(&x).unwrap();
            let q: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            assert!(q > 0.0, "not PD on probe {p}: {q}");
        }
    }

    #[test]
    fn nonsymmetric_perturbation_breaks_symmetry_only() {
        let base = spd_from_pattern::<f64>(50, RowDistribution::Constant(4), 0.3, 10);
        let ns = nonsymmetric_perturbation(&base, 0.4, 11);
        assert!(!analysis::symmetric_via_csc(&ns));
        assert!(ns.is_pattern_symmetric());
        assert_eq!(ns.nnz(), base.nnz());
    }

    #[test]
    fn ill_conditioned_spd_has_requested_spread() {
        let a = ill_conditioned_spd::<f64>(100, 1e4, 2, 12);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert_eq!(r.gershgorin_definiteness, Definiteness::PositiveDefinite);
        let d = a.diagonal();
        let dmax = d.iter().cloned().fold(0.0f64, f64::max);
        let dmin = d.iter().cloned().fold(f64::MAX, f64::min);
        assert!(dmax / dmin > 1e3, "spread {dmax}/{dmin}");
    }

    #[test]
    #[should_panic(expected = "dominance factor")]
    fn diagonally_dominant_rejects_weak_factor() {
        let _ = diagonally_dominant::<f64>(10, RowDistribution::Constant(2), 1.0, 0);
    }
}
