//! Matrix generators.
//!
//! The paper evaluates on SuiteSparse matrices spanning PDE
//! discretizations, circuit and graph problems, and assorted engineering
//! applications (Table II). Without the collection itself, this module
//! synthesizes matrices of each *structural class* — strictly diagonally
//! dominant, symmetric positive definite, non-symmetric, indefinite —
//! with controllable dimension and NNZ/row distribution. All generators
//! are deterministic: randomized ones take an explicit seed.

mod graph;
mod poisson;
mod random;
mod structured;

pub use graph::{grid_laplacian, path_laplacian, preferential_attachment_laplacian};
pub use poisson::{anisotropic_poisson2d, jump_poisson2d, poisson1d, poisson2d, poisson3d};
pub use random::{
    diagonally_dominant, ill_conditioned_spd, indefinite_diagonally_dominant, jacobi_divergent_spd,
    nonsymmetric_perturbation, random_pattern, spd_from_pattern, spread_spectrum_blocks,
    RowDistribution,
};
pub use structured::{
    banded, convection_diffusion_2d, convection_diffusion_2d_centered, tridiagonal,
};

#[cfg(test)]
mod tests {
    use crate::analysis;
    use crate::generate::*;
    use crate::Definiteness;

    #[test]
    fn generator_classes_have_expected_structure() {
        // One smoke assertion per class; detailed tests live in submodules.
        let p = poisson2d::<f64>(6, 6);
        assert!(analysis::symmetric_via_csc(&p));

        let dd =
            diagonally_dominant::<f64>(50, RowDistribution::Uniform { min: 2, max: 6 }, 1.5, 7);
        assert!(analysis::strictly_diagonally_dominant(&dd));

        let spd = spd_from_pattern::<f64>(50, RowDistribution::Uniform { min: 2, max: 6 }, 0.1, 11);
        assert_eq!(
            analysis::gershgorin_definiteness(&spd),
            Definiteness::PositiveDefinite
        );

        let ns = nonsymmetric_perturbation(&p, 0.5, 13);
        assert!(!analysis::symmetric_via_csc(&ns));
    }
}
