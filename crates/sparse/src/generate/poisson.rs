//! Finite-difference Poisson operators.
//!
//! Discretizing `-∇²u = f` on a regular grid (the paper's canonical PDE
//! example, Section II-A) yields the classic 3/5/7-point stencil matrices:
//! symmetric, positive definite, and weakly diagonally dominant.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// 1D Poisson operator: tridiagonal `[-1, 2, -1]`, `n x n`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::generate::poisson1d;
///
/// let a = poisson1d::<f64>(4);
/// assert_eq!(a.get(0, 0), 2.0);
/// assert_eq!(a.get(0, 1), -1.0);
/// assert_eq!(a.nnz(), 3 * 4 - 2);
/// ```
pub fn poisson1d<T: Scalar>(n: usize) -> CsrMatrix<T> {
    assert!(n > 0, "poisson1d requires n > 0");
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    let two = T::from_f64(2.0);
    let neg = T::from_f64(-1.0);
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, neg).expect("in bounds");
        }
        coo.push(i, i, two).expect("in bounds");
        if i + 1 < n {
            coo.push(i, i + 1, neg).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// 2D Poisson operator: 5-point stencil on an `nx x ny` grid,
/// `(nx*ny) x (nx*ny)`.
///
/// # Panics
///
/// Panics if `nx == 0` or `ny == 0`.
pub fn poisson2d<T: Scalar>(nx: usize, ny: usize) -> CsrMatrix<T> {
    assert!(nx > 0 && ny > 0, "poisson2d requires positive grid dims");
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let four = T::from_f64(4.0);
    let neg = T::from_f64(-1.0);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if y > 0 {
                coo.push(i, idx(x, y - 1), neg).expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), neg).expect("in bounds");
            }
            coo.push(i, i, four).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), neg).expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), neg).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 3D Poisson operator: 7-point stencil on an `nx x ny x nz` grid.
///
/// # Panics
///
/// Panics if any grid dimension is zero.
pub fn poisson3d<T: Scalar>(nx: usize, ny: usize, nz: usize) -> CsrMatrix<T> {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "poisson3d requires positive grid dims"
    );
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let six = T::from_f64(6.0);
    let neg = T::from_f64(-1.0);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), neg).expect("in bounds");
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), neg).expect("in bounds");
                }
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), neg).expect("in bounds");
                }
                coo.push(i, i, six).expect("in bounds");
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), neg).expect("in bounds");
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), neg).expect("in bounds");
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), neg).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic 2D Laplacian: 5-point stencil with direction-dependent
/// conductivities `eps_x` / `eps_y`, so row `i` couples with weight
/// `-eps_x` horizontally and `-eps_y` vertically and the diagonal is
/// `2 * (eps_x + eps_y)`. Strong anisotropy (`eps_x >> eps_y` or vice
/// versa) stretches the spectrum and slows unpreconditioned Krylov
/// solvers — the canonical preconditioner stress case.
///
/// # Panics
///
/// Panics if a grid dimension is zero or a conductivity is not positive.
pub fn anisotropic_poisson2d<T: Scalar>(
    nx: usize,
    ny: usize,
    eps_x: f64,
    eps_y: f64,
) -> CsrMatrix<T> {
    assert!(
        nx > 0 && ny > 0,
        "anisotropic_poisson2d requires positive grid dims"
    );
    assert!(
        eps_x > 0.0 && eps_y > 0.0,
        "anisotropic_poisson2d requires positive conductivities"
    );
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let diag = T::from_f64(2.0 * (eps_x + eps_y));
    let wx = T::from_f64(-eps_x);
    let wy = T::from_f64(-eps_y);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if y > 0 {
                coo.push(i, idx(x, y - 1), wy).expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), wx).expect("in bounds");
            }
            coo.push(i, i, diag).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), wx).expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), wy).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 2D variable-coefficient Laplacian with a coefficient jump: cells in
/// the right half of the grid carry conductivity `jump`, the left half
/// `1`. Edge weights use the harmonic mean of the two adjacent cell
/// coefficients (the standard finite-volume discretization), keeping the
/// operator symmetric positive definite while the jump (e.g. `1e3`)
/// spreads the diagonal over orders of magnitude — exactly the case
/// where Jacobi scaling starts to matter and IC(0) shines.
///
/// # Panics
///
/// Panics if a grid dimension is zero or `jump` is not positive.
pub fn jump_poisson2d<T: Scalar>(nx: usize, ny: usize, jump: f64) -> CsrMatrix<T> {
    assert!(
        nx > 0 && ny > 0,
        "jump_poisson2d requires positive grid dims"
    );
    assert!(
        jump > 0.0,
        "jump_poisson2d requires a positive jump coefficient"
    );
    let n = nx * ny;
    let coef = |x: usize| if 2 * x >= nx { jump } else { 1.0 };
    let harmonic = |a: f64, b: f64| 2.0 * a * b / (a + b);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            let c = coef(x);
            // Vertical neighbors share the same column, so both cells
            // have coefficient `c`; horizontal edges mix across the jump.
            // Missing neighbors are Dirichlet boundary edges: they weight
            // the diagonal (with the cell's own coefficient) but produce
            // no off-diagonal entry, so the operator is nonsingular — the
            // same convention as [`poisson2d`]'s constant-4 diagonal.
            let west = if x > 0 { harmonic(coef(x - 1), c) } else { c };
            let east = if x + 1 < nx {
                harmonic(c, coef(x + 1))
            } else {
                c
            };
            let north = c;
            let south = c;
            let diag = west + east + north + south;
            if y > 0 {
                coo.push(i, idx(x, y - 1), T::from_f64(-north))
                    .expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), T::from_f64(-west))
                    .expect("in bounds");
            }
            coo.push(i, i, T::from_f64(diag)).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), T::from_f64(-east))
                    .expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), T::from_f64(-south))
                    .expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn poisson1d_is_spd_and_weakly_dominant() {
        let a = poisson1d::<f64>(10);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert!(r.weakly_diagonally_dominant);
        assert!(!r.strictly_diagonally_dominant); // interior rows are tight
        assert!(r.positive_diagonal);
    }

    #[test]
    fn poisson2d_dimensions_and_stencil() {
        let a = poisson2d::<f64>(3, 4);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.get(0, 0), 4.0);
        // corner row: 2 neighbors; interior row of 3x4 grid: 4 neighbors
        assert_eq!(a.row_nnz(0), 3);
        let interior = 3 + 1; // (x=1, y=1)
        assert_eq!(a.row_nnz(interior), 5);
        assert!(analysis::symmetric_via_csc(&a));
    }

    #[test]
    fn poisson3d_row_counts() {
        let a = poisson3d::<f32>(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        assert_eq!(a.row_nnz(13), 7); // center cell has all 6 neighbors
        assert_eq!(a.row_nnz(0), 4); // corner has 3 neighbors
        assert!(analysis::symmetric_via_csc(&a));
    }

    #[test]
    fn anisotropic_poisson_is_symmetric_weakly_dominant() {
        let a = anisotropic_poisson2d::<f64>(7, 5, 100.0, 1.0);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert!(r.weakly_diagonally_dominant);
        assert!(r.positive_diagonal);
        assert_eq!(a.get(0, 0), 2.0 * (100.0 + 1.0));
        assert_eq!(a.get(0, 1), -100.0);
        assert_eq!(a.get(0, 7), -1.0);
    }

    #[test]
    fn jump_poisson_is_symmetric_with_spread_diagonal() {
        let a = jump_poisson2d::<f64>(8, 8, 1e3);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert!(r.positive_diagonal);
        let diag = a.diagonal();
        let dmin = diag.iter().cloned().fold(f64::INFINITY, f64::min);
        let dmax = diag.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            dmax / dmin > 100.0,
            "jump should spread the diagonal: {dmin}..{dmax}"
        );
        // SPD via probe vectors (Dirichlet boundary edges pin the
        // constant nullspace).
        for probe in 0..4 {
            let x: Vec<f64> = (0..a.nrows())
                .map(|i| ((i * 11 + probe * 5) % 7) as f64 - 3.0)
                .collect();
            let ax = a.mul_vec(&x).unwrap();
            let quad: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            assert!(quad > 0.0);
        }
    }

    #[test]
    fn poisson_matrices_are_positive_definite_by_gershgorin_shift() {
        // Gershgorin gives [0, 8] for the 5-point stencil, so only weak
        // certification; verify PD numerically via x^T A x > 0 on probes.
        let a = poisson2d::<f64>(4, 4);
        for probe in 0..4 {
            let x: Vec<f64> = (0..a.nrows())
                .map(|i| ((i * 7 + probe * 3) % 5) as f64 - 2.0)
                .collect();
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            let ax = a.mul_vec(&x).unwrap();
            let quad: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            assert!(quad > 0.0, "probe {probe} gave x^T A x = {quad}");
        }
    }
}
