//! Finite-difference Poisson operators.
//!
//! Discretizing `-∇²u = f` on a regular grid (the paper's canonical PDE
//! example, Section II-A) yields the classic 3/5/7-point stencil matrices:
//! symmetric, positive definite, and weakly diagonally dominant.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// 1D Poisson operator: tridiagonal `[-1, 2, -1]`, `n x n`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use acamar_sparse::generate::poisson1d;
///
/// let a = poisson1d::<f64>(4);
/// assert_eq!(a.get(0, 0), 2.0);
/// assert_eq!(a.get(0, 1), -1.0);
/// assert_eq!(a.nnz(), 3 * 4 - 2);
/// ```
pub fn poisson1d<T: Scalar>(n: usize) -> CsrMatrix<T> {
    assert!(n > 0, "poisson1d requires n > 0");
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    let two = T::from_f64(2.0);
    let neg = T::from_f64(-1.0);
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, neg).expect("in bounds");
        }
        coo.push(i, i, two).expect("in bounds");
        if i + 1 < n {
            coo.push(i, i + 1, neg).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// 2D Poisson operator: 5-point stencil on an `nx x ny` grid,
/// `(nx*ny) x (nx*ny)`.
///
/// # Panics
///
/// Panics if `nx == 0` or `ny == 0`.
pub fn poisson2d<T: Scalar>(nx: usize, ny: usize) -> CsrMatrix<T> {
    assert!(nx > 0 && ny > 0, "poisson2d requires positive grid dims");
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let four = T::from_f64(4.0);
    let neg = T::from_f64(-1.0);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if y > 0 {
                coo.push(i, idx(x, y - 1), neg).expect("in bounds");
            }
            if x > 0 {
                coo.push(i, idx(x - 1, y), neg).expect("in bounds");
            }
            coo.push(i, i, four).expect("in bounds");
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), neg).expect("in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), neg).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 3D Poisson operator: 7-point stencil on an `nx x ny x nz` grid.
///
/// # Panics
///
/// Panics if any grid dimension is zero.
pub fn poisson3d<T: Scalar>(nx: usize, ny: usize, nz: usize) -> CsrMatrix<T> {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "poisson3d requires positive grid dims"
    );
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let six = T::from_f64(6.0);
    let neg = T::from_f64(-1.0);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), neg).expect("in bounds");
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), neg).expect("in bounds");
                }
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), neg).expect("in bounds");
                }
                coo.push(i, i, six).expect("in bounds");
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), neg).expect("in bounds");
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), neg).expect("in bounds");
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), neg).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn poisson1d_is_spd_and_weakly_dominant() {
        let a = poisson1d::<f64>(10);
        let r = analysis::analyze(&a);
        assert!(r.symmetric);
        assert!(r.weakly_diagonally_dominant);
        assert!(!r.strictly_diagonally_dominant); // interior rows are tight
        assert!(r.positive_diagonal);
    }

    #[test]
    fn poisson2d_dimensions_and_stencil() {
        let a = poisson2d::<f64>(3, 4);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.get(0, 0), 4.0);
        // corner row: 2 neighbors; interior row of 3x4 grid: 4 neighbors
        assert_eq!(a.row_nnz(0), 3);
        let interior = 3 + 1; // (x=1, y=1)
        assert_eq!(a.row_nnz(interior), 5);
        assert!(analysis::symmetric_via_csc(&a));
    }

    #[test]
    fn poisson3d_row_counts() {
        let a = poisson3d::<f32>(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        assert_eq!(a.row_nnz(13), 7); // center cell has all 6 neighbors
        assert_eq!(a.row_nnz(0), 4); // corner has 3 neighbors
        assert!(analysis::symmetric_via_csc(&a));
    }

    #[test]
    fn poisson_matrices_are_positive_definite_by_gershgorin_shift() {
        // Gershgorin gives [0, 8] for the 5-point stencil, so only weak
        // certification; verify PD numerically via x^T A x > 0 on probes.
        let a = poisson2d::<f64>(4, 4);
        for probe in 0..4 {
            let x: Vec<f64> = (0..a.nrows())
                .map(|i| ((i * 7 + probe * 3) % 5) as f64 - 2.0)
                .collect();
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            let ax = a.mul_vec(&x).unwrap();
            let quad: f64 = x.iter().zip(&ax).map(|(u, v)| u * v).sum();
            assert!(quad > 0.0, "probe {probe} gave x^T A x = {quad}");
        }
    }
}
