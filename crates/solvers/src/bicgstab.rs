//! Bi-Conjugate Gradient Stabilized (paper Algorithm 3).

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with BiCG-STAB.
///
/// Designed for non-symmetric systems (paper Eq. 4); also works on SPD
/// matrices. The method can *break down* when the shadow-residual inner
/// product `ρ = (r, r₀*)` or the stabilization weight `ω` vanishes; such
/// breakdowns are reported as [`Outcome::Diverged`] — the paper's Solver
/// Modifier treats them like any other divergence.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{bicgstab, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// // Non-symmetric convection–diffusion: CG is inapplicable here.
/// let a = generate::convection_diffusion_2d::<f64>(8, 8, 1.5);
/// let b = vec![1.0; 64];
/// let mut k = SoftwareKernels::new();
/// let rep = bicgstab(&a, &b, None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn bicgstab<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    // --- Initialize (Algorithm 3 lines 2-3) ---
    kernels.set_phase(Phase::Initialize);
    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r);
    kernels.scale(-T::ONE, &mut r);
    kernels.axpy(T::ONE, b, &mut r); // r0 = b - A x0
    let mut r0s = kernels.acquire_buffer(n);
    kernels.copy(&r, &mut r0s); // r0* = r0 (standard choice)
    let mut p = kernels.acquire_buffer(n);
    kernels.copy(&r, &mut p);
    let mut rho = kernels.dot(&r, &r0s);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut ap = kernels.acquire_buffer(n);
    let mut s = kernels.acquire_buffer(n);
    let mut as_ = kernels.acquire_buffer(n);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;
    // Breakdown threshold: relative to the machine epsilon of T and the
    // problem scale, so f32 runs detect breakdown at realistic magnitudes.
    let tiny = T::epsilon().to_f64() * T::epsilon().to_f64();

    // --- Loop (Algorithm 3 lines 4-12) ---
    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        let r_norm = kernels.norm2(&r).to_f64();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        let denom = kernels.spmv_dot(a, &p, &mut ap, &r0s);
        iterations += 1;
        if !denom.is_finite() || denom.to_f64().abs() <= tiny * scale * scale {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown("(Ap, r0*) vanished"));
        }
        let alpha = rho / denom;
        // s = r - alpha A p
        kernels.copy(&r, &mut s);
        kernels.axpy(-alpha, &ap, &mut s);
        kernels.spmv(a, &s, &mut as_);
        let as_as = kernels.dot(&as_, &as_);
        let as_s = kernels.dot(&as_, &s);
        if as_as == T::ZERO {
            // s = 0: the half-step already converged.
            kernels.axpy(alpha, &p, &mut x);
            monitor.observe(0.0);
            break Outcome::Converged;
        }
        let omega = as_s / as_as;
        // x += alpha p + omega s
        kernels.axpy(alpha, &p, &mut x);
        kernels.axpy(omega, &s, &mut x);
        // r = s - omega A s
        kernels.copy(&s, &mut r);
        let res = kernels.axpy_normsq(-omega, &as_, &mut r).sqrt().to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        let rho_new = kernels.dot(&r, &r0s);
        if !rho_new.is_finite() || rho_new.to_f64().abs() <= tiny * scale * scale {
            break Outcome::Diverged(DivergenceReason::Breakdown("rho = (r, r0*) vanished"));
        }
        if omega.to_f64().abs() <= tiny {
            break Outcome::Diverged(DivergenceReason::Breakdown("omega vanished"));
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p - omega A p)
        kernels.axpy(-omega, &ap, &mut p);
        kernels.xpby(&r, beta, &mut p);
    };

    kernels.release_buffer(r);
    kernels.release_buffer(r0s);
    kernels.release_buffer(p);
    kernels.release_buffer(ap);
    kernels.release_buffer(s);
    kernels.release_buffer(as_);
    Ok(SolveReport {
        solver: SolverKind::BiCgStab,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(2000)
    }

    #[test]
    fn converges_on_nonsymmetric_convection_diffusion() {
        let a = generate::convection_diffusion_2d::<f64>(12, 12, 2.0);
        let x_true: Vec<f64> = (0..144).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
        let err: f64 = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max err {err}");
    }

    #[test]
    fn converges_on_spd_too() {
        let a = generate::poisson2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
    }

    #[test]
    fn converges_on_dominant_nonsymmetric_where_cg_fails() {
        let a = generate::diagonally_dominant::<f64>(
            90,
            RowDistribution::Uniform { min: 2, max: 8 },
            1.5,
            17,
        );
        let b = vec![1.0; 90];
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        let mut k2 = SoftwareKernels::new();
        let cg_rep = crate::cg::conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(!cg_rep.converged(), "CG should fail on non-symmetric input");
    }

    #[test]
    fn fails_on_spread_indefinite_spectrum_in_f32() {
        // Indefinite spectrum spread over 4 decades: in f32, BiCG-STAB's
        // one-step stabilization stagnates above the paper's 1e-5
        // tolerance (Table II rows fe_rotor / sd2010 / cti).
        let a = generate::spread_spectrum_blocks::<f32>(300, 0.3, 1e4, true, 3);
        let b = vec![1.0_f32; 300];
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(!rep.converged(), "expected failure, got {:?}", rep.outcome);
        // Jacobi, in contrast, handles it (block spectral radius 0.6).
        let mut kj = SoftwareKernels::new();
        let jb = crate::jacobi::jacobi(&a, &b, None, &criteria(), &mut kj).unwrap();
        assert!(jb.converged());
    }

    #[test]
    fn stagnates_on_ill_conditioned_spd_in_f32_where_cg_converges() {
        // The beircuit class of Table II (JB x, CG ok, BiCG x): f32
        // attainable accuracy of BiCG-STAB is worse than CG's.
        let a = generate::spread_spectrum_blocks::<f32>(120, 0.7, 1e9, false, 3);
        let b = vec![1.0_f32; 120];
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(!rep.converged(), "BiCG-STAB: {:?}", rep.outcome);
        let mut kc = SoftwareKernels::new();
        let cg = crate::cg::conjugate_gradient(&a, &b, None, &criteria(), &mut kc).unwrap();
        assert!(cg.converged(), "CG: {:?}", cg.outcome);
    }

    #[test]
    fn exact_guess_converges_without_iterating() {
        let a = generate::convection_diffusion_2d::<f64>(6, 6, 1.0);
        let x_true = vec![1.5; 36];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn two_spmv_per_iteration() {
        let a = generate::convection_diffusion_2d::<f64>(8, 8, 1.0);
        let b = vec![1.0; 64];
        let mut k = SoftwareKernels::new();
        let rep = bicgstab(&a, &b, None, &criteria(), &mut k).unwrap();
        // one initialize SpMV + two per loop iteration
        assert_eq!(rep.counts.spmv_calls as usize, 1 + 2 * rep.iterations);
    }
}
