//! Scheduled Relaxation Jacobi (SRJ).
//!
//! The paper's related work cites Yang & Mittal's scheduled-relaxation
//! acceleration of Jacobi ("by factors exceeding 100"; reference [74]).
//! SRJ runs weighted Jacobi sweeps `x += ω_k D⁻¹ (b − A x)` with a
//! repeating cycle of relaxation factors chosen so the cycle's combined
//! amplification polynomial damps the whole spectrum of `D⁻¹A` — a
//! Chebyshev-style schedule. Since each sweep is exactly a Jacobi sweep,
//! the method maps onto Acamar's Jacobi datapath unchanged (the weights
//! live in the dense units), making it a natural extension solver.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Computes a `p`-cycle Chebyshev relaxation schedule for eigenvalues of
/// `D⁻¹A` in `[lambda_min, lambda_max]`:
/// `ω_k = 1 / (c + d·cos(π(2k−1)/(2p)))` with `c = (max+min)/2`,
/// `d = (max−min)/2`.
///
/// # Panics
///
/// Panics if `p == 0` or the interval is empty/non-positive.
///
/// # Examples
///
/// ```
/// use acamar_solvers::chebyshev_weights;
///
/// let w = chebyshev_weights(0.05, 1.95, 4);
/// assert_eq!(w.len(), 4);
/// assert!(w.iter().all(|&x| x > 0.0));
/// ```
pub fn chebyshev_weights(lambda_min: f64, lambda_max: f64, p: usize) -> Vec<f64> {
    assert!(p > 0, "cycle length must be positive");
    assert!(
        lambda_min > 0.0 && lambda_max > lambda_min,
        "need 0 < lambda_min < lambda_max"
    );
    let c = 0.5 * (lambda_max + lambda_min);
    let d = 0.5 * (lambda_max - lambda_min);
    (1..=p)
        .map(|k| {
            let theta = std::f64::consts::PI * (2 * k - 1) as f64 / (2 * p) as f64;
            1.0 / (c + d * theta.cos())
        })
        .collect()
}

/// Estimates the spectral interval of `D⁻¹A` by Gershgorin: returns
/// `(eps, 1 + max_i Σ_{j≠i}|a_ij|/|a_ii|)` with a small positive floor.
pub fn jacobi_spectrum_bounds<T: Scalar>(a: &CsrMatrix<T>) -> (f64, f64) {
    let mut max_ratio = 0.0f64;
    for (i, cols, vals) in a.iter_rows() {
        let mut diag = 0.0f64;
        let mut off = 0.0f64;
        for (&c, &v) in cols.iter().zip(vals) {
            if c == i {
                diag = v.to_f64().abs();
            } else {
                off += v.to_f64().abs();
            }
        }
        if diag > 0.0 {
            max_ratio = max_ratio.max(off / diag);
        }
    }
    let hi = 1.0 + max_ratio;
    let lo = (hi * 1e-3).max(1e-6);
    (lo, hi)
}

/// Solves `A x = b` with Scheduled Relaxation Jacobi using the given
/// relaxation `schedule` (cycled until convergence).
///
/// With a Chebyshev schedule ([`chebyshev_weights`]) matched to the
/// spectrum of `D⁻¹A`, convergence is substantially faster than plain
/// Jacobi on the stiff, weakly dominant systems (e.g. Poisson) where
/// Jacobi crawls.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Panics
///
/// Panics if `schedule` is empty.
pub fn scheduled_relaxation_jacobi<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    schedule: &[f64],
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    assert!(!schedule.is_empty(), "schedule must not be empty");
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let diag = a.diagonal();
    if diag.contains(&T::ZERO) {
        return Ok(SolveReport {
            solver: SolverKind::Jacobi,
            outcome: Outcome::Diverged(DivergenceReason::Breakdown("zero diagonal")),
            iterations: 0,
            residual_history: Vec::new(),
            solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
            counts: kernels.counts().since(&start_counts),
        });
    }
    let inv_d: Vec<T> = diag.iter().map(|&d| T::ONE / d).collect();
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut x = x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]);
    let mut ax = vec![T::ZERO; n];
    let mut r = vec![T::ZERO; n];
    let mut z = vec![T::ZERO; n];

    kernels.set_phase(Phase::Loop);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;
    let outcome = loop {
        kernels.begin_iteration(iterations);
        let omega = T::from_f64(schedule[iterations % schedule.len()]);
        kernels.spmv(a, &x, &mut ax);
        // r = b - A x
        kernels.copy(b, &mut r);
        kernels.axpy(-T::ONE, &ax, &mut r);
        // x += omega * D^{-1} r
        kernels.hadamard(&inv_d, &r, &mut z);
        kernels.axpy(omega, &z, &mut x);
        let res = kernels.norm2(&r).to_f64() / scale;
        iterations += 1;
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
    };

    Ok(SolveReport {
        solver: SolverKind::Jacobi,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate;

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(5000)
    }

    #[test]
    fn chebyshev_weights_bracket_one_over_spectrum() {
        let w = chebyshev_weights(0.1, 1.9, 4);
        // weights lie in [1/max, 1/min]
        for &x in &w {
            assert!((1.0 / 1.9 - 1e-12..=1.0 / 0.1 + 1e-12).contains(&x), "{x}");
        }
        // distinct and positive
        let mut s = w.clone();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "lambda_min")]
    fn weights_reject_bad_interval() {
        let _ = chebyshev_weights(1.0, 0.5, 2);
    }

    #[test]
    fn spectrum_bounds_for_poisson() {
        let a = generate::poisson2d::<f64>(8, 8);
        let (lo, hi) = jacobi_spectrum_bounds(&a);
        assert!(lo > 0.0);
        assert!((hi - 2.0).abs() < 1e-12, "interior rows: 4/4 ratio -> 2.0");
    }

    #[test]
    fn srj_beats_plain_jacobi_on_poisson() {
        // Plain Jacobi on 2D Poisson converges at rho = cos(pi/(N+1));
        // a Chebyshev schedule matched to the spectrum cuts iterations.
        let a = generate::poisson2d::<f64>(16, 16);
        let b = vec![1.0; 256];
        let (lo, hi) = jacobi_spectrum_bounds(&a);
        // true smallest eigenvalue of D^{-1}A here is 1 - cos(pi/17);
        // use it to show the attainable speedup with a good estimate.
        let lam_min = 1.0 - (std::f64::consts::PI / 17.0).cos();
        let _ = lo;
        let schedule = chebyshev_weights(lam_min, hi, 8);
        let mut k1 = SoftwareKernels::new();
        let srj =
            scheduled_relaxation_jacobi(&a, &b, None, &schedule, &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let jb = jacobi(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(srj.converged(), "{:?}", srj.outcome);
        assert!(jb.converged(), "{:?}", jb.outcome);
        assert!(
            (srj.iterations as f64) < 0.5 * jb.iterations as f64,
            "SRJ {} vs Jacobi {}",
            srj.iterations,
            jb.iterations
        );
        // solution correct
        let r = a.mul_vec(&srj.solution).unwrap();
        let res: f64 = r
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt()
            / 16.0;
        assert!(res < 1e-4, "residual {res}");
    }

    #[test]
    fn unit_schedule_is_plain_jacobi() {
        let a = generate::diagonally_dominant::<f64>(
            60,
            acamar_sparse::generate::RowDistribution::Uniform { min: 2, max: 5 },
            1.6,
            3,
        );
        let b = vec![1.0; 60];
        let mut k1 = SoftwareKernels::new();
        let srj = scheduled_relaxation_jacobi(&a, &b, None, &[1.0], &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let jb = jacobi(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(srj.converged() && jb.converged());
        // identical update rule => comparable iteration counts (residual
        // definitions differ by one diagonal scaling, allow slack)
        let diff = (srj.iterations as i64 - jb.iterations as i64).abs();
        assert!(diff <= 3, "SRJ {} vs JB {}", srj.iterations, jb.iterations);
    }

    #[test]
    fn zero_diagonal_is_breakdown() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = scheduled_relaxation_jacobi(&a, &[1.0, 1.0], None, &[1.0], &criteria(), &mut k)
            .unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }
}
