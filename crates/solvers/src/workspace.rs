//! Reusable solver scratch buffers.
//!
//! Every iterative solver in this crate needs a handful of length-`n`
//! work vectors (`r`, `p`, `Ap`, …). Allocating them per solve is cheap
//! once but expensive a million times: batch workloads re-solve the same
//! pattern thousands of times, and the allocator becomes a serial
//! bottleneck the paper's fabric never sees. A [`SolverWorkspace`] keeps
//! returned buffers on a per-length free list so a *warm* solve performs
//! zero heap allocations in the solver loop; the batch engine pools one
//! workspace per worker thread.
//!
//! Buffers are zero-filled on loan, so a solve that borrows from the
//! workspace is bitwise identical to one that allocates fresh.

use acamar_sparse::Scalar;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// An arena of reusable `Vec<T>` scratch buffers keyed by length.
///
/// The arena is type-erased internally (one free list per scalar type) so
/// a single workspace can serve `f32` and `f64` solves interleaved.
#[derive(Default)]
pub struct SolverWorkspace {
    pools: HashMap<TypeId, Box<dyn Any + Send>>,
    reuses: u64,
    fresh: u64,
}

struct TypedPool<T> {
    free: HashMap<usize, Vec<Vec<T>>>,
}

impl SolverWorkspace {
    /// An empty workspace.
    pub fn new() -> SolverWorkspace {
        SolverWorkspace::default()
    }

    /// Borrows a zero-filled buffer of length `n`, recycling a returned
    /// one when available.
    pub fn take<T: Scalar>(&mut self, n: usize) -> Vec<T> {
        let recycled = self
            .pools
            .get_mut(&TypeId::of::<T>())
            .and_then(|p| p.downcast_mut::<TypedPool<T>>())
            .and_then(|p| p.free.get_mut(&n))
            .and_then(Vec::pop);
        match recycled {
            Some(mut buf) => {
                self.reuses += 1;
                buf.fill(T::ZERO);
                buf
            }
            None => {
                self.fresh += 1;
                vec![T::ZERO; n]
            }
        }
    }

    /// Returns a buffer to the free list for later reuse.
    pub fn give<T: Scalar>(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let n = buf.len();
        let pool = self.pools.entry(TypeId::of::<T>()).or_insert_with(|| {
            Box::new(TypedPool::<T> {
                free: HashMap::new(),
            })
        });
        if let Some(p) = pool.downcast_mut::<TypedPool<T>>() {
            p.free.entry(n).or_default().push(buf);
        }
    }

    /// Buffers served from the free list so far.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers that had to be freshly allocated (pool misses).
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }
}

impl fmt::Debug for SolverWorkspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverWorkspace")
            .field("reuses", &self.reuses)
            .field("fresh", &self.fresh)
            .finish_non_exhaustive()
    }
}

/// Shared, clonable handle to a [`SolverWorkspace`].
///
/// Kernel executors hold one of these (see
/// [`Kernels::acquire_buffer`](crate::Kernels::acquire_buffer)); the
/// batch engine gives each worker thread its own handle so buffer reuse
/// never contends across workers. The mutex is held only for the
/// duration of a single take/give — a few times per solve, never per
/// iteration.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceHandle {
    inner: Arc<Mutex<SolverWorkspace>>,
}

impl WorkspaceHandle {
    /// A handle to a fresh, empty workspace.
    pub fn new() -> WorkspaceHandle {
        WorkspaceHandle::default()
    }

    /// Borrows a zero-filled buffer of length `n`.
    pub fn take<T: Scalar>(&self, n: usize) -> Vec<T> {
        self.lock().take(n)
    }

    /// Returns a buffer for reuse.
    pub fn give<T: Scalar>(&self, buf: Vec<T>) {
        self.lock().give(buf);
    }

    /// `(reuses, fresh_allocations)` counters of the underlying arena.
    pub fn stats(&self) -> (u64, u64) {
        let ws = self.lock();
        (ws.reuses(), ws.fresh_allocations())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SolverWorkspace> {
        // A poisoned workspace is still structurally valid (worst case a
        // loaned buffer was lost to the panicking solve), so recover
        // rather than cascading the panic into healthy jobs.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_by_length() {
        let mut ws = SolverWorkspace::new();
        let a: Vec<f64> = ws.take(8);
        assert_eq!(a, vec![0.0; 8]);
        let ptr = a.as_ptr();
        ws.give(a);
        let b: Vec<f64> = ws.take(8);
        assert_eq!(b.as_ptr(), ptr, "same-length buffer is recycled");
        assert_eq!(b, vec![0.0; 8]);
        assert_eq!((ws.reuses(), ws.fresh_allocations()), (1, 1));
        // A different length misses the free list.
        let c: Vec<f64> = ws.take(4);
        assert_eq!(c.len(), 4);
        assert_eq!(ws.fresh_allocations(), 2);
    }

    #[test]
    fn returned_buffers_are_rezeroed() {
        let mut ws = SolverWorkspace::new();
        let mut a: Vec<f32> = ws.take(3);
        a.fill(7.5);
        ws.give(a);
        assert_eq!(ws.take::<f32>(3), vec![0.0; 3]);
    }

    #[test]
    fn scalar_types_do_not_mix() {
        let mut ws = SolverWorkspace::new();
        let a: Vec<f64> = ws.take(5);
        ws.give(a);
        // Same length, different type: must be a fresh allocation.
        let _b: Vec<f32> = ws.take(5);
        assert_eq!(ws.fresh_allocations(), 2);
        assert_eq!(ws.reuses(), 0);
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let h = WorkspaceHandle::new();
        let h2 = h.clone();
        h.give(vec![1.0_f64; 6]);
        assert_eq!(h2.take::<f64>(6), vec![0.0; 6]);
        assert_eq!(h2.stats(), (1, 0));
    }
}
