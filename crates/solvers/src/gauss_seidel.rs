//! Gauss-Seidel and Successive Over-Relaxation (SOR).
//!
//! The "relatively simple yet effective" stationary methods the paper
//! lists alongside Jacobi (Section II-B, Table I), implemented in the
//! style of Kasbah et al.'s reconfigurable-hardware SOR (PAPERS.md): the
//! sweep runs as a [`Kernels::sor_sweep`] executor primitive — so the
//! fabric twin models its cycles — and all scratch comes from the
//! executor's buffer pool, making warm solves allocation-free. SOR is a
//! first-class [`SolverKind`] choice wired into the intake decision and
//! the rescue ladder (behind
//! `AcamarConfig::with_extended_solvers` in `acamar-core`).
//!
//! The sweep itself is a strict serial dependence chain (each `x[i]`
//! reads the values updated earlier in the same sweep), so it executes
//! identical arithmetic on both determinism tiers; the tiers differ only
//! in the residual-norm reductions between sweeps.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with Gauss-Seidel (SOR with `omega = 1`).
///
/// Converges for strictly diagonally dominant or SPD matrices.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
pub fn gauss_seidel<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    sor(a, b, x0, T::ONE, criteria, kernels).map(|mut r| {
        r.solver = SolverKind::GaussSeidel;
        r
    })
}

/// Solves `A x = b` with Successive Over-Relaxation.
///
/// `omega` in `(0, 2)` is the relaxation factor; `omega = 1` reduces to
/// Gauss-Seidel.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Panics
///
/// Panics if `omega` is not in `(0, 2)`.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{sor, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::poisson1d::<f64>(30);
/// let b = vec![1.0; 30];
/// let mut k = SoftwareKernels::new();
/// let rep = sor(&a, &b, None, 1.5, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn sor<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    omega: T,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let w = omega.to_f64();
    assert!(w > 0.0 && w < 2.0, "omega must lie in (0, 2), got {w}");
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    // Gather the diagonal into pooled scratch (no allocation on warm
    // solves), rejecting structurally-missing or zero pivots.
    let mut diag = kernels.acquire_buffer(n);
    let mut zero_diag = false;
    for (i, slot) in diag.iter_mut().enumerate() {
        let (cols, vals) = a.row(i);
        let mut d = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            if c == i {
                d = v;
            }
        }
        if d == T::ZERO {
            zero_diag = true;
        }
        *slot = d;
    }
    if zero_diag {
        kernels.release_buffer(diag);
        return Ok(SolveReport {
            solver: SolverKind::Sor,
            outcome: Outcome::Diverged(DivergenceReason::Breakdown("zero diagonal")),
            iterations: 0,
            residual_history: Vec::new(),
            solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
            counts: kernels.counts().since(&start_counts),
        });
    }

    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        kernels.begin_iteration(iterations);
        kernels.sor_sweep(a, &diag, omega, b, &mut x);
        iterations += 1;

        // True residual r = b - A x (an extra SpMV-equivalent pass, as in
        // the other stationary solvers' monitoring).
        kernels.spmv(a, &x, &mut r);
        kernels.scale(-T::ONE, &mut r);
        kernels.axpy(T::ONE, b, &mut r);
        let res = kernels.norm2(&r).to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
    };

    kernels.release_buffer(diag);
    kernels.release_buffer(r);
    Ok(SolveReport {
        solver: SolverKind::Sor,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use crate::workspace::WorkspaceHandle;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn gauss_seidel_converges_on_dominant_matrix() {
        let a = generate::diagonally_dominant::<f64>(
            60,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            31,
        );
        let b = vec![1.0; 60];
        let mut k = SoftwareKernels::new();
        let rep = gauss_seidel(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.solver, SolverKind::GaussSeidel);
    }

    #[test]
    fn gauss_seidel_beats_jacobi_on_poisson() {
        let a = generate::poisson1d::<f64>(40);
        let b = vec![1.0; 40];
        let mut kg = SoftwareKernels::new();
        let gs = gauss_seidel(&a, &b, None, &criteria(), &mut kg).unwrap();
        let mut k = SoftwareKernels::new();
        let jb = crate::jacobi::jacobi(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(gs.converged());
        if jb.converged() {
            assert!(
                gs.iterations <= jb.iterations,
                "GS {} vs JB {}",
                gs.iterations,
                jb.iterations
            );
        }
    }

    #[test]
    fn sor_with_good_omega_beats_gauss_seidel() {
        let a = generate::poisson1d::<f64>(40);
        let b = vec![1.0; 40];
        let mut kg = SoftwareKernels::new();
        let gs = gauss_seidel(&a, &b, None, &criteria(), &mut kg).unwrap();
        let mut ks = SoftwareKernels::new();
        let s = sor(&a, &b, None, 1.8, &criteria(), &mut ks).unwrap();
        assert!(s.converged());
        assert!(
            s.iterations < gs.iterations,
            "SOR {} vs GS {}",
            s.iterations,
            gs.iterations
        );
    }

    #[test]
    fn sor_charges_sweep_and_residual_passes() {
        let a = generate::poisson1d::<f64>(20);
        let b = vec![1.0; 20];
        let mut k = SoftwareKernels::new();
        let rep = sor(&a, &b, None, 1.5, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        // One sweep + one residual SpMV per iteration.
        assert_eq!(rep.counts.spmv_calls, 2 * rep.iterations as u64);
        assert!(rep.counts.dense_calls > 0);
    }

    #[test]
    fn warm_sor_is_allocation_free_via_workspace() {
        let a = generate::poisson1d::<f64>(32);
        let b = vec![1.0; 32];
        let ws = WorkspaceHandle::new();
        // Cold solve populates the pool (x is handed out via the report,
        // so it is re-allocated each solve; diag and r recycle).
        let mut k = SoftwareKernels::new().with_workspace(ws.clone());
        let first = sor(&a, &b, None, 1.5, &criteria(), &mut k).unwrap();
        assert!(first.converged());
        let (reuses_first, _) = ws.stats();
        let second = sor(&a, &b, None, 1.5, &criteria(), &mut k).unwrap();
        assert!(second.converged());
        let (reuses_second, _) = ws.stats();
        assert!(
            reuses_second > reuses_first,
            "warm solve should reuse pooled buffers: {reuses_first} -> {reuses_second}"
        );
    }

    #[test]
    #[should_panic(expected = "omega must lie in (0, 2)")]
    fn sor_rejects_bad_omega() {
        let a = generate::poisson1d::<f64>(4);
        let mut k = SoftwareKernels::new();
        let _ = sor(&a, &[1.0; 4], None, 2.5, &criteria(), &mut k);
    }

    #[test]
    fn zero_diagonal_reports_breakdown() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = gauss_seidel(&a, &[1.0, 1.0], None, &criteria(), &mut k).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }
}
