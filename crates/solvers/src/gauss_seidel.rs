//! Gauss-Seidel and Successive Over-Relaxation (SOR).
//!
//! These are the "relatively simple yet effective" stationary methods the
//! paper lists alongside Jacobi (Section II-B, Table I). They are
//! software-only reference solvers here: Acamar's hardware reconfigures
//! among JB/CG/BiCG-STAB, but the convergence-criteria table (Table I)
//! covers these too, and they serve as extra baselines.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::OpCounts;
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with Gauss-Seidel (SOR with `omega = 1`).
///
/// Converges for strictly diagonally dominant or SPD matrices.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
pub fn gauss_seidel<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
) -> Result<SolveReport<T>, SparseError> {
    sor(a, b, x0, T::ONE, criteria).map(|mut r| {
        r.solver = SolverKind::GaussSeidel;
        r
    })
}

/// Solves `A x = b` with Successive Over-Relaxation.
///
/// `omega` in `(0, 2)` is the relaxation factor; `omega = 1` reduces to
/// Gauss-Seidel.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Panics
///
/// Panics if `omega` is not in `(0, 2)`.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{sor, ConvergenceCriteria};
/// use acamar_sparse::generate;
///
/// let a = generate::poisson1d::<f64>(30);
/// let b = vec![1.0; 30];
/// let rep = sor(&a, &b, None, 1.5, &ConvergenceCriteria::paper())?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn sor<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    omega: T,
    criteria: &ConvergenceCriteria,
) -> Result<SolveReport<T>, SparseError> {
    let w = omega.to_f64();
    assert!(w > 0.0 && w < 2.0, "omega must lie in (0, 2), got {w}");
    let n = check_square_system(a, b)?;
    let mut counts = OpCounts::default();

    let diag = a.diagonal();
    if diag.contains(&T::ZERO) {
        return Ok(SolveReport {
            solver: SolverKind::Sor,
            outcome: Outcome::Diverged(DivergenceReason::Breakdown("zero diagonal")),
            iterations: 0,
            residual_history: Vec::new(),
            solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
            counts,
        });
    }

    let b_norm = b
        .iter()
        .fold(T::ZERO, |acc, &v| acc + v * v)
        .sqrt()
        .to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };
    counts.dense_calls += 1;
    counts.dense_flops += 2 * n as u64;

    let mut x = x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    let outcome = loop {
        // One forward sweep; the sweep touches every stored entry once,
        // which we account as one SpMV-equivalent pass.
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut sigma = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                if c != i {
                    sigma += v * x[c];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] = x[i] + omega * (gs - x[i]);
        }
        counts.spmv_calls += 1;
        counts.spmv_nnz_processed += a.nnz() as u64;
        counts.spmv_flops += 2 * a.nnz() as u64;
        counts.dense_flops += 4 * n as u64;

        // True residual (extra SpMV-equivalent pass, counted as dense for
        // monitoring purposes only).
        let mut res2 = 0.0f64;
        for (i, cols, vals) in a.iter_rows() {
            let mut ax = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                ax += v * x[c];
            }
            let d = (b[i] - ax).to_f64();
            res2 += d * d;
        }
        let res = res2.sqrt() / scale;
        iterations += 1;
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
    };

    Ok(SolveReport {
        solver: SolverKind::Sor,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn gauss_seidel_converges_on_dominant_matrix() {
        let a = generate::diagonally_dominant::<f64>(
            60,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            31,
        );
        let b = vec![1.0; 60];
        let rep = gauss_seidel(&a, &b, None, &criteria()).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.solver, SolverKind::GaussSeidel);
    }

    #[test]
    fn gauss_seidel_beats_jacobi_on_poisson() {
        let a = generate::poisson1d::<f64>(40);
        let b = vec![1.0; 40];
        let gs = gauss_seidel(&a, &b, None, &criteria()).unwrap();
        let mut k = crate::kernels::SoftwareKernels::new();
        let jb = crate::jacobi::jacobi(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(gs.converged());
        if jb.converged() {
            assert!(
                gs.iterations <= jb.iterations,
                "GS {} vs JB {}",
                gs.iterations,
                jb.iterations
            );
        }
    }

    #[test]
    fn sor_with_good_omega_beats_gauss_seidel() {
        let a = generate::poisson1d::<f64>(40);
        let b = vec![1.0; 40];
        let gs = gauss_seidel(&a, &b, None, &criteria()).unwrap();
        let s = sor(&a, &b, None, 1.8, &criteria()).unwrap();
        assert!(s.converged());
        assert!(
            s.iterations < gs.iterations,
            "SOR {} vs GS {}",
            s.iterations,
            gs.iterations
        );
    }

    #[test]
    #[should_panic(expected = "omega must lie in (0, 2)")]
    fn sor_rejects_bad_omega() {
        let a = generate::poisson1d::<f64>(4);
        let _ = sor(&a, &[1.0; 4], None, 2.5, &criteria());
    }

    #[test]
    fn zero_diagonal_reports_breakdown() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let rep = gauss_seidel(&a, &[1.0, 1.0], None, &criteria()).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }
}
