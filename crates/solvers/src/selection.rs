//! Solver kinds, convergence criteria (paper Table I), and the
//! structure-based recommendation logic of the Matrix Structure unit.

use acamar_sparse::StructureReport;
use std::fmt;

/// The iterative solvers this workspace can execute.
///
/// `Jacobi`, `ConjugateGradient`, and `BiCgStab` are the three solvers
/// Acamar reconfigures among (paper Section II-B); the others are software
/// reference solvers completing Table I coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SolverKind {
    /// Jacobi iterative method (Algorithm 1).
    Jacobi,
    /// Conjugate Gradient (Algorithm 2).
    ConjugateGradient,
    /// Bi-Conjugate Gradient Stabilized (Algorithm 3).
    BiCgStab,
    /// Diagonally-preconditioned CG (software reference, Table I row
    /// "Preconditioned CG").
    PreconditionedCg,
    /// Plain Bi-Conjugate Gradient (software reference, Table I row
    /// "BiCG").
    BiCg,
    /// Conjugate Residual (software reference, Table I row
    /// "Conjugate Residual").
    ConjugateResidual,
    /// Gauss-Seidel (software reference).
    GaussSeidel,
    /// Successive Over-Relaxation (software reference).
    Sor,
    /// Restarted GMRES (software reference / fallback of last resort).
    Gmres,
}

impl SolverKind {
    /// The three solvers available to Acamar's Reconfigurable Solver unit.
    pub const ACAMAR: [SolverKind; 3] = [
        SolverKind::Jacobi,
        SolverKind::ConjugateGradient,
        SolverKind::BiCgStab,
    ];

    /// Every solver kind, in declaration order ([`SolverKind::index`]
    /// indexes into this — used for attempt histograms).
    pub const ALL: [SolverKind; Self::COUNT] = [
        SolverKind::Jacobi,
        SolverKind::ConjugateGradient,
        SolverKind::BiCgStab,
        SolverKind::PreconditionedCg,
        SolverKind::BiCg,
        SolverKind::ConjugateResidual,
        SolverKind::GaussSeidel,
        SolverKind::Sor,
        SolverKind::Gmres,
    ];

    /// Number of solver kinds (length of [`SolverKind::ALL`]).
    pub const COUNT: usize = 9;

    /// Dense index of this kind in [`SolverKind::ALL`] — a stable key for
    /// per-solver counters and histograms.
    pub fn index(self) -> usize {
        match self {
            SolverKind::Jacobi => 0,
            SolverKind::ConjugateGradient => 1,
            SolverKind::BiCgStab => 2,
            SolverKind::PreconditionedCg => 3,
            SolverKind::BiCg => 4,
            SolverKind::ConjugateResidual => 5,
            SolverKind::GaussSeidel => 6,
            SolverKind::Sor => 7,
            SolverKind::Gmres => 8,
        }
    }

    /// Short display label (used in experiment tables).
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Jacobi => "JB",
            SolverKind::ConjugateGradient => "CG",
            SolverKind::BiCgStab => "BiCG-STAB",
            SolverKind::PreconditionedCg => "PCG",
            SolverKind::BiCg => "BiCG",
            SolverKind::ConjugateResidual => "CR",
            SolverKind::GaussSeidel => "GS",
            SolverKind::Sor => "SOR",
            SolverKind::Gmres => "GMRES",
        }
    }

    /// The convergence criterion the paper's Table I lists for this solver.
    pub fn criterion(self) -> Criterion {
        match self {
            SolverKind::Jacobi | SolverKind::GaussSeidel => Criterion::StrictlyDiagonallyDominant,
            SolverKind::ConjugateGradient | SolverKind::PreconditionedCg | SolverKind::Sor => {
                Criterion::SymmetricPositiveDefinite
            }
            SolverKind::BiCgStab | SolverKind::BiCg => Criterion::NonSymmetric,
            SolverKind::ConjugateResidual => Criterion::SymmetricPositiveDefinite,
            SolverKind::Gmres => Criterion::Any,
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Structural requirement on the coefficient matrix for convergence
/// (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// `∀i, Σ_{j≠i} |A_ij| < |A_ii|` (paper Eq. 1).
    StrictlyDiagonallyDominant,
    /// `Aᵀ = A` with all eigenvalues positive (paper Eq. 2–3).
    SymmetricPositiveDefinite,
    /// `Aᵀ ≠ A` (paper Eq. 4).
    NonSymmetric,
    /// Symmetric or non-symmetric, positive definite (GMRES row of Table I).
    Any,
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Criterion::StrictlyDiagonallyDominant => "strictly diagonally dominant",
            Criterion::SymmetricPositiveDefinite => "symmetric, positive definite",
            Criterion::NonSymmetric => "non-symmetric",
            Criterion::Any => "symmetric and non-symmetric",
        };
        f.write_str(s)
    }
}

/// The full paper Table I as static data: `(solver, criterion)` rows,
/// including solvers this workspace does not execute.
pub fn paper_table1() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Jacobi", "Strictly Diagonally Dominant"),
        ("Gauss-Seidel", "Strictly Diagonally Dominant"),
        ("Successive Over Relaxation", "Symmetric, Positive Definite"),
        ("CG", "Symmetric, Positive Definite"),
        ("Preconditioned CG", "Negative Definite"),
        ("Conjugate Residual", "Hermitian"),
        ("BiCG", "Non-symmetric"),
        ("BiCG-Stabilized", "Non-symmetric"),
        ("Two Sided Lanczos", "Non-symmetric"),
        (
            "General Method of Residual",
            "Symmetric and Non-symmetric, Positive Definite",
        ),
        (
            "Concus, Golub and Widlund",
            "Nearly symmetric, Positive Definite",
        ),
    ]
}

/// Checks whether `report` satisfies the *checkable* part of `criterion`.
///
/// Like the paper's Matrix Structure unit, positive definiteness is not
/// verified (eigenvalue computation is too expensive in hardware); for
/// [`Criterion::SymmetricPositiveDefinite`] only symmetry is tested
/// (Section IV-B: "for CG, Acamar only checks the symmetry property").
pub fn satisfies(report: &StructureReport, criterion: Criterion) -> bool {
    match criterion {
        Criterion::StrictlyDiagonallyDominant => report.strictly_diagonally_dominant,
        Criterion::SymmetricPositiveDefinite => report.symmetric,
        Criterion::NonSymmetric => !report.symmetric,
        Criterion::Any => true,
    }
}

/// Recommends a solver from the structural report, mirroring the paper's
/// Matrix Structure unit decision:
///
/// 1. strictly diagonally dominant → Jacobi;
/// 2. else symmetric → CG (symmetry is the only PD proxy checked);
/// 3. else → BiCG-STAB.
pub fn recommend(report: &StructureReport) -> SolverKind {
    if report.strictly_diagonally_dominant && !report.mixed_sign_diagonal {
        SolverKind::Jacobi
    } else if report.strictly_diagonally_dominant {
        // Mixed-sign dominant diagonals still satisfy the Jacobi criterion.
        SolverKind::Jacobi
    } else if report.symmetric {
        SolverKind::ConjugateGradient
    } else {
        SolverKind::BiCgStab
    }
}

/// The order in which the Solver Modifier tries alternatives after `first`
/// diverges: the remaining Acamar solvers, most-general last (Section
/// IV-B, Solver Modifier unit: "assigning the solver whose corresponding
/// bit is low").
pub fn fallback_order(first: SolverKind) -> Vec<SolverKind> {
    let mut order = vec![first];
    // Preference among the remaining solvers: BiCG-STAB before CG before
    // Jacobi (most to least generally applicable), preserving the paper's
    // bit-scan behavior of trying every untried solver exactly once.
    for kind in [
        SolverKind::BiCgStab,
        SolverKind::ConjugateGradient,
        SolverKind::Jacobi,
    ] {
        if kind != first {
            order.push(kind);
        }
    }
    order
}

/// Intake recommendation over the *extended* solver set (paper Table I
/// beyond the three reconfiguration targets): symmetric **and** strictly
/// diagonally dominant systems — where the SOR iteration matrix is
/// provably contractive and over-relaxation beats both Jacobi and plain
/// Gauss-Seidel — pick [`SolverKind::Sor`]; everything else falls through
/// to [`recommend`]. Engaged by `AcamarConfig::with_extended_solvers`.
pub fn recommend_extended(report: &StructureReport) -> SolverKind {
    if report.strictly_diagonally_dominant && report.symmetric && report.positive_diagonal {
        SolverKind::Sor
    } else {
        recommend(report)
    }
}

/// [`fallback_order`] over the extended solver set: the Acamar trio
/// first (unchanged relative order), then [`SolverKind::Sor`] as the
/// final stationary-method fallback. Used by the rescue ladder's
/// NextSolver rung so a fourth genuinely different iteration is
/// available before escalating to preconditioning/GMRES.
pub fn extended_fallback_order(first: SolverKind) -> Vec<SolverKind> {
    let mut order = fallback_order(first);
    if !order.contains(&SolverKind::Sor) {
        order.push(SolverKind::Sor);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::{analysis, generate, generate::RowDistribution};

    #[test]
    fn extended_recommendation_picks_sor_for_symmetric_dominant() {
        // Shifted Poisson: symmetric, positive diagonal, and strictly
        // dominant once the identity shift is added.
        let mut a = generate::poisson2d::<f64>(6, 6);
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        for i in 0..36 {
            for (k, &c) in col_idx
                .iter()
                .enumerate()
                .take(row_ptr[i + 1])
                .skip(row_ptr[i])
            {
                if c == i {
                    a.values_mut()[k] += 1.0;
                }
            }
        }
        let report = analysis::analyze(&a);
        assert!(report.symmetric && report.strictly_diagonally_dominant);
        assert_eq!(recommend_extended(&report), SolverKind::Sor);
        // The base recommendation is unchanged by the extension.
        assert_eq!(recommend(&report), SolverKind::Jacobi);

        // Plain (weakly dominant) Poisson still routes to CG.
        let p = generate::poisson2d::<f64>(6, 6);
        let report = analysis::analyze(&p);
        assert_eq!(recommend_extended(&report), recommend(&report));
    }

    #[test]
    fn extended_fallback_appends_sor_once() {
        for first in SolverKind::ACAMAR {
            let order = extended_fallback_order(first);
            assert_eq!(order.len(), 4);
            assert_eq!(order.last(), Some(&SolverKind::Sor));
            let base = fallback_order(first);
            assert_eq!(&order[..3], &base[..]);
        }
        // SOR as the primary does not duplicate itself.
        let order = extended_fallback_order(SolverKind::Sor);
        assert_eq!(order.iter().filter(|&&k| k == SolverKind::Sor).count(), 1);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(SolverKind::Jacobi.to_string(), "JB");
        assert_eq!(SolverKind::BiCgStab.label(), "BiCG-STAB");
        assert_eq!(
            Criterion::StrictlyDiagonallyDominant.to_string(),
            "strictly diagonally dominant"
        );
    }

    #[test]
    fn table1_has_eleven_rows() {
        let t = paper_table1();
        assert_eq!(t.len(), 11);
        assert!(t.iter().any(|(s, _)| *s == "BiCG-Stabilized"));
    }

    #[test]
    fn recommend_dominant_matrix_gets_jacobi() {
        let a = generate::diagonally_dominant::<f64>(
            40,
            RowDistribution::Uniform { min: 2, max: 5 },
            1.5,
            1,
        );
        let r = analysis::analyze(&a);
        assert_eq!(recommend(&r), SolverKind::Jacobi);
    }

    #[test]
    fn recommend_symmetric_gets_cg() {
        let a = generate::jacobi_divergent_spd::<f64>(30, 0.7, 0, 0.0, 2);
        let r = analysis::analyze(&a);
        assert_eq!(recommend(&r), SolverKind::ConjugateGradient);
    }

    #[test]
    fn recommend_nonsymmetric_gets_bicgstab() {
        let a = generate::convection_diffusion_2d::<f64>(8, 8, 2.0);
        let r = analysis::analyze(&a);
        // weakly (not strictly) dominant and non-symmetric
        assert_eq!(recommend(&r), SolverKind::BiCgStab);
    }

    #[test]
    fn satisfies_checks_the_checkable_part() {
        let a = generate::jacobi_divergent_spd::<f64>(30, 0.7, 0, 0.0, 2);
        let r = analysis::analyze(&a);
        assert!(satisfies(&r, Criterion::SymmetricPositiveDefinite));
        assert!(!satisfies(&r, Criterion::StrictlyDiagonallyDominant));
        assert!(!satisfies(&r, Criterion::NonSymmetric));
        assert!(satisfies(&r, Criterion::Any));
    }

    #[test]
    fn fallback_order_tries_each_solver_once() {
        for first in SolverKind::ACAMAR {
            let order = fallback_order(first);
            assert_eq!(order.len(), 3);
            assert_eq!(order[0], first);
            let mut sorted = order.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {order:?}");
        }
    }

    #[test]
    fn criterion_mapping_matches_paper() {
        assert_eq!(
            SolverKind::Jacobi.criterion(),
            Criterion::StrictlyDiagonallyDominant
        );
        assert_eq!(
            SolverKind::ConjugateGradient.criterion(),
            Criterion::SymmetricPositiveDefinite
        );
        assert_eq!(SolverKind::BiCgStab.criterion(), Criterion::NonSymmetric);
    }
}
