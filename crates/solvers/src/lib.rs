//! # acamar-solvers
//!
//! Iterative solvers for `Ax = b` with kernel-level operation accounting —
//! the algorithmic substrate of the Acamar (MICRO 2024) reproduction.
//!
//! The three solvers Acamar reconfigures among — Jacobi ([`jacobi`]),
//! Conjugate Gradient ([`conjugate_gradient`]), and BiCG-STAB
//! ([`bicgstab`]) — follow the paper's Algorithms 1–3 exactly, with the
//! paper's convergence policy (tolerance `1e-5`, 200-iteration setup time
//! before divergence checks; [`ConvergenceCriteria::paper`]). Gauss-Seidel,
//! SOR, and GMRES complete the coverage of the paper's Table I.
//!
//! Every solver is generic over a [`Kernels`] executor: [`SoftwareKernels`]
//! runs them in pure software; the `acamar-fabric` crate supplies an
//! executor that additionally models FPGA cycles and reconfiguration.
//!
//! ```
//! use acamar_solvers::{solve_with, recommend, ConvergenceCriteria, SoftwareKernels};
//! use acamar_sparse::{analysis, generate};
//!
//! let a = generate::poisson2d::<f64>(8, 8);
//! let b = vec![1.0; 64];
//!
//! // What the Matrix Structure unit would pick:
//! let kind = recommend(&analysis::analyze(&a));
//!
//! let mut kernels = SoftwareKernels::new();
//! let report = solve_with(kind, &a, &b, None, &ConvergenceCriteria::paper(), &mut kernels)?;
//! assert!(report.converged());
//! # Ok::<(), acamar_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bicg;
mod bicgstab;
mod cg;
mod convergence;
mod diagnostics;
mod gauss_seidel;
mod gmres;
mod ic0;
mod ilu;
mod jacobi;
mod kernels;
mod pcg;
mod report;
mod selection;
mod srj;
mod workspace;

pub use bicg::{bicg, conjugate_residual};
pub use bicgstab::bicgstab;
pub use cg::conjugate_gradient;
pub use convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
pub use diagnostics::{ConvergenceSummary, Trend};
pub use gauss_seidel::{gauss_seidel, sor};
pub use gmres::gmres;
pub use ic0::Ic0;
pub use ilu::{ilu_pcg, Ilu0};
pub use jacobi::jacobi;
pub use kernels::{
    sor_sweep_reference, Kernels, OpCounts, Phase, SoftwareKernels, PARALLEL_SPMV_MIN_NNZ,
};
pub use pcg::{ic0_preconditioned_cg, preconditioned_cg, preconditioned_cg_with, Preconditioner};
pub use report::SolveReport;
pub use selection::{
    extended_fallback_order, fallback_order, paper_table1, recommend, recommend_extended,
    satisfies, Criterion, SolverKind,
};
pub use srj::{chebyshev_weights, jacobi_spectrum_bounds, scheduled_relaxation_jacobi};
pub use workspace::{SolverWorkspace, WorkspaceHandle};

use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Default GMRES restart dimension used by [`solve_with`].
pub const DEFAULT_GMRES_RESTART: usize = 30;

/// Runs the solver selected by `kind` (dynamic dispatch over
/// [`SolverKind`]) — the software analog of reconfiguring the
/// Reconfigurable Solver unit.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems (non-square `A`, wrong `b`
/// length). Numerical failure is reported in the returned
/// [`SolveReport::outcome`], not as an error.
pub fn solve_with<T: Scalar, K: Kernels<T>>(
    kind: SolverKind,
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    match kind {
        SolverKind::Jacobi => jacobi(a, b, x0, criteria, kernels),
        SolverKind::ConjugateGradient => conjugate_gradient(a, b, x0, criteria, kernels),
        SolverKind::BiCgStab => bicgstab(a, b, x0, criteria, kernels),
        SolverKind::PreconditionedCg => preconditioned_cg(a, b, x0, criteria, kernels),
        SolverKind::BiCg => bicg(a, b, x0, criteria, kernels),
        SolverKind::ConjugateResidual => conjugate_residual(a, b, x0, criteria, kernels),
        SolverKind::GaussSeidel => gauss_seidel(a, b, x0, criteria, kernels),
        SolverKind::Sor => sor(a, b, x0, T::from_f64(1.5), criteria, kernels),
        SolverKind::Gmres => gmres(a, b, x0, DEFAULT_GMRES_RESTART, criteria, kernels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate;

    #[test]
    fn solve_with_dispatches_every_kind() {
        let a = generate::poisson2d::<f64>(6, 6);
        let b = vec![1.0; 36];
        let criteria = ConvergenceCriteria::paper().with_max_iterations(3000);
        for kind in [
            SolverKind::Jacobi,
            SolverKind::ConjugateGradient,
            SolverKind::BiCgStab,
            SolverKind::PreconditionedCg,
            SolverKind::BiCg,
            SolverKind::ConjugateResidual,
            SolverKind::GaussSeidel,
            SolverKind::Sor,
            SolverKind::Gmres,
        ] {
            let mut k = SoftwareKernels::new();
            let rep = solve_with(kind, &a, &b, None, &criteria, &mut k).unwrap();
            assert!(
                rep.converged(),
                "{kind} failed on Poisson: {:?}",
                rep.outcome
            );
            // All solvers should agree on the solution.
            let r = a.mul_vec(&rep.solution).unwrap();
            let res: f64 = r
                .iter()
                .zip(&b)
                .map(|(u, v)| (u - v) * (u - v))
                .sum::<f64>()
                .sqrt()
                / 6.0;
            assert!(res < 1e-4, "{kind} residual {res}");
        }
    }
}
