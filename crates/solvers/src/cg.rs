//! Conjugate Gradient (paper Algorithm 2).

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with the Conjugate Gradient method.
///
/// Requires `A` symmetric positive definite for guaranteed convergence
/// (paper Eq. 2–3). On indefinite matrices the method encounters
/// non-positive curvature `pᵀAp <= 0`, which is reported as a breakdown
/// divergence; on non-symmetric matrices it typically stagnates or grows.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{conjugate_gradient, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::poisson2d::<f64>(8, 8);
/// let b = vec![1.0; 64];
/// let mut k = SoftwareKernels::new();
/// let rep = conjugate_gradient(&a, &b, None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn conjugate_gradient<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    // --- Initialize (Algorithm 2 line 2): r0 = b - A x0, p0 = r0 ---
    kernels.set_phase(Phase::Initialize);
    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r); // r = A x0
    kernels.scale(-T::ONE, &mut r); // r = -A x0
    kernels.axpy(T::ONE, b, &mut r); // r = b - A x0
    let mut p = kernels.acquire_buffer(n);
    kernels.copy(&r, &mut p);
    let mut rr = kernels.dot(&r, &r);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut ap = kernels.acquire_buffer(n);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    // --- Loop (Algorithm 2 lines 3-9) ---
    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        // Already converged at entry (e.g. exact initial guess)?
        if rr.to_f64().sqrt() / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        let p_ap = kernels.spmv_dot(a, &p, &mut ap, &p);
        iterations += 1;
        if !p_ap.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        if p_ap <= T::ZERO {
            // Non-positive curvature: A is not positive definite.
            monitor.observe(rr.to_f64().sqrt() / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown(
                "non-positive curvature (matrix not positive definite)",
            ));
        }
        let alpha = rr / p_ap;
        kernels.axpy(alpha, &p, &mut x); // x += alpha p
        let rr_new = kernels.axpy_normsq(-alpha, &ap, &mut r); // r -= alpha A p
        let res = rr_new.to_f64().max(0.0).sqrt() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        let beta = rr_new / rr;
        rr = rr_new;
        kernels.xpby(&r, beta, &mut p); // p = r + beta p
    };

    kernels.release_buffer(r);
    kernels.release_buffer(p);
    kernels.release_buffer(ap);
    Ok(SolveReport {
        solver: SolverKind::ConjugateGradient,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(2000)
    }

    #[test]
    fn converges_on_poisson() {
        let a = generate::poisson2d::<f64>(10, 10);
        let x_true: Vec<f64> = (0..100).map(|i| ((i % 11) as f64) / 11.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
        let err: f64 = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max error {err}");
    }

    #[test]
    fn converges_on_spd_where_jacobi_diverges() {
        let a = generate::jacobi_divergent_spd::<f64>(60, 0.7, 0, 0.0, 3);
        let b = vec![1.0; 60];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
    }

    #[test]
    fn breaks_down_on_indefinite_matrix() {
        let a = generate::indefinite_diagonally_dominant::<f64>(
            61,
            RowDistribution::Uniform { min: 2, max: 5 },
            1.4,
            7,
        );
        let b = vec![1.0; 61];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }

    #[test]
    fn exact_initial_guess_converges_immediately() {
        let a = generate::poisson1d::<f64>(20);
        let x_true = vec![2.0; 20];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations_in_exact_arithmetic() {
        // f64 is close enough to exact for a tiny well-conditioned system.
        let a = generate::poisson1d::<f64>(12);
        let b = vec![1.0; 12];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert!(rep.iterations <= 12, "{} iterations", rep.iterations);
    }

    #[test]
    fn counts_one_spmv_per_iteration_plus_initialize() {
        let a = generate::poisson1d::<f64>(30);
        let b = vec![1.0; 30];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert_eq!(rep.counts.spmv_calls as usize, rep.iterations + 1);
    }

    #[test]
    fn f32_reaches_paper_tolerance_on_well_conditioned_system() {
        let a = generate::poisson2d::<f32>(8, 8);
        let b = vec![1.0_f32; 64];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(
            rep.converged(),
            "f32 CG should reach 1e-5: {:?}",
            rep.outcome
        );
    }
}
