//! Solve reports.

use crate::convergence::Outcome;
use crate::kernels::OpCounts;
use crate::selection::SolverKind;

/// The result of running an iterative solver.
///
/// Returned by every solver in this crate. `solution` holds the best
/// iterate even when the solve diverged (useful for diagnostics).
#[derive(Debug, Clone)]
pub struct SolveReport<T> {
    /// Which solver produced this report.
    pub solver: SolverKind,
    /// Terminal state.
    pub outcome: Outcome,
    /// Loop iterations performed.
    pub iterations: usize,
    /// Relative residual after each iteration (`‖r_k‖ / ‖b‖`).
    pub residual_history: Vec<f64>,
    /// Final iterate.
    pub solution: Vec<T>,
    /// Kernel operations attributed to this solve (initialize + loop).
    pub counts: OpCounts,
}

impl<T> SolveReport<T> {
    /// `true` if the solve converged.
    pub fn converged(&self) -> bool {
        self.outcome.converged()
    }

    /// The final relative residual, or `f64::INFINITY` if no iteration ran.
    pub fn final_residual(&self) -> f64 {
        self.residual_history
            .last()
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::{DivergenceReason, Outcome};

    #[test]
    fn report_accessors() {
        let r: SolveReport<f64> = SolveReport {
            solver: SolverKind::ConjugateGradient,
            outcome: Outcome::Converged,
            iterations: 3,
            residual_history: vec![1.0, 0.1, 1e-6],
            solution: vec![0.0; 2],
            counts: OpCounts::default(),
        };
        assert!(r.converged());
        assert_eq!(r.final_residual(), 1e-6);

        let d: SolveReport<f64> = SolveReport {
            solver: SolverKind::Jacobi,
            outcome: Outcome::Diverged(DivergenceReason::Stagnation),
            iterations: 0,
            residual_history: vec![],
            solution: vec![],
            counts: OpCounts::default(),
        };
        assert!(!d.converged());
        assert!(d.final_residual().is_infinite());
    }
}
