//! Convergence diagnostics over residual histories.
//!
//! The Solver Modifier decides from the residual *trend*; this module
//! provides the library-level view of that trend: geometric rate fitting,
//! stagnation detection, and projected iterations-to-tolerance. Useful
//! for tuning [`ConvergenceCriteria`](crate::ConvergenceCriteria) and for
//! reporting.

/// Qualitative classification of a residual history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Residuals shrink at a sustained geometric rate.
    Converging,
    /// Residuals hover (rate ≈ 1) without sustained progress.
    Stagnating,
    /// Residuals grow at a sustained rate.
    Diverging,
    /// Too few points to say.
    Inconclusive,
}

/// Summary statistics of a residual history.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Observations analyzed.
    pub iterations: usize,
    /// First residual.
    pub initial: f64,
    /// Last residual.
    pub last: f64,
    /// Best (smallest) residual seen.
    pub best: f64,
    /// Geometric mean per-iteration contraction over the analyzed window
    /// (`< 1` is progress).
    pub rate: f64,
    /// Fraction of steps that reduced the residual.
    pub monotone_fraction: f64,
    /// Qualitative trend.
    pub trend: Trend,
}

impl ConvergenceSummary {
    /// Analyzes a residual history (uses the trailing `window` points for
    /// the rate; pass `history.len()` for the whole run).
    ///
    /// Returns an [`Trend::Inconclusive`] summary for histories shorter
    /// than 2 points.
    pub fn from_history(history: &[f64], window: usize) -> ConvergenceSummary {
        let n = history.len();
        if n < 2 {
            return ConvergenceSummary {
                iterations: n,
                initial: history.first().copied().unwrap_or(f64::NAN),
                last: history.last().copied().unwrap_or(f64::NAN),
                best: history.first().copied().unwrap_or(f64::NAN),
                rate: f64::NAN,
                monotone_fraction: 0.0,
                trend: Trend::Inconclusive,
            };
        }
        let w = window.clamp(2, n);
        let tail = &history[n - w..];
        let mut log_sum = 0.0f64;
        let mut steps = 0usize;
        let mut down = 0usize;
        for pair in tail.windows(2) {
            let (a, b) = (
                pair[0].max(f64::MIN_POSITIVE),
                pair[1].max(f64::MIN_POSITIVE),
            );
            if a.is_finite() && b.is_finite() {
                log_sum += (b / a).ln();
                steps += 1;
                if b < a {
                    down += 1;
                }
            }
        }
        let rate = if steps > 0 {
            (log_sum / steps as f64).exp()
        } else {
            f64::NAN
        };
        let monotone_fraction = if steps > 0 {
            down as f64 / steps as f64
        } else {
            0.0
        };
        let trend = if !rate.is_finite() {
            Trend::Inconclusive
        } else if rate < 0.999 {
            Trend::Converging
        } else if rate <= 1.001 {
            Trend::Stagnating
        } else {
            Trend::Diverging
        };
        ConvergenceSummary {
            iterations: n,
            initial: history[0],
            last: history[n - 1],
            best: history.iter().copied().fold(f64::INFINITY, f64::min),
            rate,
            monotone_fraction,
            trend,
        }
    }

    /// Projects how many further iterations reaching `tolerance` would
    /// take at the fitted rate (`None` if not converging).
    pub fn iterations_to(&self, tolerance: f64) -> Option<usize> {
        if self.trend != Trend::Converging || self.last <= tolerance {
            return if self.last <= tolerance {
                Some(0)
            } else {
                None
            };
        }
        let need = (tolerance / self.last).ln() / self.rate.ln();
        if need.is_finite() && need >= 0.0 {
            // snap to the nearest integer before ceiling so exact
            // geometric histories don't round up on floating-point fuzz
            let rounded = need.round();
            let n = if (need - rounded).abs() < 1e-9 {
                rounded
            } else {
                need.ceil()
            };
            Some(n as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decay_is_detected_exactly() {
        let h: Vec<f64> = (0..20).map(|i| 0.5f64.powi(i)).collect();
        let s = ConvergenceSummary::from_history(&h, h.len());
        assert!((s.rate - 0.5).abs() < 1e-12);
        assert_eq!(s.trend, Trend::Converging);
        assert_eq!(s.monotone_fraction, 1.0);
        assert_eq!(s.best, h[19]);
    }

    #[test]
    fn stagnation_and_divergence_are_classified() {
        let flat = vec![0.3; 30];
        assert_eq!(
            ConvergenceSummary::from_history(&flat, 30).trend,
            Trend::Stagnating
        );
        let up: Vec<f64> = (0..20).map(|i| 1.1f64.powi(i)).collect();
        assert_eq!(
            ConvergenceSummary::from_history(&up, 20).trend,
            Trend::Diverging
        );
    }

    #[test]
    fn short_histories_are_inconclusive() {
        let s = ConvergenceSummary::from_history(&[1.0], 10);
        assert_eq!(s.trend, Trend::Inconclusive);
        assert!(s.rate.is_nan());
        let s0 = ConvergenceSummary::from_history(&[], 10);
        assert_eq!(s0.iterations, 0);
    }

    #[test]
    fn projection_matches_geometry() {
        let h: Vec<f64> = (0..10).map(|i| 0.1f64.powi(i)).collect(); // rate 0.1
        let s = ConvergenceSummary::from_history(&h, 10);
        // last = 1e-9; to reach 1e-12 at rate 0.1 -> 3 iterations
        assert_eq!(s.iterations_to(1e-12), Some(3));
        assert_eq!(s.iterations_to(1.0), Some(0));
        let flat = ConvergenceSummary::from_history(&[0.5; 20], 20);
        assert_eq!(flat.iterations_to(1e-5), None);
    }

    #[test]
    fn window_restricts_the_fit() {
        // fast early, slow late: tail window should see the slow rate.
        let mut h: Vec<f64> = (0..10).map(|i| 0.1f64.powi(i)).collect();
        let last = *h.last().unwrap();
        h.extend((1..=10).map(|i| last * 0.9f64.powi(i)));
        let s_tail = ConvergenceSummary::from_history(&h, 10);
        assert!((s_tail.rate - 0.9).abs() < 1e-9, "rate {}", s_tail.rate);
        let s_all = ConvergenceSummary::from_history(&h, h.len());
        assert!(s_all.rate < 0.9);
    }

    #[test]
    fn summary_of_a_real_solve() {
        use crate::cg::conjugate_gradient;
        use crate::convergence::ConvergenceCriteria;
        use crate::kernels::SoftwareKernels;
        let a = acamar_sparse::generate::poisson2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_gradient(&a, &b, None, &ConvergenceCriteria::paper(), &mut k).unwrap();
        let s = ConvergenceSummary::from_history(&rep.residual_history, 10);
        assert_eq!(s.trend, Trend::Converging);
        assert!(s.last < 1e-5);
    }
}
