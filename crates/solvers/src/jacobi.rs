//! Jacobi iterative method (paper Algorithm 1).
//!
//! Matrix form: with `A = L + D + U`, iterate
//! `x_{j+1} = c - T x_j` where `T = D⁻¹(L + U)` and `c = D⁻¹ b`.
//! The `T x_j` product is the SpMV kernel the paper marks in blue.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CooMatrix, CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with the Jacobi method.
///
/// Converges when `A` is strictly diagonally dominant (paper Eq. 1); may
/// diverge otherwise — divergence is reported through
/// [`Outcome::Diverged`], not an error.
///
/// A zero or missing diagonal entry makes the iteration undefined and is
/// reported as a breakdown divergence (the Solver Modifier treats it like
/// any other divergence and switches solvers).
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems (non-square `A`, wrong `b`
/// length) — programmer errors, not numerical ones.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{jacobi, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::diagonally_dominant::<f64>(
///     50, generate::RowDistribution::Uniform { min: 2, max: 5 }, 1.5, 7);
/// let b = vec![1.0; 50];
/// let mut k = SoftwareKernels::new();
/// let report = jacobi(&a, &b, None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(report.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn jacobi<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    // --- Initialize unit work (Algorithm 1 lines 1-7) ---
    kernels.set_phase(Phase::Initialize);
    let diag = a.diagonal();
    if let Some(row) = diag.iter().position(|&d| d == T::ZERO) {
        let _ = row;
        return Ok(SolveReport {
            solver: SolverKind::Jacobi,
            outcome: Outcome::Diverged(DivergenceReason::Breakdown("zero diagonal")),
            iterations: 0,
            residual_history: Vec::new(),
            solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
            counts: kernels.counts().since(&start_counts),
        });
    }
    let mut inv_d = kernels.acquire_buffer(n);
    for (slot, &d) in inv_d.iter_mut().zip(&diag) {
        *slot = T::ONE / d;
    }

    // T = D^{-1}(L + U): all off-diagonal entries of A scaled by 1/d_i.
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (i, cols, vals) in a.iter_rows() {
        for (&c, &v) in cols.iter().zip(vals) {
            if c != i {
                coo.push(i, c, v * inv_d[i]).expect("indices in bounds");
            }
        }
    }
    let t_mat = coo.to_csr();

    // c = D^{-1} b
    let mut c = kernels.acquire_buffer(n);
    kernels.hadamard(&inv_d, b, &mut c);

    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut tx = kernels.acquire_buffer(n);
    let mut x_new = kernels.acquire_buffer(n);
    let mut diff = kernels.acquire_buffer(n);
    let mut r = kernels.acquire_buffer(n);

    // --- Solver loop (Algorithm 1 lines 8-10) ---
    kernels.set_phase(Phase::Loop);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;
    let outcome = loop {
        kernels.begin_iteration(iterations);
        kernels.spmv(&t_mat, &x, &mut tx);
        // x_new = c - T x
        kernels.copy(&c, &mut x_new);
        kernels.axpy(-T::ONE, &tx, &mut x_new);
        // Residual: r = b - A x_new = D (x_prev-free form): using the
        // identity r = D (x_{j+1} - x_j) shifted one step, compute
        // diff = x_new - x, r = D .* diff (one cheap diagonal scaling
        // instead of a second SpMV).
        kernels.copy(&x_new, &mut diff);
        kernels.axpy(-T::ONE, &x, &mut diff);
        kernels.hadamard(&diag, &diff, &mut r);
        let res = kernels.norm2(&r).to_f64() / scale;
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
    };

    kernels.release_buffer(inv_d);
    kernels.release_buffer(c);
    kernels.release_buffer(tx);
    kernels.release_buffer(x_new);
    kernels.release_buffer(diff);
    kernels.release_buffer(r);
    Ok(SolveReport {
        solver: SolverKind::Jacobi,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

/// Validates a square system, returning its dimension.
pub(crate) fn check_square_system<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
) -> Result<usize, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if b.len() != a.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: a.nrows(),
            found: b.len(),
            what: "right-hand-side length",
        });
    }
    Ok(a.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(2000)
    }

    #[test]
    fn converges_on_strictly_dominant_matrix() {
        let a = generate::diagonally_dominant::<f64>(
            80,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.6,
            21,
        );
        let b: Vec<f64> = (0..80).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "outcome: {:?}", rep.outcome);
        // verify the solution actually solves the system
        let r = a.mul_vec(&rep.solution).unwrap();
        let err: f64 = r.iter().zip(&b).map(|(u, v)| (u - v).abs()).sum::<f64>()
            / b.iter().map(|v| v.abs()).sum::<f64>();
        assert!(err < 1e-4, "relative error {err}");
    }

    #[test]
    fn diverges_on_jacobi_divergent_spd() {
        let a = generate::jacobi_divergent_spd::<f64>(60, 0.7, 0, 0.0, 3);
        let b = vec![1.0; 60];
        let mut k = SoftwareKernels::new();
        let crit = ConvergenceCriteria {
            setup_iterations: 20,
            ..criteria()
        };
        let rep = jacobi(&a, &b, None, &crit, &mut k).unwrap();
        assert!(!rep.converged());
    }

    #[test]
    fn zero_diagonal_is_breakdown_not_error() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &[1.0, 1.0], None, &criteria(), &mut k).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }

    #[test]
    fn shape_errors_are_errors() {
        let a = generate::poisson1d::<f64>(4);
        let mut k = SoftwareKernels::new();
        assert!(jacobi(&a, &[1.0; 3], None, &criteria(), &mut k).is_err());
    }

    #[test]
    fn respects_initial_guess() {
        let a = generate::diagonally_dominant::<f64>(30, RowDistribution::Constant(3), 2.0, 5);
        // exact solution as initial guess -> converge almost immediately
        let x_true = vec![1.0; 30];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert!(rep.iterations <= 3, "took {} iterations", rep.iterations);
    }

    #[test]
    fn counts_attribute_spmv_per_iteration() {
        let a = generate::diagonally_dominant::<f64>(40, RowDistribution::Constant(4), 1.8, 9);
        let b = vec![1.0; 40];
        let mut k = SoftwareKernels::new();
        let rep = jacobi(&a, &b, None, &criteria(), &mut k).unwrap();
        assert_eq!(rep.counts.spmv_calls as usize, rep.iterations);
        assert!(rep.counts.dense_flops > 0);
    }
}
