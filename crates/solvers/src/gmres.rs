//! Restarted GMRES (the "general method of residuals" of paper Table I).
//!
//! GMRES(m) applies to both symmetric and non-symmetric systems and is the
//! most general of the Krylov methods in Table I. It is included as an
//! extension solver: Acamar's hardware reconfigures among JB/CG/BiCG-STAB,
//! but GMRES completes the Table I criteria coverage and provides a
//! fallback of last resort.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with restarted GMRES(m).
///
/// Each outer cycle builds an `m`-dimensional Arnoldi basis with modified
/// Gram-Schmidt and minimizes the residual over it via Givens rotations.
/// One outer cycle counts as `m` iterations against the convergence
/// criteria (each inner step costs one SpMV, like a CG iteration).
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Panics
///
/// Panics if `restart == 0`.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{gmres, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::convection_diffusion_2d::<f64>(8, 8, 3.0);
/// let b = vec![1.0; 64];
/// let mut k = SoftwareKernels::new();
/// let rep = gmres(&a, &b, None, 20, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn gmres<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    restart: usize,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    assert!(restart > 0, "restart dimension must be positive");
    let n = check_square_system(a, b)?;
    let m = restart.min(n);
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;
    let mut r = kernels.acquire_buffer(n);

    // Arnoldi basis V, Hessenberg H (h[i][j]), Givens rotations (cs, sn),
    // residual vector g — all acquired once and reused across restart
    // cycles; every entry a cycle reads is written earlier in that cycle.
    let mut v: Vec<Vec<T>> = (0..=m).map(|_| kernels.acquire_buffer(n)).collect();
    let mut h: Vec<Vec<T>> = (0..=m).map(|_| kernels.acquire_buffer(m)).collect();
    let mut cs = kernels.acquire_buffer(m);
    let mut sn = kernels.acquire_buffer(m);
    let mut g = kernels.acquire_buffer(m + 1);

    kernels.set_phase(Phase::Loop);
    let outcome = 'outer: loop {
        // r = b - A x
        kernels.spmv(a, &x, &mut r);
        kernels.scale(-T::ONE, &mut r);
        kernels.axpy(T::ONE, b, &mut r);
        let beta = kernels.norm2(&r);
        let beta_f = beta.to_f64();
        if !beta_f.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        if beta_f / scale < criteria.tolerance {
            break Outcome::Converged;
        }

        v[0].copy_from_slice(&r);
        kernels.scale(T::ONE / beta, &mut v[0]);
        g[0] = beta;
        let mut inner_used = 0usize;

        for j in 0..m {
            kernels.begin_iteration(iterations);
            // w is the (j+1)-th basis slot; the split keeps the borrow of
            // the established basis v[0..=j] disjoint from it.
            let (basis, rest) = v.split_at_mut(j + 1);
            let w = &mut rest[0][..];
            kernels.spmv(a, &basis[j], w);
            // Modified Gram-Schmidt
            for (i, vi) in basis.iter().enumerate() {
                let hij = kernels.dot(w, vi);
                h[i][j] = hij;
                kernels.axpy(-hij, vi, w);
            }
            let wnorm = kernels.norm2(w);
            h[j + 1][j] = wnorm;
            iterations += 1;
            inner_used = j + 1;

            let happy = wnorm.to_f64().abs() < 1e-14 * scale;
            if !happy {
                kernels.scale(T::ONE / wnorm, w);
            }

            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation annihilating h[j+1][j].
            let (c, s) = givens(h[j][j], h[j + 1][j]);
            cs[j] = c;
            sn[j] = s;
            h[j][j] = c * h[j][j] + s * h[j + 1][j];
            h[j + 1][j] = T::ZERO;
            g[j + 1] = -s * g[j];
            g[j] = c * g[j];

            let res = g[j + 1].to_f64().abs() / scale;
            kernels.observe_residual(monitor.history().len(), res);
            match monitor.observe(res) {
                Verdict::Continue => {}
                Verdict::Done(Outcome::Converged) => {
                    update_solution(kernels, &mut x, &h, &g, &v, j + 1);
                    break 'outer Outcome::Converged;
                }
                Verdict::Done(o) => {
                    update_solution(kernels, &mut x, &h, &g, &v, j + 1);
                    break 'outer o;
                }
            }
            if happy {
                update_solution(kernels, &mut x, &h, &g, &v, j + 1);
                continue 'outer;
            }
        }
        update_solution(kernels, &mut x, &h, &g, &v, inner_used);
    };

    kernels.release_buffer(r);
    for buf in v {
        kernels.release_buffer(buf);
    }
    for buf in h {
        kernels.release_buffer(buf);
    }
    kernels.release_buffer(cs);
    kernels.release_buffer(sn);
    kernels.release_buffer(g);
    Ok(SolveReport {
        solver: SolverKind::Gmres,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

/// Stable Givens rotation coefficients for `(a, b) -> (r, 0)`.
fn givens<T: Scalar>(a: T, b: T) -> (T, T) {
    if b == T::ZERO {
        (T::ONE, T::ZERO)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = T::ONE / (T::ONE + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = T::ONE / (T::ONE + t * t).sqrt();
        (c, c * t)
    }
}

/// Back-solves the `k x k` triangular system and updates `x += V y`.
fn update_solution<T: Scalar, K: Kernels<T>>(
    kernels: &mut K,
    x: &mut [T],
    h: &[Vec<T>],
    g: &[T],
    v: &[Vec<T>],
    k: usize,
) {
    if k == 0 {
        return;
    }
    let mut y = kernels.acquire_buffer(k);
    for i in (0..k).rev() {
        let mut acc = g[i];
        for j in (i + 1)..k {
            acc -= h[i][j] * y[j];
        }
        // A zero pivot here means the Krylov space degenerated; skip the
        // update direction rather than dividing by zero.
        if h[i][i] != T::ZERO {
            y[i] = acc / h[i][i];
        }
    }
    for (j, yj) in y.iter().enumerate() {
        kernels.axpy(*yj, &v[j], x);
    }
    kernels.release_buffer(y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn converges_on_nonsymmetric_system() {
        let a = generate::convection_diffusion_2d::<f64>(10, 10, 2.5);
        let x_true: Vec<f64> = (0..100).map(|i| ((i % 9) as f64) / 9.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = gmres(&a, &b, None, 30, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
        let err = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max err {err}");
    }

    #[test]
    fn converges_on_spd_system() {
        let a = generate::poisson2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let mut k = SoftwareKernels::new();
        let rep = gmres(&a, &b, None, 20, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
    }

    #[test]
    fn handles_indefinite_system_that_defeats_bicgstab() {
        // Full-memory Krylov (within the restart window) can handle
        // spectra straddling zero where BiCG-STAB's one-step stabilizer
        // stalls; GMRES is Acamar's natural future-work fallback.
        let a = generate::indefinite_diagonally_dominant::<f64>(
            60,
            RowDistribution::Uniform { min: 2, max: 4 },
            1.5,
            7,
        );
        let b = vec![1.0; 60];
        let mut k = SoftwareKernels::new();
        let rep = gmres(&a, &b, None, 60, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
    }

    #[test]
    fn exact_guess_returns_immediately() {
        let a = generate::poisson1d::<f64>(16);
        let x_true = vec![3.0; 16];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = gmres(&a, &b, Some(&x_true), 8, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn restart_larger_than_n_is_clamped() {
        let a = generate::poisson1d::<f64>(6);
        let b = vec![1.0; 6];
        let mut k = SoftwareKernels::new();
        let rep = gmres(&a, &b, None, 100, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert!(rep.iterations <= 6);
    }

    #[test]
    #[should_panic(expected = "restart dimension")]
    fn zero_restart_panics() {
        let a = generate::poisson1d::<f64>(4);
        let mut k = SoftwareKernels::new();
        let _ = gmres(&a, &[1.0; 4], None, 0, &criteria(), &mut k);
    }
}
