//! Compute kernels and the [`Kernels`] execution abstraction.
//!
//! Each solver in this crate is written once against the [`Kernels`] trait.
//! [`SoftwareKernels`] executes them directly (with FLOP accounting);
//! `acamar-fabric` provides an implementation that additionally models
//! FPGA cycles, resource utilization, and partial reconfiguration. This
//! mirrors the paper's split between the algorithms (Section II-B) and
//! their hardware execution (Section IV).

use acamar_sparse::{CsrMatrix, Scalar};

/// Execution phase of a solver, reported to the kernel executor.
///
/// The paper's Initialize unit runs pre-loop operations on a *static*
/// (un-reconfigured) SpMV engine, while loop-phase SpMV runs on the Dynamic
/// SpMV Kernel (Section IV-B); hardware models use this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Pre-loop operations (Algorithm 1 lines 1–7, Algorithm 2/3 line 2).
    Initialize,
    /// The iterative solver loop.
    Loop,
}

/// Operation counters accumulated by a kernel executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Floating-point operations inside SpMV calls (2 per stored entry).
    pub spmv_flops: u64,
    /// Floating-point operations in dense vector kernels.
    pub dense_flops: u64,
    /// Number of SpMV invocations.
    pub spmv_calls: u64,
    /// Stored entries processed across all SpMV calls.
    pub spmv_nnz_processed: u64,
    /// Number of dense kernel invocations (dot/axpy/etc.).
    pub dense_calls: u64,
}

impl OpCounts {
    /// Total floating-point operations.
    pub fn total_flops(&self) -> u64 {
        self.spmv_flops + self.dense_flops
    }

    /// Counts accumulated since `earlier` (which must be a prior snapshot
    /// of the same executor).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            spmv_flops: self.spmv_flops - earlier.spmv_flops,
            dense_flops: self.dense_flops - earlier.dense_flops,
            spmv_calls: self.spmv_calls - earlier.spmv_calls,
            spmv_nnz_processed: self.spmv_nnz_processed - earlier.spmv_nnz_processed,
            dense_calls: self.dense_calls - earlier.dense_calls,
        }
    }

    /// Fraction of FLOPs spent in SpMV (0 when nothing ran).
    pub fn spmv_flop_share(&self) -> f64 {
        let t = self.total_flops();
        if t == 0 {
            0.0
        } else {
            self.spmv_flops as f64 / t as f64
        }
    }
}

/// Executor for the primitive operations of the iterative solvers.
///
/// The sparse kernel is [`spmv`](Kernels::spmv) — the operation the paper
/// identifies as dominating solver time (Fig. 1) and the sole target of
/// fine-grained reconfiguration. The dense kernels (dot products, vector
/// updates) are "implemented in their most optimized HLS design" and never
/// reconfigured (Section IV-B).
pub trait Kernels<T: Scalar> {
    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != a.ncols()` or
    /// `y.len() != a.nrows()`; solver code always passes matching shapes.
    fn spmv(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T]);

    /// Returns `xᵀ y`.
    fn dot(&mut self, x: &[T], y: &[T]) -> T;

    /// `y += alpha * x`.
    fn axpy(&mut self, alpha: T, x: &[T], y: &mut [T]);

    /// `y = x + beta * y` (the `p` update of CG).
    fn xpby(&mut self, x: &[T], beta: T, y: &mut [T]);

    /// `x *= alpha`.
    fn scale(&mut self, alpha: T, x: &mut [T]);

    /// `dst = src` (no FLOPs; modeled as a buffer move).
    fn copy(&mut self, src: &[T], dst: &mut [T]);

    /// `y[i] = a[i] * x[i]` elementwise (diagonal scaling).
    fn hadamard(&mut self, a: &[T], x: &[T], y: &mut [T]);

    /// Returns `‖x‖₂`.
    fn norm2(&mut self, x: &[T]) -> T {
        self.dot(x, x).sqrt()
    }

    /// Notifies the executor that the solver entered `phase`.
    fn set_phase(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// Notifies the executor that loop iteration `iter` begins.
    fn begin_iteration(&mut self, iter: usize) {
        let _ = iter;
    }

    /// Current accumulated operation counts.
    fn counts(&self) -> OpCounts;
}

/// Pure-software kernel executor with FLOP accounting.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{Kernels, SoftwareKernels};
/// use acamar_sparse::CsrMatrix;
///
/// let a = CsrMatrix::<f64>::identity(3);
/// let mut k = SoftwareKernels::new();
/// let mut y = vec![0.0; 3];
/// k.spmv(&a, &[1.0, 2.0, 3.0], &mut y);
/// assert_eq!(y, vec![1.0, 2.0, 3.0]);
/// assert_eq!(Kernels::<f64>::counts(&k).spmv_calls, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SoftwareKernels {
    counts: OpCounts,
}

impl SoftwareKernels {
    /// Creates an executor with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = OpCounts::default();
    }
}

impl<T: Scalar> Kernels<T> for SoftwareKernels {
    fn spmv(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
        a.mul_vec_into(x, y).expect("spmv shape mismatch");
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
    }

    fn dot(&mut self, x: &[T], y: &[T]) -> T {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        x.iter().zip(y).fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
    }

    fn axpy(&mut self, alpha: T, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn xpby(&mut self, x: &[T], beta: T, y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "xpby length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
    }

    fn scale(&mut self, alpha: T, x: &mut [T]) {
        self.counts.dense_calls += 1;
        self.counts.dense_flops += x.len() as u64;
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    fn copy(&mut self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), dst.len(), "copy length mismatch");
        self.counts.dense_calls += 1;
        dst.copy_from_slice(src);
    }

    fn hadamard(&mut self, a: &[T], x: &[T], y: &mut [T]) {
        assert_eq!(a.len(), x.len(), "hadamard length mismatch");
        assert_eq!(a.len(), y.len(), "hadamard length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += a.len() as u64;
        for ((yi, &ai), &xi) in y.iter_mut().zip(a).zip(x) {
            *yi = ai * xi;
        }
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate;

    #[test]
    fn spmv_counts_nnz_and_flops() {
        let a = generate::poisson1d::<f64>(10); // nnz = 28
        let mut k = SoftwareKernels::new();
        let x = vec![1.0; 10];
        let mut y = vec![0.0; 10];
        Kernels::<f64>::spmv(&mut k, &a, &x, &mut y);
        let c: OpCounts = Kernels::<f64>::counts(&k);
        assert_eq!(c.spmv_calls, 1);
        assert_eq!(c.spmv_nnz_processed, 28);
        assert_eq!(c.spmv_flops, 56);
        assert_eq!(c.spmv_flop_share(), 1.0);
    }

    #[test]
    fn dense_kernels_compute_correctly() {
        let mut k = SoftwareKernels::new();
        let x = vec![1.0_f64, 2.0, 3.0];
        let mut y = vec![1.0_f64, 1.0, 1.0];
        assert_eq!(k.dot(&x, &y), 6.0);
        k.axpy(2.0, &x, &mut y); // y = [3,5,7]
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        k.xpby(&x, 2.0, &mut y); // y = x + 2y = [7,12,17]
        assert_eq!(y, vec![7.0, 12.0, 17.0]);
        k.scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 6.0, 8.5]);
        let mut z = vec![0.0; 3];
        k.copy(&y, &mut z);
        assert_eq!(z, y);
        let mut h = vec![0.0; 3];
        k.hadamard(&x, &z, &mut h);
        assert_eq!(h, vec![3.5, 12.0, 25.5]);
        assert_eq!(Kernels::<f64>::norm2(&mut k, &[3.0, 4.0]), 5.0);
        let c: OpCounts = Kernels::<f64>::counts(&k);
        assert!(c.dense_calls >= 7);
        assert!(c.total_flops() > 0);
        assert!(c.spmv_flop_share() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let mut k = SoftwareKernels::new();
        let _ = k.dot(&[1.0_f64], &[1.0_f64]);
        k.reset();
        assert_eq!(Kernels::<f64>::counts(&k), OpCounts::default());
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_panics_on_shape_mismatch() {
        let mut k = SoftwareKernels::new();
        let _ = k.dot(&[1.0_f64, 2.0], &[1.0_f64]);
    }
}
