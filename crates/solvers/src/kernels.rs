//! Compute kernels and the [`Kernels`] execution abstraction.
//!
//! Each solver in this crate is written once against the [`Kernels`] trait.
//! [`SoftwareKernels`] executes them directly (with FLOP accounting);
//! `acamar-fabric` provides an implementation that additionally models
//! FPGA cycles, resource utilization, and partial reconfiguration. This
//! mirrors the paper's split between the algorithms (Section II-B) and
//! their hardware execution (Section IV).

use crate::workspace::WorkspaceHandle;
use acamar_sparse::{
    chunk, simd, CompiledSpmv, CompiledSptrsv, CsrMatrix, DeterminismPolicy, Scalar,
};
use acamar_telemetry::{Counter, TelemetrySink};
use std::sync::Arc;

/// Minimum stored entries before [`SoftwareKernels`] considers the
/// row-partitioned parallel SpMV path worth its thread-dispatch cost.
pub const PARALLEL_SPMV_MIN_NNZ: usize = 1 << 16;

/// Execution phase of a solver, reported to the kernel executor.
///
/// The paper's Initialize unit runs pre-loop operations on a *static*
/// (un-reconfigured) SpMV engine, while loop-phase SpMV runs on the Dynamic
/// SpMV Kernel (Section IV-B); hardware models use this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Pre-loop operations (Algorithm 1 lines 1–7, Algorithm 2/3 line 2).
    Initialize,
    /// The iterative solver loop.
    Loop,
}

/// Operation counters accumulated by a kernel executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Floating-point operations inside SpMV calls (2 per stored entry).
    pub spmv_flops: u64,
    /// Floating-point operations in dense vector kernels.
    pub dense_flops: u64,
    /// Number of SpMV invocations.
    pub spmv_calls: u64,
    /// Stored entries processed across all SpMV calls.
    pub spmv_nnz_processed: u64,
    /// Number of dense kernel invocations (dot/axpy/etc.).
    pub dense_calls: u64,
}

impl OpCounts {
    /// Total floating-point operations.
    pub fn total_flops(&self) -> u64 {
        self.spmv_flops + self.dense_flops
    }

    /// Counts accumulated since `earlier` (which must be a prior snapshot
    /// of the same executor).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            spmv_flops: self.spmv_flops - earlier.spmv_flops,
            dense_flops: self.dense_flops - earlier.dense_flops,
            spmv_calls: self.spmv_calls - earlier.spmv_calls,
            spmv_nnz_processed: self.spmv_nnz_processed - earlier.spmv_nnz_processed,
            dense_calls: self.dense_calls - earlier.dense_calls,
        }
    }

    /// Fraction of FLOPs spent in SpMV (0 when nothing ran).
    pub fn spmv_flop_share(&self) -> f64 {
        let t = self.total_flops();
        if t == 0 {
            0.0
        } else {
            self.spmv_flops as f64 / t as f64
        }
    }
}

/// Executor for the primitive operations of the iterative solvers.
///
/// The sparse kernel is [`spmv`](Kernels::spmv) — the operation the paper
/// identifies as dominating solver time (Fig. 1) and the sole target of
/// fine-grained reconfiguration. The dense kernels (dot products, vector
/// updates) are "implemented in their most optimized HLS design" and never
/// reconfigured (Section IV-B).
pub trait Kernels<T: Scalar> {
    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != a.ncols()` or
    /// `y.len() != a.nrows()`; solver code always passes matching shapes.
    fn spmv(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T]);

    /// Returns `xᵀ y`.
    fn dot(&mut self, x: &[T], y: &[T]) -> T;

    /// `y += alpha * x`.
    fn axpy(&mut self, alpha: T, x: &[T], y: &mut [T]);

    /// `y = x + beta * y` (the `p` update of CG).
    fn xpby(&mut self, x: &[T], beta: T, y: &mut [T]);

    /// `x *= alpha`.
    fn scale(&mut self, alpha: T, x: &mut [T]);

    /// `dst = src` (no FLOPs; modeled as a buffer move).
    fn copy(&mut self, src: &[T], dst: &mut [T]);

    /// `y[i] = a[i] * x[i]` elementwise (diagonal scaling).
    fn hadamard(&mut self, a: &[T], x: &[T], y: &mut [T]);

    /// Returns `‖x‖₂`.
    fn norm2(&mut self, x: &[T]) -> T {
        self.dot(x, x).sqrt()
    }

    /// Borrows a zero-filled scratch buffer of length `n`.
    ///
    /// Not an arithmetic operation — never counted. The default allocates
    /// fresh; executors backed by a
    /// [`WorkspaceHandle`](crate::WorkspaceHandle) recycle buffers
    /// previously returned through
    /// [`release_buffer`](Kernels::release_buffer), which is what makes
    /// warm solves allocation-free.
    fn acquire_buffer(&mut self, n: usize) -> Vec<T> {
        vec![T::ZERO; n]
    }

    /// Hands a scratch buffer back to the executor for reuse.
    ///
    /// Dropping a buffer instead of releasing it is always correct; it
    /// just forfeits the reuse.
    fn release_buffer(&mut self, buf: Vec<T>) {
        drop(buf);
    }

    /// Fused `y = A x` then `yᵀ z` — one pass over the fresh `y`.
    ///
    /// Implementations must be bitwise identical to the unfused
    /// [`spmv`](Kernels::spmv) + [`dot`](Kernels::dot) sequence (same
    /// accumulation order) and must charge exactly the sum of the two
    /// operations' counts, which is what the default does.
    fn spmv_dot(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T], z: &[T]) -> T {
        self.spmv(a, x, y);
        self.dot(y, z)
    }

    /// Fused `y += alpha x` then `‖y‖₂²` (returned *squared*).
    ///
    /// Same contract as [`spmv_dot`](Kernels::spmv_dot): bitwise and
    /// accounting parity with the unfused [`axpy`](Kernels::axpy) +
    /// [`dot`](Kernels::dot)`(y, y)` pair.
    fn axpy_normsq(&mut self, alpha: T, x: &[T], y: &mut [T]) -> T {
        self.axpy(alpha, x, y);
        self.dot(y, y)
    }

    /// One forward SOR sweep over `a` with relaxation factor `omega`:
    /// `x[i] += omega * ((b[i] - Σ_{j≠i} a_ij x[j]) / a_ii - x[i])`,
    /// rows ascending, using the *current* `x` (Gauss-Seidel coupling).
    ///
    /// The sweep is a strict serial dependence chain, so both determinism
    /// tiers execute identical arithmetic; tiers differ only in the
    /// residual reductions around the sweep. The default runs the
    /// reference sweep without accounting; executors charge one
    /// SpMV-equivalent pass plus the dense relaxation update.
    fn sor_sweep(&mut self, a: &CsrMatrix<T>, diag: &[T], omega: T, b: &[T], x: &mut [T]) {
        sor_sweep_reference(a, diag, omega, b, x);
    }

    /// Sparse triangular solve `x = tri(m)⁻¹ b` through a compiled level
    /// schedule (see [`CompiledSptrsv`]) — the substitution kernel of the
    /// incomplete-factorization preconditioners. Entries of `m` outside
    /// the plan's triangle are ignored.
    ///
    /// The default runs the serial substitution reference and charges
    /// nothing; [`SoftwareKernels`] adds operation accounting and the
    /// level-parallel path, and the fabric executor additionally models
    /// cycles and the SpTRSV fault seam.
    ///
    /// # Panics
    ///
    /// Implementations may panic if operand shapes disagree with the plan.
    fn sptrsv(&mut self, plan: &CompiledSptrsv, m: &CsrMatrix<T>, b: &[T], x: &mut [T]) {
        plan.solve_serial(m, b, x).expect("sptrsv shape mismatch");
    }

    /// Notifies the executor that the solver entered `phase`.
    fn set_phase(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// Notifies the executor that loop iteration `iter` begins.
    fn begin_iteration(&mut self, iter: usize) {
        let _ = iter;
    }

    /// Reports the relative residual the solver's convergence monitor
    /// observed at loop iteration `iter`.
    ///
    /// Purely observational — implementations must not influence the
    /// solve. Executors carrying a telemetry sink forward the sample into
    /// the (stride-sampled) residual event stream; the default discards
    /// it, so uninstrumented executors pay nothing.
    fn observe_residual(&mut self, iter: usize, relative: f64) {
        let _ = (iter, relative);
    }

    /// Current accumulated operation counts.
    fn counts(&self) -> OpCounts;
}

/// Pure-software kernel executor with FLOP accounting.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{Kernels, SoftwareKernels};
/// use acamar_sparse::CsrMatrix;
///
/// let a = CsrMatrix::<f64>::identity(3);
/// let mut k = SoftwareKernels::new();
/// let mut y = vec![0.0; 3];
/// k.spmv(&a, &[1.0, 2.0, 3.0], &mut y);
/// assert_eq!(y, vec![1.0, 2.0, 3.0]);
/// assert_eq!(Kernels::<f64>::counts(&k).spmv_calls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareKernels {
    counts: OpCounts,
    workspace: Option<WorkspaceHandle>,
    spmv_threads: usize,
    plan: Option<Arc<CompiledSpmv>>,
    telemetry: TelemetrySink,
    policy: DeterminismPolicy,
}

impl Default for SoftwareKernels {
    fn default() -> Self {
        SoftwareKernels {
            counts: OpCounts::default(),
            workspace: None,
            spmv_threads: 1,
            plan: None,
            telemetry: TelemetrySink::disabled(),
            policy: DeterminismPolicy::Deterministic,
        }
    }
}

impl SoftwareKernels {
    /// Creates an executor with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backs [`Kernels::acquire_buffer`] with a shared scratch-buffer
    /// workspace so repeated solves stop allocating.
    pub fn with_workspace(mut self, workspace: WorkspaceHandle) -> Self {
        self.workspace = Some(workspace);
        self
    }

    /// Enables the row-partitioned parallel SpMV path with up to
    /// `threads` OS threads for matrices of at least
    /// [`PARALLEL_SPMV_MIN_NNZ`] stored entries. `0` and `1` both mean
    /// serial. Row partitions write disjoint output slices, so results
    /// are bitwise identical to the serial path at any thread count.
    pub fn with_spmv_threads(mut self, threads: usize) -> Self {
        self.spmv_threads = threads.max(1);
        self
    }

    /// Installs a compiled SpMV execution plan (see
    /// [`CompiledSpmv`]). [`Kernels::spmv`] and [`Kernels::spmv_dot`] use
    /// the plan's format-specialized band kernels — bitwise identical to
    /// the generic CSR walk — whenever the operand matrix matches the
    /// plan's shape, and fall back to the generic path otherwise (solvers
    /// like Jacobi pass derived iteration matrices through the same
    /// executor). The parallel path partitions rows at band boundaries, so
    /// threads never split a band.
    pub fn with_compiled_plan(mut self, plan: Arc<CompiledSpmv>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The installed compiled plan, if any.
    pub fn compiled_plan(&self) -> Option<&Arc<CompiledSpmv>> {
        self.plan.as_ref()
    }

    /// Selects the numeric determinism tier (see
    /// [`DeterminismPolicy`]). Under
    /// [`DeterminismPolicy::Fast`], the reduction kernels
    /// ([`Kernels::dot`], [`Kernels::norm2`], and the fused pairs) use
    /// reassociated four-lane partial sums, and plan-backed SpMV runs the
    /// plan's fast band kernels — results agree with the deterministic
    /// tier only to accuracy, never bitwise. The generic (plan-less) SpMV
    /// walk is policy-agnostic. Operation counts are charged identically
    /// on both tiers.
    pub fn with_policy(mut self, policy: DeterminismPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The executor's determinism tier.
    pub fn policy(&self) -> DeterminismPolicy {
        self.policy
    }

    /// Routes [`Kernels::observe_residual`] samples into `sink`'s residual
    /// event stream (subject to the sink's sampling stride). A disabled
    /// sink — the default — keeps the executor observation-free.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// The reference SOR sweep all executors share (see
/// [`Kernels::sor_sweep`]). Rows ascending, within-row accumulation in
/// CSR entry order — a fixed serial chain on every tier. Public so the
/// fabric executor can wrap it with its cycle model.
pub fn sor_sweep_reference<T: Scalar>(
    a: &CsrMatrix<T>,
    diag: &[T],
    omega: T,
    b: &[T],
    x: &mut [T],
) {
    debug_assert_eq!(diag.len(), a.nrows());
    debug_assert_eq!(b.len(), a.nrows());
    debug_assert_eq!(x.len(), a.nrows());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let mut sigma = T::ZERO;
        for (&c, &v) in cols.iter().zip(vals) {
            if c != i {
                sigma += v * x[c];
            }
        }
        let gs = (b[i] - sigma) / diag[i];
        x[i] = x[i] + omega * (gs - x[i]);
    }
}

/// `y = A x` with rows partitioned into contiguous chunks (via
/// [`chunk::row_chunks`]) executed on scoped OS threads. Each chunk owns a
/// disjoint slice of `y`, so the result is bitwise identical to the
/// serial row loop.
fn parallel_spmv<T: Scalar>(a: &CsrMatrix<T>, x: &[T], y: &mut [T], threads: usize) {
    assert_eq!(x.len(), a.ncols(), "spmv shape mismatch");
    assert_eq!(y.len(), a.nrows(), "spmv shape mismatch");
    let chunks = chunk::row_chunks(a, a.nrows().div_ceil(threads).max(1));
    let mut rest = y;
    std::thread::scope(|s| {
        for c in &chunks {
            let rows = c.rows.clone();
            let (head, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            s.spawn(move || {
                for (i, yi) in rows.zip(head.iter_mut()) {
                    let (cols, vals) = a.row(i);
                    let mut acc = T::ZERO;
                    for (&c, &v) in cols.iter().zip(vals) {
                        acc += v * x[c];
                    }
                    *yi = acc;
                }
            });
        }
    });
}

/// `y = A x` through a compiled plan, with band spans executed on scoped
/// OS threads. Partition points are band boundaries
/// ([`CompiledSpmv::partition`]), so no thread ever splits a band and the
/// result is bitwise identical to serial plan execution (and to the
/// generic row loop).
fn parallel_compiled_spmv<T: Scalar>(
    plan: &CompiledSpmv,
    a: &CsrMatrix<T>,
    x: &[T],
    y: &mut [T],
    threads: usize,
    policy: DeterminismPolicy,
) {
    assert_eq!(x.len(), a.ncols(), "spmv shape mismatch");
    assert_eq!(y.len(), a.nrows(), "spmv shape mismatch");
    let spans = plan.partition(threads);
    let mut rest = y;
    let mut row = 0usize;
    std::thread::scope(|s| {
        for span in spans {
            let rows = plan.span_rows(span.clone());
            debug_assert_eq!(rows.start, row);
            row = rows.end;
            let (head, tail) = rest.split_at_mut(rows.len());
            rest = tail;
            s.spawn(move || {
                if policy.is_fast() {
                    plan.execute_span_fast(span, a, x, head);
                } else {
                    plan.execute_span(span, a, x, head);
                }
            });
        }
    });
}

impl<T: Scalar> Kernels<T> for SoftwareKernels {
    fn spmv(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
        match &self.plan {
            Some(plan) if plan.matches(a) => {
                if self.spmv_threads > 1 && a.nnz() >= PARALLEL_SPMV_MIN_NNZ {
                    parallel_compiled_spmv(plan, a, x, y, self.spmv_threads, self.policy);
                } else if self.policy.is_fast() {
                    plan.execute_fast(a, x, y).expect("spmv shape mismatch");
                } else {
                    plan.execute(a, x, y).expect("spmv shape mismatch");
                }
            }
            _ if self.spmv_threads > 1 && a.nnz() >= PARALLEL_SPMV_MIN_NNZ => {
                parallel_spmv(a, x, y, self.spmv_threads);
            }
            _ => {
                a.mul_vec_into(x, y).expect("spmv shape mismatch");
            }
        }
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
    }

    fn dot(&mut self, x: &[T], y: &[T]) -> T {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        if self.policy.is_fast() {
            return simd::dot_fast(x, y);
        }
        x.iter().zip(y).fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
    }

    fn axpy(&mut self, alpha: T, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn xpby(&mut self, x: &[T], beta: T, y: &mut [T]) {
        assert_eq!(x.len(), y.len(), "xpby length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * x.len() as u64;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + beta * *yi;
        }
    }

    fn scale(&mut self, alpha: T, x: &mut [T]) {
        self.counts.dense_calls += 1;
        self.counts.dense_flops += x.len() as u64;
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    fn copy(&mut self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), dst.len(), "copy length mismatch");
        self.counts.dense_calls += 1;
        dst.copy_from_slice(src);
    }

    fn hadamard(&mut self, a: &[T], x: &[T], y: &mut [T]) {
        assert_eq!(a.len(), x.len(), "hadamard length mismatch");
        assert_eq!(a.len(), y.len(), "hadamard length mismatch");
        self.counts.dense_calls += 1;
        self.counts.dense_flops += a.len() as u64;
        for ((yi, &ai), &xi) in y.iter_mut().zip(a).zip(x) {
            *yi = ai * xi;
        }
    }

    fn acquire_buffer(&mut self, n: usize) -> Vec<T> {
        match &self.workspace {
            Some(ws) => ws.take(n),
            None => vec![T::ZERO; n],
        }
    }

    fn sor_sweep(&mut self, a: &CsrMatrix<T>, diag: &[T], omega: T, b: &[T], x: &mut [T]) {
        // One pass over every stored entry (an SpMV-equivalent) plus the
        // dense relaxation update: divide, subtract, scale, add per row.
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 4 * a.nrows() as u64;
        self.telemetry.counter_add(Counter::SorSweeps, 1);
        sor_sweep_reference(a, diag, omega, b, x);
    }

    fn sptrsv(&mut self, plan: &CompiledSptrsv, m: &CsrMatrix<T>, b: &[T], x: &mut [T]) {
        // Charged to the sparse bucket: one mul+sub per off-diagonal
        // entry plus the diagonal division, ~2 FLOPs per stored entry —
        // the same rate as SpMV over the triangle.
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += plan.tri_nnz() as u64;
        self.counts.spmv_flops += 2 * plan.tri_nnz() as u64;
        self.telemetry.counter_add(Counter::SptrsvApplies, 1);
        let mut scratch: Vec<T> = match &self.workspace {
            Some(ws) => ws.take(plan.max_level_width()),
            None => vec![T::ZERO; plan.max_level_width()],
        };
        let result = if self.policy.is_fast() {
            plan.execute_fast(m, b, x, self.spmv_threads, &mut scratch)
        } else {
            plan.execute(m, b, x, self.spmv_threads, &mut scratch)
        };
        result.expect("sptrsv shape mismatch");
        if let Some(ws) = &self.workspace {
            ws.give(scratch);
        }
    }

    fn release_buffer(&mut self, buf: Vec<T>) {
        if let Some(ws) = &self.workspace {
            ws.give(buf);
        }
    }

    fn spmv_dot(&mut self, a: &CsrMatrix<T>, x: &[T], y: &mut [T], z: &[T]) -> T {
        assert_eq!(x.len(), a.ncols(), "spmv shape mismatch");
        assert_eq!(y.len(), a.nrows(), "spmv shape mismatch");
        assert_eq!(y.len(), z.len(), "dot length mismatch");
        self.counts.spmv_calls += 1;
        self.counts.spmv_nnz_processed += a.nnz() as u64;
        self.counts.spmv_flops += 2 * a.nnz() as u64;
        self.counts.dense_calls += 1;
        self.counts.dense_flops += 2 * y.len() as u64;
        if let Some(plan) = &self.plan {
            if plan.matches(a) {
                if self.policy.is_fast() {
                    // Fast band kernels with a lane-wise per-band dot.
                    return plan
                        .execute_dot_fast(a, x, y, z)
                        .expect("spmv shape mismatch");
                }
                // Band kernels then a row-ascending dot per band: the same
                // floating-point order as spmv followed by dot.
                return plan.execute_dot(a, x, y, z).expect("spmv shape mismatch");
            }
        }
        // Rows ascending, accumulation ascending: the same floating-point
        // order as spmv followed by dot, so the result is bitwise equal.
        let mut acc = T::ZERO;
        for (i, (yi, &zi)) in y.iter_mut().zip(z).enumerate() {
            let (cols, vals) = a.row(i);
            let mut row = T::ZERO;
            for (&c, &v) in cols.iter().zip(vals) {
                row += v * x[c];
            }
            *yi = row;
            acc += row * zi;
        }
        acc
    }

    fn axpy_normsq(&mut self, alpha: T, x: &[T], y: &mut [T]) -> T {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        self.counts.dense_calls += 2;
        self.counts.dense_flops += 4 * x.len() as u64;
        if self.policy.is_fast() {
            return simd::axpy_normsq_fast(alpha, x, y);
        }
        let mut acc = T::ZERO;
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
            acc += *yi * *yi;
        }
        acc
    }

    fn observe_residual(&mut self, iter: usize, relative: f64) {
        self.telemetry.observe_residual(iter, relative);
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate;

    #[test]
    fn spmv_counts_nnz_and_flops() {
        let a = generate::poisson1d::<f64>(10); // nnz = 28
        let mut k = SoftwareKernels::new();
        let x = vec![1.0; 10];
        let mut y = vec![0.0; 10];
        Kernels::<f64>::spmv(&mut k, &a, &x, &mut y);
        let c: OpCounts = Kernels::<f64>::counts(&k);
        assert_eq!(c.spmv_calls, 1);
        assert_eq!(c.spmv_nnz_processed, 28);
        assert_eq!(c.spmv_flops, 56);
        assert_eq!(c.spmv_flop_share(), 1.0);
    }

    #[test]
    fn dense_kernels_compute_correctly() {
        let mut k = SoftwareKernels::new();
        let x = vec![1.0_f64, 2.0, 3.0];
        let mut y = vec![1.0_f64, 1.0, 1.0];
        assert_eq!(k.dot(&x, &y), 6.0);
        k.axpy(2.0, &x, &mut y); // y = [3,5,7]
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        k.xpby(&x, 2.0, &mut y); // y = x + 2y = [7,12,17]
        assert_eq!(y, vec![7.0, 12.0, 17.0]);
        k.scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 6.0, 8.5]);
        let mut z = vec![0.0; 3];
        k.copy(&y, &mut z);
        assert_eq!(z, y);
        let mut h = vec![0.0; 3];
        k.hadamard(&x, &z, &mut h);
        assert_eq!(h, vec![3.5, 12.0, 25.5]);
        assert_eq!(Kernels::<f64>::norm2(&mut k, &[3.0, 4.0]), 5.0);
        let c: OpCounts = Kernels::<f64>::counts(&k);
        assert!(c.dense_calls >= 7);
        assert!(c.total_flops() > 0);
        assert!(c.spmv_flop_share() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let mut k = SoftwareKernels::new();
        let _ = k.dot(&[1.0_f64], &[1.0_f64]);
        k.reset();
        assert_eq!(Kernels::<f64>::counts(&k), OpCounts::default());
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_panics_on_shape_mismatch() {
        let mut k = SoftwareKernels::new();
        let _ = k.dot(&[1.0_f64, 2.0], &[1.0_f64]);
    }

    #[test]
    fn fused_spmv_dot_matches_unfused_bitwise_and_in_counts() {
        let a = generate::poisson2d::<f64>(9, 7);
        let n = 63;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let z: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect();

        let mut unfused = SoftwareKernels::new();
        let mut y1 = vec![0.0; n];
        unfused.spmv(&a, &x, &mut y1);
        let d1 = unfused.dot(&y1, &z);

        let mut fused = SoftwareKernels::new();
        let mut y2 = vec![0.0; n];
        let d2 = fused.spmv_dot(&a, &x, &mut y2, &z);

        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(y1, y2);
        assert_eq!(
            Kernels::<f64>::counts(&unfused),
            Kernels::<f64>::counts(&fused)
        );
    }

    #[test]
    fn fused_axpy_normsq_matches_unfused_bitwise_and_in_counts() {
        let n = 63;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let base: Vec<f64> = (0..n).map(|i| (i as f64).sqrt() - 3.0).collect();

        let mut unfused = SoftwareKernels::new();
        let mut y1 = base.clone();
        unfused.axpy(-0.625, &x, &mut y1);
        let d1 = unfused.dot(&y1, &y1);

        let mut fused = SoftwareKernels::new();
        let mut y2 = base;
        let d2 = fused.axpy_normsq(-0.625, &x, &mut y2);

        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(y1, y2);
        assert_eq!(
            Kernels::<f64>::counts(&unfused),
            Kernels::<f64>::counts(&fused)
        );
    }

    #[test]
    fn parallel_spmv_is_bitwise_identical_to_serial() {
        // 150x150 five-point grid: 22_500 rows, > 2^16 stored entries.
        let a = generate::poisson2d::<f64>(150, 150);
        assert!(a.nnz() >= PARALLEL_SPMV_MIN_NNZ);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.013).sin()).collect();
        let mut serial = vec![0.0; a.nrows()];
        Kernels::<f64>::spmv(&mut SoftwareKernels::new(), &a, &x, &mut serial);
        for threads in [2, 5, 8] {
            let mut k = SoftwareKernels::new().with_spmv_threads(threads);
            let mut y = vec![0.0; a.nrows()];
            k.spmv(&a, &x, &mut y);
            assert_eq!(serial, y, "{threads} threads");
            assert_eq!(Kernels::<f64>::counts(&k).spmv_calls, 1);
        }
    }

    #[test]
    fn compiled_plan_spmv_is_bitwise_identical_and_falls_back() {
        use acamar_sparse::generate::RowDistribution;
        let a =
            generate::random_pattern::<f64>(600, RowDistribution::Uniform { min: 1, max: 24 }, 17);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.29).sin()).collect();
        let z: Vec<f64> = (0..a.nrows()).map(|i| 1.0 / (i as f64 + 3.0)).collect();

        let mut generic = SoftwareKernels::new();
        let mut y_ref = vec![0.0; a.nrows()];
        generic.spmv(&a, &x, &mut y_ref);
        let d_ref = generic.dot(&y_ref, &z);

        let plan = Arc::new(CompiledSpmv::compile_default(&a));
        let mut k = SoftwareKernels::new().with_compiled_plan(plan.clone());
        let mut y = vec![f64::NAN; a.nrows()];
        k.spmv(&a, &x, &mut y);
        assert_eq!(y, y_ref);
        let mut y2 = vec![f64::NAN; a.nrows()];
        let d = k.spmv_dot(&a, &x, &mut y2, &z);
        assert_eq!(d.to_bits(), d_ref.to_bits());
        assert_eq!(y2, y_ref);

        // A matrix of a different shape falls back to the generic walk.
        let b = generate::poisson1d::<f64>(32);
        let xb = vec![1.0; 32];
        let mut yb = vec![0.0; 32];
        k.spmv(&b, &xb, &mut yb);
        assert_eq!(yb, b.mul_vec(&xb).unwrap());

        // Counts are charged identically on plan and generic paths.
        let mut plain = SoftwareKernels::new();
        let mut yp = vec![0.0; a.nrows()];
        plain.spmv(&a, &x, &mut yp);
        let mut yq = vec![0.0; a.nrows()];
        let _ = plain.spmv_dot(&a, &x, &mut yq, &z);
        let mut planned = SoftwareKernels::new().with_compiled_plan(plan);
        let mut yr = vec![0.0; a.nrows()];
        planned.spmv(&a, &x, &mut yr);
        let mut ys = vec![0.0; a.nrows()];
        let _ = planned.spmv_dot(&a, &x, &mut ys, &z);
        assert_eq!(
            Kernels::<f64>::counts(&plain),
            Kernels::<f64>::counts(&planned)
        );
    }

    #[test]
    fn compiled_parallel_spmv_is_bitwise_identical_to_serial() {
        let a = generate::poisson2d::<f64>(160, 160); // > 2^16 nnz
        assert!(a.nnz() >= PARALLEL_SPMV_MIN_NNZ);
        let plan = Arc::new(CompiledSpmv::compile_default(&a));
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.017).cos()).collect();
        let mut serial = vec![0.0; a.nrows()];
        let mut sk = SoftwareKernels::new().with_compiled_plan(plan.clone());
        sk.spmv(&a, &x, &mut serial);
        assert_eq!(serial, a.mul_vec(&x).unwrap());
        for threads in [2, 3, 8] {
            let mut k = SoftwareKernels::new()
                .with_compiled_plan(plan.clone())
                .with_spmv_threads(threads);
            let mut y = vec![f64::NAN; a.nrows()];
            k.spmv(&a, &x, &mut y);
            assert_eq!(serial, y, "{threads} threads");
        }
    }

    #[test]
    fn fast_policy_matches_deterministic_accurately_with_identical_counts() {
        use acamar_sparse::generate::RowDistribution;
        let a =
            generate::random_pattern::<f64>(400, RowDistribution::Uniform { min: 1, max: 24 }, 23);
        let plan = Arc::new(CompiledSpmv::compile_default(&a));
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.19).sin()).collect();
        let z: Vec<f64> = (0..a.nrows()).map(|i| 1.0 / (i as f64 + 2.0)).collect();

        let mut det = SoftwareKernels::new().with_compiled_plan(plan.clone());
        assert!(!det.policy().is_fast());
        let mut fast = SoftwareKernels::new()
            .with_compiled_plan(plan)
            .with_policy(DeterminismPolicy::Fast);
        assert!(fast.policy().is_fast());

        let mut y_det = vec![0.0; a.nrows()];
        let d_det = det.spmv_dot(&a, &x, &mut y_det, &z);
        let mut y_fast = vec![0.0; a.nrows()];
        let d_fast = fast.spmv_dot(&a, &x, &mut y_fast, &z);
        assert!((d_fast - d_det).abs() <= 1e-12 * (1.0 + d_det.abs()));
        for (f, d) in y_fast.iter().zip(&y_det) {
            assert!((f - d).abs() <= 1e-12 * (1.0 + d.abs()));
        }

        let dd = det.dot(&x, &x);
        let df = fast.dot(&x, &x);
        assert!((df - dd).abs() <= 1e-12 * (1.0 + dd.abs()));

        let mut ya = y_det.clone();
        let na = det.axpy_normsq(-0.375, &z, &mut ya);
        let mut yb = y_det.clone();
        let nb = fast.axpy_normsq(-0.375, &z, &mut yb);
        // The vector update itself is element-wise on both tiers.
        assert_eq!(ya, yb);
        assert!((nb - na).abs() <= 1e-12 * (1.0 + na.abs()));

        // Both tiers charge the same operation counts.
        assert_eq!(Kernels::<f64>::counts(&det), Kernels::<f64>::counts(&fast));
    }

    #[test]
    fn workspace_backed_buffers_are_recycled_and_zeroed() {
        use crate::workspace::WorkspaceHandle;
        let ws = WorkspaceHandle::new();
        let mut k = SoftwareKernels::new().with_workspace(ws.clone());
        let mut buf: Vec<f64> = k.acquire_buffer(16);
        assert_eq!(buf, vec![0.0; 16]);
        buf.fill(9.0);
        Kernels::<f64>::release_buffer(&mut k, buf);
        let again: Vec<f64> = k.acquire_buffer(16);
        assert_eq!(again, vec![0.0; 16], "recycled buffers come back zeroed");
        assert_eq!(ws.stats(), (1, 1));
    }
}
