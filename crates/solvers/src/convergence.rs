//! Convergence criteria, divergence detection, and solve outcomes.
//!
//! The paper fixes the convergence threshold at `1e-5` for every solver and
//! gives each solver a *setup time* of 200 iterations before divergence is
//! checked (Section V-B). This module encodes those rules.

use std::fmt;

/// Why a solver was declared divergent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceReason {
    /// The residual grew beyond `divergence_growth x` its initial value
    /// after the setup window.
    ResidualGrowth,
    /// A non-finite (NaN/Inf) value appeared.
    NonFinite,
    /// An algorithmic breakdown: a pivotal inner product vanished (BiCG-STAB
    /// ρ/ω, CG with non-positive curvature on an indefinite matrix, a zero
    /// Jacobi diagonal).
    Breakdown(&'static str),
    /// The iteration budget elapsed without reaching the tolerance.
    ///
    /// The paper's Table II treats failure-to-converge and divergence
    /// identically (✗), so budget exhaustion is folded into divergence.
    Stagnation,
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::ResidualGrowth => write!(f, "residual growth"),
            DivergenceReason::NonFinite => write!(f, "non-finite values"),
            DivergenceReason::Breakdown(what) => write!(f, "breakdown: {what}"),
            DivergenceReason::Stagnation => write!(f, "stagnation within iteration budget"),
        }
    }
}

/// Terminal state of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The relative residual dropped below the tolerance.
    Converged,
    /// The solve diverged (or exhausted its budget — see
    /// [`DivergenceReason::Stagnation`]).
    Diverged(DivergenceReason),
}

impl Outcome {
    /// `true` if the solve converged.
    pub fn converged(self) -> bool {
        matches!(self, Outcome::Converged)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Converged => write!(f, "converged"),
            Outcome::Diverged(r) => write!(f, "diverged ({r})"),
        }
    }
}

/// Convergence policy shared by all solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Relative-residual tolerance: converge when `‖r‖/‖b‖ < tolerance`
    /// (absolute when `‖b‖ = 0`). Paper value: `1e-5`.
    pub tolerance: f64,
    /// Hard iteration budget.
    pub max_iterations: usize,
    /// Iterations to run before divergence checks begin (paper: 200).
    pub setup_iterations: usize,
    /// Declare divergence when the relative residual exceeds
    /// `divergence_growth x` its initial value after the setup window.
    pub divergence_growth: f64,
}

impl ConvergenceCriteria {
    /// The paper's settings: tolerance `1e-5`, setup time 200 iterations,
    /// with a 10 000-iteration budget and 1e3 growth factor.
    pub fn paper() -> Self {
        ConvergenceCriteria {
            tolerance: 1e-5,
            max_iterations: 10_000,
            setup_iterations: 200,
            divergence_growth: 1e3,
        }
    }

    /// Returns a copy with a different iteration budget.
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Returns a copy with a different tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        Self::paper()
    }
}

/// Incremental convergence monitor: feed it one relative residual per
/// iteration and it yields the verdict.
#[derive(Debug, Clone)]
pub struct Monitor {
    criteria: ConvergenceCriteria,
    history: Vec<f64>,
    initial: Option<f64>,
}

/// Monitor verdict after observing one more residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep iterating.
    Continue,
    /// Terminal state reached.
    Done(Outcome),
}

impl Monitor {
    /// Creates a monitor for the given criteria.
    ///
    /// The history is reserved up front (capped at 16 Ki entries) so
    /// [`observe`](Monitor::observe) never reallocates inside a solver
    /// loop running a sane iteration budget.
    pub fn new(criteria: ConvergenceCriteria) -> Self {
        let cap = criteria.max_iterations.saturating_add(2).min(16_384);
        Monitor {
            criteria,
            history: Vec::with_capacity(cap),
            initial: None,
        }
    }

    /// Observes the relative residual of the iteration just completed.
    pub fn observe(&mut self, rel_residual: f64) -> Verdict {
        if self.initial.is_none() {
            self.initial = Some(rel_residual.max(f64::MIN_POSITIVE));
        }
        self.history.push(rel_residual);
        let iter = self.history.len();
        if !rel_residual.is_finite() {
            return Verdict::Done(Outcome::Diverged(DivergenceReason::NonFinite));
        }
        if rel_residual < self.criteria.tolerance {
            return Verdict::Done(Outcome::Converged);
        }
        if iter > self.criteria.setup_iterations {
            let initial = self.initial.expect("initialized above");
            if rel_residual > self.criteria.divergence_growth * initial {
                return Verdict::Done(Outcome::Diverged(DivergenceReason::ResidualGrowth));
            }
        }
        if iter >= self.criteria.max_iterations {
            return Verdict::Done(Outcome::Diverged(DivergenceReason::Stagnation));
        }
        Verdict::Continue
    }

    /// All residuals observed so far.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Consumes the monitor, returning the residual history.
    pub fn into_history(self) -> Vec<f64> {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> ConvergenceCriteria {
        ConvergenceCriteria {
            tolerance: 1e-5,
            max_iterations: 10,
            setup_iterations: 3,
            divergence_growth: 10.0,
        }
    }

    #[test]
    fn converges_below_tolerance() {
        let mut m = Monitor::new(crit());
        assert_eq!(m.observe(1.0), Verdict::Continue);
        assert_eq!(m.observe(1e-6), Verdict::Done(Outcome::Converged));
        assert_eq!(m.history(), &[1.0, 1e-6]);
    }

    #[test]
    fn growth_is_tolerated_during_setup_window() {
        let mut m = Monitor::new(crit());
        assert_eq!(m.observe(1.0), Verdict::Continue);
        assert_eq!(m.observe(50.0), Verdict::Continue); // iter 2 <= setup 3
        assert_eq!(m.observe(50.0), Verdict::Continue); // iter 3 <= setup 3
        assert_eq!(
            m.observe(50.0),
            Verdict::Done(Outcome::Diverged(DivergenceReason::ResidualGrowth))
        );
    }

    #[test]
    fn non_finite_is_immediate() {
        let mut m = Monitor::new(crit());
        assert_eq!(
            m.observe(f64::NAN),
            Verdict::Done(Outcome::Diverged(DivergenceReason::NonFinite))
        );
    }

    #[test]
    fn budget_exhaustion_is_stagnation() {
        let mut m = Monitor::new(crit());
        for _ in 0..9 {
            assert_eq!(m.observe(0.5), Verdict::Continue);
        }
        assert_eq!(
            m.observe(0.5),
            Verdict::Done(Outcome::Diverged(DivergenceReason::Stagnation))
        );
    }

    #[test]
    fn outcome_display_and_predicates() {
        assert!(Outcome::Converged.converged());
        let d = Outcome::Diverged(DivergenceReason::Breakdown("rho = 0"));
        assert!(!d.converged());
        assert_eq!(d.to_string(), "diverged (breakdown: rho = 0)");
    }

    #[test]
    fn paper_defaults() {
        let c = ConvergenceCriteria::paper();
        assert_eq!(c.tolerance, 1e-5);
        assert_eq!(c.setup_iterations, 200);
        let c2 = c.with_max_iterations(5).with_tolerance(1e-3);
        assert_eq!(c2.max_iterations, 5);
        assert_eq!(c2.tolerance, 1e-3);
        assert_eq!(ConvergenceCriteria::default(), ConvergenceCriteria::paper());
    }
}
