//! Jacobi-preconditioned Conjugate Gradient.
//!
//! Table I of the paper lists Preconditioned CG among the iterative
//! methods; this is the standard diagonally-preconditioned variant
//! (`M = diag(A)`), an extension solver beyond Acamar's three
//! reconfiguration targets. The preconditioner application is a cheap
//! elementwise scaling, so it maps onto the same dense units the fabric
//! already has.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with diagonally-preconditioned CG.
///
/// Requires `A` symmetric positive definite (with a nonzero diagonal for
/// the preconditioner). On badly scaled SPD systems — e.g. the paper's
/// `beircuit`-class matrices — the diagonal preconditioner flattens the
/// spectrum and converges in far fewer iterations than plain CG.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{preconditioned_cg, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::ill_conditioned_spd::<f64>(200, 1e6, 2, 7);
/// let b = vec![1.0; 200];
/// let mut k = SoftwareKernels::new();
/// let rep = preconditioned_cg(&a, &b, None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn preconditioned_cg<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let diag = a.diagonal();
    if diag.contains(&T::ZERO) {
        return Ok(SolveReport {
            solver: SolverKind::PreconditionedCg,
            outcome: Outcome::Diverged(DivergenceReason::Breakdown(
                "zero diagonal (preconditioner undefined)",
            )),
            iterations: 0,
            residual_history: Vec::new(),
            solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
            counts: kernels.counts().since(&start_counts),
        });
    }
    let mut inv_d = kernels.acquire_buffer(n);
    for (slot, &d) in inv_d.iter_mut().zip(&diag) {
        *slot = T::ONE / d;
    }

    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r);
    kernels.scale(-T::ONE, &mut r);
    kernels.axpy(T::ONE, b, &mut r); // r = b - A x0
    let mut z = kernels.acquire_buffer(n);
    kernels.hadamard(&inv_d, &r, &mut z); // z = M^{-1} r
    let mut p = kernels.acquire_buffer(n);
    kernels.copy(&z, &mut p);
    let mut rz = kernels.dot(&r, &z);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut ap = kernels.acquire_buffer(n);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        let r_norm = kernels.norm2(&r).to_f64();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        let p_ap = kernels.spmv_dot(a, &p, &mut ap, &p);
        iterations += 1;
        if !p_ap.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        if p_ap <= T::ZERO {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown(
                "non-positive curvature (matrix not positive definite)",
            ));
        }
        let alpha = rz / p_ap;
        kernels.axpy(alpha, &p, &mut x);
        kernels.axpy(-alpha, &ap, &mut r);
        kernels.hadamard(&inv_d, &r, &mut z);
        let rz_new = kernels.dot(&r, &z);
        let res = kernels.norm2(&r).to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        let beta = rz_new / rz;
        rz = rz_new;
        kernels.xpby(&z, beta, &mut p); // p = z + beta p
    };

    kernels.release_buffer(inv_d);
    kernels.release_buffer(r);
    kernels.release_buffer(z);
    kernels.release_buffer(p);
    kernels.release_buffer(ap);
    Ok(SolveReport {
        solver: SolverKind::PreconditionedCg,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::conjugate_gradient;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate;

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn converges_on_poisson() {
        let a = generate::poisson2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
    }

    #[test]
    fn beats_plain_cg_on_badly_scaled_spd() {
        let a = generate::ill_conditioned_spd::<f64>(300, 1e8, 2, 5);
        let b = vec![1.0; 300];
        let mut k1 = SoftwareKernels::new();
        let pcg = preconditioned_cg(&a, &b, None, &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let cg = conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(pcg.converged());
        if cg.converged() {
            assert!(
                pcg.iterations < cg.iterations,
                "PCG {} vs CG {}",
                pcg.iterations,
                cg.iterations
            );
        }
    }

    #[test]
    fn zero_diagonal_is_breakdown() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &[1.0, 1.0], None, &criteria(), &mut k).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }

    #[test]
    fn agrees_with_cg_solution_on_spd_system() {
        let a = generate::spd_from_pattern::<f64>(
            120,
            acamar_sparse::generate::RowDistribution::Uniform { min: 2, max: 6 },
            0.3,
            9,
        );
        let x_true: Vec<f64> = (0..120).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        let err = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max error {err}");
    }

    #[test]
    fn exact_guess_converges_immediately() {
        let a = generate::poisson1d::<f64>(16);
        let x_true = vec![2.0; 16];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }
}
