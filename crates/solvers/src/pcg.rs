//! Preconditioned Conjugate Gradient (Jacobi and IC(0) variants).
//!
//! Table I of the paper lists Preconditioned CG among the iterative
//! methods. Two preconditioners are provided through one solver loop:
//! the diagonal (Jacobi) scaling `M = diag(A)` — a cheap elementwise
//! kernel that maps onto the dense units the fabric already has — and
//! incomplete Cholesky `M = L Lᵀ` (see [`Ic0`]), whose two substitution
//! passes run as level-scheduled [`acamar_sparse::CompiledSptrsv`]
//! executions (DESIGN §17).

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::ic0::Ic0;
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CompiledSptrsv, CsrMatrix, Scalar, SparseError};

/// Which preconditioner [`preconditioned_cg_with`] applies each iteration.
#[derive(Debug)]
pub enum Preconditioner<'a, T> {
    /// Diagonal (Jacobi) scaling: `M = diag(A)`.
    Jacobi,
    /// Incomplete Cholesky: `M = L Lᵀ`, applied as forward + backward
    /// level-scheduled substitution through the executor's
    /// [`Kernels::sptrsv`].
    Ic0 {
        /// The factorization to apply.
        factors: &'a Ic0<T>,
        /// Level schedule for the forward (`L`) pass.
        lower: &'a CompiledSptrsv,
        /// Level schedule for the backward (`Lᵀ`) pass.
        upper: &'a CompiledSptrsv,
    },
}

/// Per-solve scratch owned by the preconditioner application.
enum PrecondState<T> {
    Jacobi { inv_d: Vec<T> },
    Ic0 { tmp: Vec<T> },
}

fn apply_precond<T: Scalar, K: Kernels<T>>(
    kernels: &mut K,
    precond: &Preconditioner<'_, T>,
    state: &mut PrecondState<T>,
    r: &[T],
    z: &mut [T],
) {
    match (precond, state) {
        (Preconditioner::Jacobi, PrecondState::Jacobi { inv_d }) => {
            kernels.hadamard(inv_d, r, z);
        }
        (
            Preconditioner::Ic0 {
                factors,
                lower,
                upper,
            },
            PrecondState::Ic0 { tmp },
        ) => {
            factors.apply(kernels, lower, upper, r, tmp, z);
        }
        _ => unreachable!("preconditioner state mismatch"),
    }
}

/// Solves `A x = b` with diagonally-preconditioned CG.
///
/// Requires `A` symmetric positive definite (with a nonzero diagonal for
/// the preconditioner). On badly scaled SPD systems — e.g. the paper's
/// `beircuit`-class matrices — the diagonal preconditioner flattens the
/// spectrum and converges in far fewer iterations than plain CG.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{preconditioned_cg, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::ill_conditioned_spd::<f64>(200, 1e6, 2, 7);
/// let b = vec![1.0; 200];
/// let mut k = SoftwareKernels::new();
/// let rep = preconditioned_cg(&a, &b, None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn preconditioned_cg<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    preconditioned_cg_with(a, b, x0, criteria, kernels, &Preconditioner::Jacobi)
}

/// Solves `A x = b` with CG preconditioned by `precond`.
///
/// The loop structure, fused kernels, and convergence monitoring are
/// identical across preconditioners; only the `z = M⁻¹ r` application
/// differs. All scratch comes from the executor's buffer pool, so warm
/// solves are allocation-free.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
pub fn preconditioned_cg_with<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
    precond: &Preconditioner<'_, T>,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let mut state = match precond {
        Preconditioner::Jacobi => {
            let diag = a.diagonal();
            if diag.contains(&T::ZERO) {
                return Ok(SolveReport {
                    solver: SolverKind::PreconditionedCg,
                    outcome: Outcome::Diverged(DivergenceReason::Breakdown(
                        "zero diagonal (preconditioner undefined)",
                    )),
                    iterations: 0,
                    residual_history: Vec::new(),
                    solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
                    counts: kernels.counts().since(&start_counts),
                });
            }
            let mut inv_d = kernels.acquire_buffer(n);
            for (slot, &d) in inv_d.iter_mut().zip(&diag) {
                *slot = T::ONE / d;
            }
            PrecondState::Jacobi { inv_d }
        }
        Preconditioner::Ic0 { .. } => PrecondState::Ic0 {
            tmp: kernels.acquire_buffer(n),
        },
    };

    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r);
    kernels.scale(-T::ONE, &mut r);
    kernels.axpy(T::ONE, b, &mut r); // r = b - A x0
    let mut z = kernels.acquire_buffer(n);
    apply_precond(kernels, precond, &mut state, &r, &mut z); // z = M^{-1} r
    let mut p = kernels.acquire_buffer(n);
    kernels.copy(&z, &mut p);
    let mut rz = kernels.dot(&r, &z);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut ap = kernels.acquire_buffer(n);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        let r_norm = kernels.norm2(&r).to_f64();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        let p_ap = kernels.spmv_dot(a, &p, &mut ap, &p);
        iterations += 1;
        if !p_ap.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        if p_ap <= T::ZERO {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown(
                "non-positive curvature (matrix not positive definite)",
            ));
        }
        let alpha = rz / p_ap;
        kernels.axpy(alpha, &p, &mut x);
        kernels.axpy(-alpha, &ap, &mut r);
        apply_precond(kernels, precond, &mut state, &r, &mut z);
        let rz_new = kernels.dot(&r, &z);
        let res = kernels.norm2(&r).to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        let beta = rz_new / rz;
        rz = rz_new;
        kernels.xpby(&z, beta, &mut p); // p = z + beta p
    };

    match state {
        PrecondState::Jacobi { inv_d } => kernels.release_buffer(inv_d),
        PrecondState::Ic0 { tmp } => kernels.release_buffer(tmp),
    }
    kernels.release_buffer(r);
    kernels.release_buffer(z);
    kernels.release_buffer(p);
    kernels.release_buffer(ap);
    Ok(SolveReport {
        solver: SolverKind::PreconditionedCg,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

/// Solves with IC(0)-preconditioned CG, factoring `A` up front and
/// reusing cached level schedules for the substitution passes; falls back
/// to Jacobi scaling when the incomplete factorization breaks down (the
/// classic non-SPD/indefinite-pivot case).
///
/// `plans`, when provided, must be the `(lower, upper)` schedules
/// compiled from `A`'s own triangles — exactly what the engine caches per
/// pattern fingerprint. When `None`, schedules are compiled here from
/// the factors.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
pub fn ic0_preconditioned_cg<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
    plans: Option<(&CompiledSptrsv, &CompiledSptrsv)>,
) -> Result<SolveReport<T>, SparseError> {
    match Ic0::factor(a) {
        Ok(ic) => {
            let compiled;
            let (lower, upper) = match plans {
                Some(pair) => pair,
                None => {
                    compiled = ic.plans()?;
                    (&compiled.0, &compiled.1)
                }
            };
            preconditioned_cg_with(
                a,
                b,
                x0,
                criteria,
                kernels,
                &Preconditioner::Ic0 {
                    factors: &ic,
                    lower,
                    upper,
                },
            )
        }
        Err(_) => preconditioned_cg(a, b, x0, criteria, kernels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::conjugate_gradient;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate;

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn converges_on_poisson() {
        let a = generate::poisson2d::<f64>(10, 10);
        let b = vec![1.0; 100];
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
    }

    #[test]
    fn beats_plain_cg_on_badly_scaled_spd() {
        let a = generate::ill_conditioned_spd::<f64>(300, 1e8, 2, 5);
        let b = vec![1.0; 300];
        let mut k1 = SoftwareKernels::new();
        let pcg = preconditioned_cg(&a, &b, None, &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let cg = conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(pcg.converged());
        if cg.converged() {
            assert!(
                pcg.iterations < cg.iterations,
                "PCG {} vs CG {}",
                pcg.iterations,
                cg.iterations
            );
        }
    }

    #[test]
    fn ic0_beats_plain_cg_on_poisson() {
        // On the constant-diagonal Poisson operator Jacobi scaling is a
        // no-op, but IC(0) cuts the iteration count severalfold.
        let a = generate::poisson2d::<f64>(24, 24);
        let b = vec![1.0; a.nrows()];
        let mut k1 = SoftwareKernels::new();
        let icpcg = ic0_preconditioned_cg(&a, &b, None, &criteria(), &mut k1, None).unwrap();
        let mut k2 = SoftwareKernels::new();
        let cg = conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(icpcg.converged());
        assert!(cg.converged());
        assert!(
            icpcg.iterations * 2 <= cg.iterations,
            "IC(0)-PCG {} vs CG {}",
            icpcg.iterations,
            cg.iterations
        );
    }

    #[test]
    fn ic0_with_cached_plans_matches_self_compiled() {
        let a = generate::poisson2d::<f64>(12, 12);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
        let lower = CompiledSptrsv::compile_lower(&a).unwrap();
        let upper = CompiledSptrsv::compile_upper(&a).unwrap();
        let mut k1 = SoftwareKernels::new();
        let cached =
            ic0_preconditioned_cg(&a, &b, None, &criteria(), &mut k1, Some((&lower, &upper)))
                .unwrap();
        let mut k2 = SoftwareKernels::new();
        let fresh = ic0_preconditioned_cg(&a, &b, None, &criteria(), &mut k2, None).unwrap();
        assert_eq!(cached.iterations, fresh.iterations);
        assert_eq!(
            cached
                .solution
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            fresh
                .solution
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ic0_breakdown_falls_back_to_jacobi() {
        // Strictly diagonally dominant but with a negative diagonal entry
        // pattern that defeats IC(0)? Use an indefinite matrix: IC(0)
        // breaks down, Jacobi-PCG still runs (and may diverge, but must
        // return a report rather than an error).
        let a = generate::indefinite_diagonally_dominant::<f64>(
            60,
            acamar_sparse::generate::RowDistribution::Uniform { min: 2, max: 5 },
            2.0,
            11,
        );
        let b = vec![1.0; 60];
        let mut k = SoftwareKernels::new();
        let rep = ic0_preconditioned_cg(&a, &b, None, &criteria(), &mut k, None).unwrap();
        assert_eq!(rep.solver, SolverKind::PreconditionedCg);
    }

    #[test]
    fn zero_diagonal_is_breakdown() {
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &[1.0, 1.0], None, &criteria(), &mut k).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
    }

    #[test]
    fn agrees_with_cg_solution_on_spd_system() {
        let a = generate::spd_from_pattern::<f64>(
            120,
            acamar_sparse::generate::RowDistribution::Uniform { min: 2, max: 6 },
            0.3,
            9,
        );
        let x_true: Vec<f64> = (0..120).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        let err = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max error {err}");
    }

    #[test]
    fn exact_guess_converges_immediately() {
        let a = generate::poisson1d::<f64>(16);
        let x_true = vec![2.0; 16];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = preconditioned_cg(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }
}
