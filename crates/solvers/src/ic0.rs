//! Incomplete Cholesky factorization with zero fill-in (IC(0)).
//!
//! For a symmetric positive-definite matrix, `A ≈ L Lᵀ` restricted to
//! the lower-triangle pattern of `A` is the natural symmetric analogue
//! of ILU(0): half the storage, and the preconditioner of choice for the
//! Laplacian/stencil systems the new dataset generators produce (DESIGN
//! §17). Both factors are materialized (`L` and `Lᵀ` as CSR), so the
//! two applications per CG iteration each run as a level-scheduled
//! [`CompiledSptrsv`] pass through the [`Kernels`] executor — including
//! the fabric twin, with its cycle model and fault seam.

use crate::kernels::Kernels;
use acamar_sparse::{CompiledSptrsv, CsrMatrix, Scalar, SparseError};

/// An IC(0) factorization `A ≈ L Lᵀ` on the lower-triangle pattern of `A`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ic0<T> {
    l: CsrMatrix<T>,
    lt: CsrMatrix<T>,
}

impl<T: Scalar> Ic0<T> {
    /// Factors the lower triangle of `a` (upper entries are ignored, so
    /// symmetric matrices need no pre-extraction).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::ZeroDiagonal`] when a pivot is structurally missing
    /// or collapses to a non-positive value — on this pattern the
    /// incomplete Cholesky factorization does not exist (the classic
    /// breakdown callers handle by falling back to Jacobi scaling).
    pub fn factor(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        // Extract tril(a) including the diagonal into fresh CSR arrays.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut diag_pos = vec![usize::MAX; n];
        row_ptr.push(0usize);
        for (i, dp) in diag_pos.iter_mut().enumerate() {
            let (rcols, rvals) = a.row(i);
            for (&c, &v) in rcols.iter().zip(rvals) {
                if c > i {
                    continue;
                }
                if c == i {
                    *dp = cols.len();
                }
                cols.push(c);
                vals.push(v);
            }
            if *dp == usize::MAX {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            row_ptr.push(cols.len());
        }
        // Left-looking IC(0): for each in-pattern entry (i, j), j <= i,
        //   l_ij = (a_ij - Σ_k l_ik l_jk) / l_jj          for j < i
        //   l_ii = sqrt(a_ii - Σ_k l_ik²)
        // with the correction sum running over the common pattern k < j.
        for i in 0..n {
            for idx in row_ptr[i]..row_ptr[i + 1] {
                let j = cols[idx];
                // Two-pointer merge of rows i and j over columns < j.
                let mut s = vals[idx];
                let mut pi = row_ptr[i];
                let mut pj = row_ptr[j];
                let i_end = row_ptr[i + 1];
                let j_end = row_ptr[j + 1];
                while pi < i_end && pj < j_end && cols[pi] < j && cols[pj] < j {
                    match cols[pi].cmp(&cols[pj]) {
                        std::cmp::Ordering::Less => pi += 1,
                        std::cmp::Ordering::Greater => pj += 1,
                        std::cmp::Ordering::Equal => {
                            s -= vals[pi] * vals[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
                if j < i {
                    vals[idx] = s / vals[diag_pos[j]];
                } else if s.to_f64() > 0.0 {
                    vals[idx] = s.sqrt();
                } else {
                    return Err(SparseError::ZeroDiagonal { row: i });
                }
            }
        }
        let l = CsrMatrix::try_from_parts(n, n, row_ptr, cols, vals)?;
        let lt = l.transpose();
        Ok(Ic0 { l, lt })
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &CsrMatrix<T> {
        &self.l
    }

    /// The transposed factor `Lᵀ` (upper triangular).
    pub fn upper(&self) -> &CsrMatrix<T> {
        &self.lt
    }

    /// Compiles level schedules for the two substitution passes.
    ///
    /// When the factored matrix was symmetric these equal the plans
    /// compiled from the matrix itself, which is what lets the engine
    /// cache them per pattern fingerprint ahead of factorization.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledSptrsv`] compile errors (cannot occur for a
    /// successfully factored matrix).
    pub fn plans(&self) -> Result<(CompiledSptrsv, CompiledSptrsv), SparseError> {
        Ok((
            CompiledSptrsv::compile_lower(&self.l)?,
            CompiledSptrsv::compile_upper(&self.lt)?,
        ))
    }

    /// Applies the preconditioner: `z = (L Lᵀ)⁻¹ r` via forward then
    /// backward substitution through `kernels`. `tmp` is caller-provided
    /// scratch of length `n` so warm loops stay allocation-free.
    ///
    /// # Panics
    ///
    /// Panics (in the executor) if the plans do not match the factors or
    /// the vector lengths disagree.
    pub fn apply<K: Kernels<T>>(
        &self,
        kernels: &mut K,
        lower_plan: &CompiledSptrsv,
        upper_plan: &CompiledSptrsv,
        r: &[T],
        tmp: &mut [T],
        z: &mut [T],
    ) {
        kernels.sptrsv(lower_plan, &self.l, r, tmp);
        kernels.sptrsv(upper_plan, &self.lt, tmp, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate;

    #[test]
    fn ic0_reconstructs_tridiagonal_exactly() {
        // Tridiagonal SPD matrices factor with zero fill, so L Lᵀ = A.
        let a = generate::poisson1d::<f64>(16);
        let ic = Ic0::factor(&a).unwrap();
        let l = ic.lower();
        let n = a.nrows();
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += l.get(i, k) * l.get(j, k);
                }
                assert!((sum - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn ic0_apply_inverts_l_lt() {
        let a = generate::poisson2d::<f64>(6, 6);
        let ic = Ic0::factor(&a).unwrap();
        let (lp, up) = ic.plans().unwrap();
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut tmp = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut k = SoftwareKernels::new();
        ic.apply(&mut k, &lp, &up, &r, &mut tmp, &mut z);
        // L Lᵀ z should reproduce r.
        let mut ltz = vec![0.0; n];
        ic.upper().mul_vec_into(&z, &mut ltz).unwrap();
        let mut back = vec![0.0; n];
        ic.lower().mul_vec_into(&ltz, &mut back).unwrap();
        for (bi, ri) in back.iter().zip(&r) {
            assert!((bi - ri).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_pivot_breaks_down() {
        // -A has negative diagonal, so the first pivot sqrt fails.
        let mut a = generate::poisson1d::<f64>(4);
        for v in a.values_mut() {
            *v = -*v;
        }
        assert!(matches!(
            Ic0::factor(&a),
            Err(SparseError::ZeroDiagonal { row: 0 })
        ));
    }

    #[test]
    fn factor_plans_match_matrix_plans() {
        // Symmetric input: pattern of L == tril(A), so plans compiled
        // from A are interchangeable with plans compiled from L.
        let a = generate::poisson2d::<f64>(5, 7);
        let ic = Ic0::factor(&a).unwrap();
        let (lp, up) = ic.plans().unwrap();
        assert_eq!(lp, CompiledSptrsv::compile_lower(&a).unwrap());
        assert_eq!(up, CompiledSptrsv::compile_upper(&a).unwrap());
    }
}
