//! Incomplete LU factorization with zero fill-in (ILU(0)) and the
//! ILU-preconditioned CG solver.
//!
//! ILU(0) computes `A ≈ L U` restricted to `A`'s sparsity pattern — the
//! classic general-purpose preconditioner for the `Ax = b` systems the
//! paper targets. The factorization and the triangular solves are
//! inherently sequential, so (like Gauss-Seidel) this is a software
//! reference component rather than a fabric-mapped kernel.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::OpCounts;
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// An ILU(0) factorization of a square sparse matrix.
///
/// Stored as one CSR matrix holding both factors: strictly-lower entries
/// belong to `L` (which has an implicit unit diagonal), diagonal and
/// upper entries belong to `U`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ilu0<T> {
    factors: CsrMatrix<T>,
}

impl<T: Scalar> Ilu0<T> {
    /// Factors `a` in place of its own pattern (IKJ variant).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::ZeroDiagonal`] when a pivot vanishes (the
    /// factorization does not exist on this pattern).
    pub fn factor(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut f = a.clone();
        // Positions of each row's diagonal in the value array.
        let mut diag_pos = vec![usize::MAX; n];
        {
            let row_ptr = f.row_ptr().to_vec();
            let col_idx = f.col_idx().to_vec();
            for i in 0..n {
                for (k, &c) in col_idx
                    .iter()
                    .enumerate()
                    .take(row_ptr[i + 1])
                    .skip(row_ptr[i])
                {
                    if c == i {
                        diag_pos[i] = k;
                    }
                }
                if diag_pos[i] == usize::MAX {
                    return Err(SparseError::ZeroDiagonal { row: i });
                }
            }
        }
        let row_ptr = f.row_ptr().to_vec();
        let col_idx = f.col_idx().to_vec();
        for i in 1..n {
            // Eliminate columns k < i present in row i.
            for kk in row_ptr[i]..row_ptr[i + 1] {
                let k = col_idx[kk];
                if k >= i {
                    break;
                }
                let pivot = f.values()[diag_pos[k]];
                if pivot == T::ZERO {
                    return Err(SparseError::ZeroDiagonal { row: k });
                }
                let lik = f.values()[kk] / pivot;
                f.values_mut()[kk] = lik;
                // Row_i -= lik * U-part of Row_k, restricted to pattern.
                let mut jj = kk + 1;
                for uk in diag_pos[k] + 1..row_ptr[k + 1] {
                    let j = col_idx[uk];
                    // advance jj to column j in row i if present
                    while jj < row_ptr[i + 1] && col_idx[jj] < j {
                        jj += 1;
                    }
                    if jj < row_ptr[i + 1] && col_idx[jj] == j {
                        let ukj = f.values()[uk];
                        f.values_mut()[jj] -= lik * ukj;
                    }
                }
            }
            if f.values()[diag_pos[i]] == T::ZERO {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
        }
        Ok(Ilu0 { factors: f })
    }

    /// The combined factor matrix (strict lower = `L`, rest = `U`).
    pub fn factors(&self) -> &CsrMatrix<T> {
        &self.factors
    }

    /// Applies the preconditioner: solves `L U z = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differ from the matrix dimension.
    pub fn apply(&self, r: &[T], z: &mut [T]) {
        let n = self.factors.nrows();
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(z.len(), n, "output length mismatch");
        // forward: L y = r (unit diagonal), y stored in z
        for i in 0..n {
            let (cols, vals) = self.factors.row(i);
            let mut acc = r[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c >= i {
                    break;
                }
                acc -= v * z[c];
            }
            z[i] = acc;
        }
        // backward: U z = y
        for i in (0..n).rev() {
            let (cols, vals) = self.factors.row(i);
            let mut acc = z[i];
            let mut diag = T::ONE;
            for (&c, &v) in cols.iter().zip(vals) {
                use std::cmp::Ordering::*;
                match c.cmp(&i) {
                    Greater => acc -= v * z[c],
                    Equal => diag = v,
                    Less => {}
                }
            }
            z[i] = acc / diag;
        }
    }
}

/// Solves `A x = b` with ILU(0)-preconditioned CG (software reference).
///
/// Requires `A` symmetric positive definite for the CG theory to apply
/// (the ILU factors of an SPD matrix on a symmetric pattern act as an
/// incomplete Cholesky-like preconditioner).
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems; a failed factorization
/// (zero pivot) is reported as a breakdown outcome.
pub fn ilu_pcg<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let mut counts = OpCounts::default();
    let ilu = match Ilu0::factor(a) {
        Ok(f) => f,
        Err(SparseError::ZeroDiagonal { .. }) => {
            return Ok(SolveReport {
                solver: SolverKind::PreconditionedCg,
                outcome: Outcome::Diverged(DivergenceReason::Breakdown("ILU(0) pivot vanished")),
                iterations: 0,
                residual_history: Vec::new(),
                solution: x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]),
                counts,
            })
        }
        Err(e) => return Err(e),
    };

    let dot = |counts: &mut OpCounts, x: &[T], y: &[T]| -> T {
        counts.dense_calls += 1;
        counts.dense_flops += 2 * x.len() as u64;
        x.iter().zip(y).fold(T::ZERO, |acc, (&u, &v)| acc + u * v)
    };
    let spmv = |counts: &mut OpCounts, m: &CsrMatrix<T>, x: &[T], y: &mut [T]| {
        m.mul_vec_into(x, y).expect("shape checked");
        counts.spmv_calls += 1;
        counts.spmv_nnz_processed += m.nnz() as u64;
        counts.spmv_flops += 2 * m.nnz() as u64;
    };
    let apply = |counts: &mut OpCounts, r: &[T], z: &mut [T]| {
        ilu.apply(r, z);
        // two triangular sweeps over the factor pattern
        counts.spmv_calls += 1;
        counts.spmv_nnz_processed += ilu.factors().nnz() as u64;
        counts.spmv_flops += 2 * ilu.factors().nnz() as u64;
    };

    let mut x = x0.map(|x| x.to_vec()).unwrap_or_else(|| vec![T::ZERO; n]);
    let mut r = vec![T::ZERO; n];
    spmv(&mut counts, a, &x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut z = vec![T::ZERO; n];
    apply(&mut counts, &r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&mut counts, &r, &z);
    let b_norm = dot(&mut counts, b, b).to_f64().max(0.0).sqrt();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut ap = vec![T::ZERO; n];
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;
    let outcome = loop {
        let r_norm = dot(&mut counts, &r, &r).to_f64().max(0.0).sqrt();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        spmv(&mut counts, a, &p, &mut ap);
        let p_ap = dot(&mut counts, &ap, &p);
        iterations += 1;
        if !p_ap.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        if p_ap <= T::ZERO {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown(
                "non-positive curvature (matrix not positive definite)",
            ));
        }
        let alpha = rz / p_ap;
        for (xi, &pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        for (ri, &api) in r.iter_mut().zip(&ap) {
            *ri -= alpha * api;
        }
        counts.dense_calls += 2;
        counts.dense_flops += 4 * n as u64;
        apply(&mut counts, &r, &mut z);
        let rz_new = dot(&mut counts, &r, &z);
        let res = dot(&mut counts, &r, &r).to_f64().max(0.0).sqrt() / scale;
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        counts.dense_calls += 1;
        counts.dense_flops += 2 * n as u64;
    };

    Ok(SolveReport {
        solver: SolverKind::PreconditionedCg,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::conjugate_gradient;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate;

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn factorization_is_exact_for_tridiagonal() {
        // Tridiagonal matrices have no fill-in, so ILU(0) == LU and
        // apply() solves exactly.
        let a = generate::poisson1d::<f64>(20);
        let ilu = Ilu0::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..20).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut z = vec![0.0; 20];
        ilu.apply(&b, &mut z);
        for (zi, xi) in z.iter().zip(&x_true) {
            assert!((zi - xi).abs() < 1e-10, "{zi} vs {xi}");
        }
    }

    #[test]
    fn factorization_reproduces_lu_product_on_pattern() {
        let a = generate::poisson2d::<f64>(5, 5);
        let ilu = Ilu0::factor(&a).unwrap();
        let f = ilu.factors();
        // (L U)(i, j) must equal A(i, j) on the pattern of A.
        let n = a.nrows();
        for i in 0..n {
            let (cols, _) = a.row(i);
            for &j in cols {
                let mut lu = 0.0;
                for k in 0..=i.min(j) {
                    let lik = if k == i { 1.0 } else { f.get(i, k) };
                    let ukj = if k <= j { f.get(k, j) } else { 0.0 };
                    if k <= i {
                        lu += if k == i { ukj } else { lik * ukj };
                    }
                }
                assert!(
                    (lu - a.get(i, j)).abs() < 1e-8,
                    "LU({i},{j}) = {lu} vs A = {}",
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn ilu_pcg_converges_faster_than_cg_on_poisson() {
        let a = generate::poisson2d::<f64>(20, 20);
        let b = vec![1.0; 400];
        let pcg = ilu_pcg(&a, &b, None, &criteria()).unwrap();
        let mut k = SoftwareKernels::new();
        let cg = conjugate_gradient(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(pcg.converged() && cg.converged());
        assert!(
            pcg.iterations < cg.iterations,
            "ILU-PCG {} vs CG {}",
            pcg.iterations,
            cg.iterations
        );
        // and the answer is right
        let r = a.mul_vec(&pcg.solution).unwrap();
        let res: f64 = r
            .iter()
            .zip(&b)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-3 * 20.0);
    }

    #[test]
    fn zero_pivot_is_breakdown_outcome() {
        // [[0, 1], [1, 0]]: diagonal entries are structurally absent.
        let a =
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0_f64, 1.0]).unwrap();
        let rep = ilu_pcg(&a, &[1.0, 1.0], None, &criteria()).unwrap();
        assert!(matches!(
            rep.outcome,
            Outcome::Diverged(DivergenceReason::Breakdown(_))
        ));
        assert!(Ilu0::factor(&a).is_err());
    }

    #[test]
    fn rectangular_input_is_an_error() {
        let a = CsrMatrix::try_from_parts(1, 2, vec![0, 1], vec![0], vec![1.0_f64]).unwrap();
        assert!(matches!(
            Ilu0::factor(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn exact_guess_converges_immediately() {
        let a = generate::poisson1d::<f64>(12);
        let x_true = vec![1.0; 12];
        let b = a.mul_vec(&x_true).unwrap();
        let rep = ilu_pcg(&a, &b, Some(&x_true), &criteria()).unwrap();
        assert!(rep.converged());
        assert_eq!(rep.iterations, 0);
    }
}
