//! Bi-Conjugate Gradient (BiCG) and Conjugate Residual (CR).
//!
//! Both appear in the paper's Table I of iterative methods (BiCG for
//! non-symmetric systems, CR for Hermitian ones). BiCG is the
//! two-sided ancestor of BiCG-STAB (Algorithm 3 stabilizes it); CR is
//! CG's minimum-residual sibling for SPD systems. They complete the
//! executable coverage of Table I.

use crate::convergence::{ConvergenceCriteria, DivergenceReason, Monitor, Outcome, Verdict};
use crate::jacobi::check_square_system;
use crate::kernels::{Kernels, Phase};
use crate::report::SolveReport;
use crate::selection::SolverKind;
use acamar_sparse::{CsrMatrix, Scalar, SparseError};

/// Solves `A x = b` with the Bi-Conjugate Gradient method.
///
/// Suitable for non-symmetric systems. Each iteration performs one
/// product with `A` and one with `Aᵀ` (computed on a host-side transpose,
/// like the Matrix Structure unit's CSC view). Breakdown of the
/// bi-orthogonal recurrence (`ρ` or `(p*, Ap)` vanishing) is reported as
/// divergence — BiCG is *less* robust than BiCG-STAB, which is exactly
/// why the paper's accelerator uses the stabilized variant.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
///
/// # Examples
///
/// ```
/// use acamar_solvers::{bicg, ConvergenceCriteria, SoftwareKernels};
/// use acamar_sparse::generate;
///
/// let a = generate::convection_diffusion_2d::<f64>(8, 8, 1.5);
/// let mut k = SoftwareKernels::new();
/// let rep = bicg(&a, &vec![1.0; 64], None, &ConvergenceCriteria::paper(), &mut k)?;
/// assert!(rep.converged());
/// # Ok::<(), acamar_sparse::SparseError>(())
/// ```
pub fn bicg<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let at = a.transpose(); // host-side, like the CSC symmetry check
    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r);
    kernels.scale(-T::ONE, &mut r);
    kernels.axpy(T::ONE, b, &mut r); // r = b - A x
    let mut rs = kernels.acquire_buffer(n); // shadow residual r* = r
    rs.copy_from_slice(&r);
    let mut p = kernels.acquire_buffer(n);
    p.copy_from_slice(&r);
    let mut ps = kernels.acquire_buffer(n);
    ps.copy_from_slice(&rs);
    let mut rho = kernels.dot(&rs, &r);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };
    let tiny = T::epsilon().to_f64() * T::epsilon().to_f64();

    let mut ap = kernels.acquire_buffer(n);
    let mut atps = kernels.acquire_buffer(n);
    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        let r_norm = kernels.norm2(&r).to_f64();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        kernels.spmv(a, &p, &mut ap);
        kernels.spmv(&at, &ps, &mut atps);
        let denom = kernels.dot(&ps, &ap);
        iterations += 1;
        if !denom.is_finite() || denom.to_f64().abs() <= tiny * scale * scale {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown("(p*, Ap) vanished"));
        }
        let alpha = rho / denom;
        kernels.axpy(alpha, &p, &mut x);
        kernels.axpy(-alpha, &ap, &mut r);
        kernels.axpy(-alpha, &atps, &mut rs);
        let rho_new = kernels.dot(&rs, &r);
        let res = kernels.norm2(&r).to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        if !rho_new.is_finite() || rho_new.to_f64().abs() <= tiny * scale * scale {
            break Outcome::Diverged(DivergenceReason::Breakdown("rho = (r*, r) vanished"));
        }
        let beta = rho_new / rho;
        rho = rho_new;
        kernels.xpby(&r, beta, &mut p); // p = r + beta p
        kernels.xpby(&rs, beta, &mut ps); // p* = r* + beta p*
    };

    kernels.release_buffer(r);
    kernels.release_buffer(rs);
    kernels.release_buffer(p);
    kernels.release_buffer(ps);
    kernels.release_buffer(ap);
    kernels.release_buffer(atps);
    Ok(SolveReport {
        solver: SolverKind::BiCg,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

/// Solves `A x = b` with the Conjugate Residual method.
///
/// Requires `A` symmetric positive definite (the "Hermitian" row of the
/// paper's Table I); minimizes `‖r‖₂` at each step (CG minimizes the
/// `A`-norm of the error instead), so the residual history is monotone.
///
/// # Errors
///
/// Returns [`SparseError`] for shape problems.
pub fn conjugate_residual<T: Scalar, K: Kernels<T>>(
    a: &CsrMatrix<T>,
    b: &[T],
    x0: Option<&[T]>,
    criteria: &ConvergenceCriteria,
    kernels: &mut K,
) -> Result<SolveReport<T>, SparseError> {
    let n = check_square_system(a, b)?;
    let start_counts = kernels.counts();

    kernels.set_phase(Phase::Initialize);
    let mut x = kernels.acquire_buffer(n);
    if let Some(x0) = x0 {
        x.copy_from_slice(x0);
    }
    let mut r = kernels.acquire_buffer(n);
    kernels.spmv(a, &x, &mut r);
    kernels.scale(-T::ONE, &mut r);
    kernels.axpy(T::ONE, b, &mut r);
    let mut p = kernels.acquire_buffer(n);
    p.copy_from_slice(&r);
    let mut ar = kernels.acquire_buffer(n);
    kernels.spmv(a, &r, &mut ar); // A r
    let mut ap = kernels.acquire_buffer(n); // A p (p = r initially)
    ap.copy_from_slice(&ar);
    let mut r_ar = kernels.dot(&r, &ar);
    let b_norm = kernels.norm2(b).to_f64();
    let scale = if b_norm > 0.0 { b_norm } else { 1.0 };

    let mut monitor = Monitor::new(*criteria);
    let mut iterations = 0usize;

    kernels.set_phase(Phase::Loop);
    let outcome = loop {
        let r_norm = kernels.norm2(&r).to_f64();
        if r_norm / scale < criteria.tolerance {
            break Outcome::Converged;
        }
        kernels.begin_iteration(iterations);
        let ap_ap = kernels.dot(&ap, &ap);
        iterations += 1;
        if !ap_ap.is_finite() || ap_ap == T::ZERO {
            monitor.observe(r_norm / scale);
            break Outcome::Diverged(DivergenceReason::Breakdown("(Ap, Ap) vanished"));
        }
        let alpha = r_ar / ap_ap;
        if !alpha.is_finite() {
            monitor.observe(f64::NAN);
            break Outcome::Diverged(DivergenceReason::NonFinite);
        }
        kernels.axpy(alpha, &p, &mut x);
        kernels.axpy(-alpha, &ap, &mut r);
        let r_ar_new = kernels.spmv_dot(a, &r, &mut ar, &r);
        let res = kernels.norm2(&r).to_f64() / scale;
        kernels.observe_residual(monitor.history().len(), res);
        match monitor.observe(res) {
            Verdict::Continue => {}
            Verdict::Done(o) => break o,
        }
        if r_ar == T::ZERO {
            break Outcome::Diverged(DivergenceReason::Breakdown("(r, Ar) vanished"));
        }
        let beta = r_ar_new / r_ar;
        r_ar = r_ar_new;
        kernels.xpby(&r, beta, &mut p); // p = r + beta p
        kernels.xpby(&ar, beta, &mut ap); // Ap = Ar + beta Ap
    };

    kernels.release_buffer(r);
    kernels.release_buffer(p);
    kernels.release_buffer(ar);
    kernels.release_buffer(ap);
    Ok(SolveReport {
        solver: SolverKind::ConjugateResidual,
        outcome,
        iterations,
        residual_history: monitor.into_history(),
        solution: x,
        counts: kernels.counts().since(&start_counts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SoftwareKernels;
    use acamar_sparse::generate::{self, RowDistribution};

    fn criteria() -> ConvergenceCriteria {
        ConvergenceCriteria::paper().with_max_iterations(3000)
    }

    #[test]
    fn bicg_converges_on_nonsymmetric_system() {
        let a = generate::convection_diffusion_2d::<f64>(10, 10, 2.0);
        let x_true: Vec<f64> = (0..100).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let rep = bicg(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
        let err = rep
            .solution
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max err {err}");
    }

    #[test]
    fn bicg_reduces_to_cg_iteration_counts_on_spd() {
        // On SPD systems BiCG is mathematically CG (with r* = r), at
        // twice the cost per iteration.
        let a = generate::poisson2d::<f64>(8, 8);
        let b = vec![1.0; 64];
        let mut k1 = SoftwareKernels::new();
        let bi = bicg(&a, &b, None, &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let cg = crate::cg::conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(bi.converged() && cg.converged());
        let diff = (bi.iterations as i64 - cg.iterations as i64).abs();
        assert!(diff <= 2, "BiCG {} vs CG {}", bi.iterations, cg.iterations);
        // two SpMV per BiCG iteration (A and A^T)
        assert_eq!(bi.counts.spmv_calls as usize, 1 + 2 * bi.iterations);
    }

    #[test]
    fn cr_converges_on_spd_with_monotone_residuals() {
        let a = generate::spd_from_pattern::<f64>(
            100,
            RowDistribution::Uniform { min: 2, max: 6 },
            0.3,
            7,
        );
        let b = vec![1.0; 100];
        let mut k = SoftwareKernels::new();
        let rep = conjugate_residual(&a, &b, None, &criteria(), &mut k).unwrap();
        assert!(rep.converged(), "{:?}", rep.outcome);
        // CR minimizes the residual norm: history must be non-increasing
        for w in rep.residual_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "residual rose: {w:?}");
        }
    }

    #[test]
    fn cr_matches_cg_solution() {
        let a = generate::poisson1d::<f64>(30);
        let b: Vec<f64> = (0..30).map(|i| ((i % 4) as f64) - 1.5).collect();
        let mut k1 = SoftwareKernels::new();
        let cr = conjugate_residual(&a, &b, None, &criteria(), &mut k1).unwrap();
        let mut k2 = SoftwareKernels::new();
        let cg = crate::cg::conjugate_gradient(&a, &b, None, &criteria(), &mut k2).unwrap();
        assert!(cr.converged() && cg.converged());
        let err = cr
            .solution
            .iter()
            .zip(&cg.solution)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-4, "solutions differ by {err}");
    }

    #[test]
    fn both_start_converged_on_exact_guess() {
        let a = generate::poisson1d::<f64>(16);
        let x_true = vec![1.0; 16];
        let b = a.mul_vec(&x_true).unwrap();
        let mut k = SoftwareKernels::new();
        let r1 = bicg(&a, &b, Some(&x_true), &criteria(), &mut k).unwrap();
        assert!(r1.converged());
        assert_eq!(r1.iterations, 0);
        let mut k2 = SoftwareKernels::new();
        let r2 = conjugate_residual(&a, &b, Some(&x_true), &criteria(), &mut k2).unwrap();
        assert!(r2.converged());
        assert_eq!(r2.iterations, 0);
    }

    #[test]
    fn cr_fails_on_nonsymmetric_input() {
        // CR's recurrences assume symmetry; on a strongly non-symmetric
        // system it should not reach the tolerance.
        let a = generate::convection_diffusion_2d_centered::<f64>(10, 10, 4.0);
        let b = vec![1.0; 100];
        let mut k = SoftwareKernels::new();
        let crit = ConvergenceCriteria::paper().with_max_iterations(500);
        let rep = conjugate_residual(&a, &b, None, &crit, &mut k).unwrap();
        assert!(!rep.converged());
    }
}
