//! Regenerates Fig. 10: performance efficiency (GFLOPS/mm²) of Acamar vs
//! the static design, and the implied area saving.
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::fig10(&runs);
}
