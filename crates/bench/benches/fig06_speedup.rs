//! Regenerates Fig. 6: latency speedup of Acamar over the static design
//! across the SpMV_URB sweep, with the GMEAN row.
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::fig06(&runs);
}
