//! Regenerates Fig. 5: Dynamic SpMV Kernel reconfiguration rate against
//! the number of MSID chain stages (rOpt).
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig05(&datasets);
}
