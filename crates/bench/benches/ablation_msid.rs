//! Ablation: MSID chain off vs on — reconfiguration time per SpMV pass.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::ablation_msid(&datasets);
}
