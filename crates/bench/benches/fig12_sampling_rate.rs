//! Regenerates Fig. 12: per-pass SpMV resource underutilization against
//! the sampling rate (post-MSID).
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig12(&datasets);
}
