//! Regenerates Fig. 9: achieved compute throughput as a percentage of
//! peak — Acamar vs static design (top) and vs the GPU model (bottom).
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::fig09(&runs);
}
