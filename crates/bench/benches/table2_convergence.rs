//! Regenerates the paper's Table II: JB/CG/BiCG-STAB/Acamar convergence
//! on the 25-dataset suite (synthetic SuiteSparse analogs, f32, tol 1e-5).
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::table2(&datasets);
}
