//! Regenerates Fig. 11: per-pass SpMV resource underutilization and
//! latency as the MSID chain stage count varies.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig11(&datasets);
}
