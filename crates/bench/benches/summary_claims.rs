//! Headline claims of the paper's abstract / §VI, condensed from the full
//! Acamar-vs-baseline sweep.
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::summary(&runs);
}
