//! Regenerates Fig. 1: the share of solver latency spent in the SpMV
//! kernel for each converging (dataset, solver) pair.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig01(&datasets);
}
