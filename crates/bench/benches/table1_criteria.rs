//! Regenerates the paper's Table I: structural requirements on the
//! coefficient matrix for each solver's convergence.
fn main() {
    acamar_bench::experiments::table1();
}
