//! Ablation: MSID tolerance — reconfiguration events per pass vs SpMV
//! resource underutilization (paper Section V-D's third parameter).
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::ablation_tolerance(&datasets);
}
