//! Regenerates Fig. 13: the per-event reconfiguration-time budget that
//! keeps Acamar no slower than the static baseline, vs the ICAP model.
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::fig13(&runs);
}
