//! Regenerates Fig. 7: improvement ratio in SpMV resource
//! underutilization over the static design across the SpMV_URB sweep.
fn main() {
    let datasets = acamar_datasets::suite();
    let runs = acamar_bench::experiments::sweep(&datasets);
    acamar_bench::experiments::fig07(&runs);
}
