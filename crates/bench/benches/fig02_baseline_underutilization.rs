//! Regenerates Fig. 2: SpMV resource underutilization of a static design
//! as a function of the fixed unroll factor.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig02(&datasets);
}
