//! Ablation: NNZ-sorted row reordering (symmetric permutation) ahead of
//! the Fine-Grained Reconfiguration unit, on skewed stress workloads.
fn main() {
    acamar_bench::experiments::ablation_reorder();
}
