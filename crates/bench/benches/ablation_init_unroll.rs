//! Ablation: width of the static initialize-phase SpMV engine.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::ablation_init_unroll(&datasets);
}
