//! Regenerates Fig. 8: SpMV resource underutilization of Acamar vs the
//! GTX 1650 Super model (lower is better).
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::fig08(&datasets);
}
