//! Criterion microbenchmarks for the software kernels: CSR SpMV across
//! sparsity shapes, CSR↔CSC conversion (the Matrix Structure unit's
//! symmetry test), and the MSID chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use acamar_core::MsidChain;
use acamar_solvers::{conjugate_gradient, ConvergenceCriteria, SoftwareKernels};
use acamar_sparse::generate::{self, RowDistribution};
use acamar_sparse::CscMatrix;

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv");
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = generate::random_pattern::<f32>(
            n,
            RowDistribution::Uniform { min: 4, max: 24 },
            7,
        );
        let x = vec![1.0_f32; n];
        let mut y = vec![0.0_f32; n];
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| a.mul_vec_into(black_box(&x), black_box(&mut y)).unwrap());
        });
    }
    g.finish();
}

fn bench_csr_to_csc(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr_to_csc");
    for &n in &[1_000usize, 10_000] {
        let a = generate::random_pattern::<f32>(
            n,
            RowDistribution::Uniform { min: 4, max: 24 },
            11,
        );
        g.throughput(Throughput::Elements(a.nnz() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| CscMatrix::from_csr(black_box(&a)));
        });
    }
    g.finish();
}

fn bench_msid_chain(c: &mut Criterion) {
    let factors: Vec<usize> = (0..4096).map(|i| 2 + (i * 2654435761usize) % 30).collect();
    c.bench_function("msid_chain_8_stages_4096_sets", |b| {
        let chain = MsidChain::new(8, 0.15);
        b.iter(|| chain.optimize_factors(black_box(&factors)));
    });
}

fn bench_cg_solve(c: &mut Criterion) {
    let a = generate::poisson2d::<f32>(48, 48);
    let rhs = vec![1.0_f32; a.nrows()];
    let criteria = ConvergenceCriteria::paper().with_max_iterations(4000);
    c.bench_function("cg_poisson2d_48x48", |b| {
        b.iter(|| {
            let mut k = SoftwareKernels::new();
            conjugate_gradient(black_box(&a), black_box(&rhs), None, &criteria, &mut k)
                .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv, bench_csr_to_csc, bench_msid_chain, bench_cg_solve
}
criterion_main!(benches);
