//! Microbenchmarks for the software kernels: CSR SpMV across sparsity
//! shapes, CSR↔CSC conversion (the Matrix Structure unit's symmetry
//! test), and the MSID chain.
//!
//! Timed with a plain `std::time::Instant` harness (median of repeated
//! batches) so the workspace builds with no external registry access.

use std::hint::black_box;
use std::time::Instant;

use acamar_core::MsidChain;
use acamar_solvers::{conjugate_gradient, ConvergenceCriteria, SoftwareKernels};
use acamar_sparse::generate::{self, RowDistribution};
use acamar_sparse::CscMatrix;

/// Runs `f` in batches until ~200ms elapse and reports the median
/// per-iteration time in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm up and size the batch so one batch is ~10ms.
    let start = Instant::now();
    let mut warm = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        warm += 1;
    }
    let per_iter = start.elapsed().as_nanos() as f64 / warm as f64;
    let batch = ((10e6 / per_iter).ceil() as u64).max(1);
    let mut samples = Vec::new();
    for _ in 0..20 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn report(name: &str, ns: f64, elements: Option<u64>) {
    match elements {
        Some(e) => {
            let rate = e as f64 / (ns * 1e-9) / 1e6;
            println!("{name:<44} {ns:>14.1} ns/iter  {rate:>10.1} Melem/s");
        }
        None => println!("{name:<44} {ns:>14.1} ns/iter"),
    }
}

fn bench_spmv() {
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = generate::random_pattern::<f32>(n, RowDistribution::Uniform { min: 4, max: 24 }, 7);
        let x = vec![1.0_f32; n];
        let mut y = vec![0.0_f32; n];
        let ns = time_ns(|| a.mul_vec_into(black_box(&x), black_box(&mut y)).unwrap());
        report(&format!("spmv/{n}"), ns, Some(a.nnz() as u64));
    }
}

fn bench_csr_to_csc() {
    for &n in &[1_000usize, 10_000] {
        let a =
            generate::random_pattern::<f32>(n, RowDistribution::Uniform { min: 4, max: 24 }, 11);
        let ns = time_ns(|| {
            black_box(CscMatrix::from_csr(black_box(&a)));
        });
        report(&format!("csr_to_csc/{n}"), ns, Some(a.nnz() as u64));
    }
}

fn bench_msid_chain() {
    let factors: Vec<usize> = (0..4096).map(|i| 2 + (i * 2654435761usize) % 30).collect();
    let chain = MsidChain::new(8, 0.15);
    let ns = time_ns(|| {
        black_box(chain.optimize_factors(black_box(&factors)));
    });
    report("msid_chain_8_stages_4096_sets", ns, None);
}

fn bench_cg_solve() {
    let a = generate::poisson2d::<f32>(48, 48);
    let rhs = vec![1.0_f32; a.nrows()];
    let criteria = ConvergenceCriteria::paper().with_max_iterations(4000);
    let ns = time_ns(|| {
        let mut k = SoftwareKernels::new();
        black_box(
            conjugate_gradient(black_box(&a), black_box(&rhs), None, &criteria, &mut k).unwrap(),
        );
    });
    report("cg_poisson2d_48x48", ns, None);
}

fn main() {
    bench_spmv();
    bench_csr_to_csc();
    bench_msid_chain();
    bench_cg_solve();
}
