//! Ablation: serialized vs overlapped (double-buffered) partial
//! reconfiguration — end-to-end modeled time.
fn main() {
    let datasets = acamar_datasets::suite();
    acamar_bench::experiments::ablation_overlap(&datasets);
}
