//! Minimal fixed-width text-table printing for experiment output.

/// A simple left-aligned text table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |w: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String]| {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(cell);
                let pad = w.saturating_sub(cell.chars().count());
                out.extend(std::iter::repeat(' ').take(pad + 2));
            }
            out.trim_end().to_string()
        };
        let mut s = String::new();
        s.push_str(&fmt_row(&self.header));
        s.push('\n');
        s.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        s.push('\n');
        for r in &self.rows {
            s.push_str(&fmt_row(r));
            s.push('\n');
        }
        s
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["id", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("id"));
        assert!(lines[3].starts_with("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }
}
