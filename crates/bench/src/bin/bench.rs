//! Wall-clock benchmark harness for the zero-allocation solve hot path
//! and the compiled SpMV execution plans.
//!
//! Measures, per Table II dataset (std::time only, no external crates):
//!
//! - **cold single-solve**: a fresh single-worker [`Engine`] per solve —
//!   pays pool spawn, pattern analysis, and every buffer allocation;
//! - **warm single-solve**: repeated [`Engine::solve_one`] on one live
//!   engine — plan cache hit, pooled scratch buffers;
//! - **warm multi-RHS batch**: one [`Engine::solve_batch`] over many
//!   right-hand sides on a pre-warmed engine with a full worker pool,
//!   including the batch's plan-cache hit/miss/analysis-time counters;
//! - **compiled vs generic SpMV**: warm A/B of the schedule-driven
//!   [`CompiledSpmv`] plan against the generic CSR walk on the same
//!   matrix, plus the plan's one-time compile cost and its fraction of
//!   the batch wall time (amortization);
//! - **loop allocations**: a counting global allocator asserts that a warm
//!   solve performs zero heap allocations per solver-loop iteration
//!   (doubling the iteration budget must not change the allocation count)
//!   and that the warm compiled SpMV path allocates nothing at all;
//! - **telemetry overhead and fidelity**: an A/B of the warm batch with
//!   the sink disabled vs a live [`RingRecorder`], plus a trace-fidelity
//!   batch whose exported events must reconstruct the engine's own
//!   `FabricRunStats`/`CacheStats` accounting exactly;
//! - **serving-layer routing A/B**: an open-loop load generator drives
//!   the same seeded request stream through two 4-shard [`Service`]
//!   instances — fingerprint-affinity routing vs seeded random routing —
//!   at a paced arrival rate, and reports p50/p99/p999 request latency
//!   (admission to completion) plus per-shard plan-cache hit/miss
//!   totals for each arm;
//! - **availability under chaos**: a 4-shard service has one dispatcher
//!   crash-killed mid-burst; the supervisor respawns it, the breaker
//!   spills its traffic down the rendezvous ranking, and the gates are
//!   zero lost jobs, a finite p999, at least one supervisor restart,
//!   and at least one failover diversion;
//! - **matrix-sequence amortization**: a 10k-step evolving workload
//!   (1k in quick mode) through [`Engine::open_sequence`] — a
//!   fixed-pattern arm gating the amortized per-step analyze+compile
//!   cost at >= 5x below a full per-step analysis, a drifting-pattern
//!   arm gating the band-patch cost at < 20% of a from-scratch
//!   [`CompiledSpmv`] compile, and a warm-vs-cold A/B over the identical
//!   drift workload gating the exact (deterministic) geomean iteration
//!   reduction; written to `BENCH_PR9.json`;
//! - **solver-suite workloads**: the Laplacian/stencil suite run through
//!   plain CG and IC(0)-preconditioned CG — gating a >= 1.5x geomean
//!   iteration reduction (exact, deterministic) — plus a worker scan of
//!   the level-scheduled [`CompiledSptrsv`] kernel on a 2D Poisson lower
//!   triangle, gating bitwise identity against serial substitution at
//!   every worker count; written to `BENCH_PR10.json`.
//!
//! Writes `BENCH_PR4.json` plus the machine-diffable `BENCH_SUMMARY.json`
//! and the telemetry artifacts `bench_trace.jsonl` / `bench_metrics.prom`
//! (repo root when run from there), and panics if any acceptance gate
//! fails, so CI's bench jobs fail on regression-by-panic only:
//!
//! - geometric-mean warm-batch speedup over the suite beats the cold
//!   baseline (2x with >= 2 pool workers; 1.05x on a single-CPU host,
//!   where only the pooling/caching win is measurable);
//! - geometric-mean compiled-SpMV speedup over the generic walk is
//!   >= 1.15x, with bitwise-identical results;
//! - every plan compile costs < 5% of its dataset's batch wall time;
//! - the warm solver loops and the warm compiled SpMV path are
//!   allocation-free;
//! - the telemetry trace reconstructs the fabric/cache statistics, and
//!   (full mode) the live ring's overhead stays under the 5% budget;
//! - affinity routing analyzes each pattern on exactly one shard while
//!   random routing smears patterns across shards (deterministic), and
//!   (full mode) affinity's warm p99 latency beats random's.
//!
//! Usage:
//! `cargo run --release -p acamar-bench --bin bench [-- --quick] \
//!  [--sequence] [--fast-tier] [--solver-suite] \
//!  [--check-regression BENCH_BASELINE.json]`
//!
//! `--sequence` runs only the matrix-sequence section (CI's smoke job);
//! `--fast-tier` runs only the determinism-tier A/B;
//! `--solver-suite` runs only the PCG/SpTRSV solver-suite section.
//! `--check-regression` compares the run's geomeans against a committed
//! baseline and fails on a > 10% drop (skipped with a warning when the
//! baseline's worker class — single vs pooled — does not match the host;
//! summary fields the baseline predates are skipped with a warning).

use acamar_core::{Acamar, AcamarConfig};
use acamar_datasets::{laplacian_suite, suite, Dataset};
use acamar_engine::{Engine, PatternFingerprint, SequenceConfig, SequenceJob, SolveJob};
use acamar_fabric::FabricSpec;
use acamar_service::{shard_ranking, RoutingPolicy, Service, ServiceConfig, ServiceRequest};
use acamar_solvers::{
    conjugate_gradient, ic0_preconditioned_cg, ConvergenceCriteria, Kernels, SoftwareKernels,
};
use acamar_sparse::rng::DetRng;
use acamar_sparse::{
    generate, BandHint, CompiledSpmv, CompiledSptrsv, CsrMatrix, DeterminismPolicy, PatternDelta,
};
use acamar_telemetry::export::json_lines;
use acamar_telemetry::{timeline, Counter, RingRecorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every heap allocation so warm solves can be proven
/// allocation-free in the solver loop.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn criteria() -> ConvergenceCriteria {
    ConvergenceCriteria::paper().with_max_iterations(2000)
}

fn acamar() -> Acamar {
    Acamar::new(
        FabricSpec::alveo_u55c(),
        AcamarConfig::paper().with_criteria(criteria()),
    )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

struct DatasetResult {
    id: String,
    name: String,
    rows: usize,
    nnz: usize,
    cold_solve_ms: f64,
    warm_solve_ms: f64,
    cold_solves_per_sec: f64,
    batch_jobs: usize,
    batch_wall_seconds: f64,
    batch_jobs_per_sec: f64,
    batch_speedup_vs_cold: f64,
    batch_converged: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_analysis_ms: f64,
}

fn bench_dataset(d: &Dataset, batch_jobs: usize, samples: usize) -> DatasetResult {
    let a = d.matrix_f64();
    let b = vec![1.0_f64; a.nrows()];
    let nnz = a.nnz();

    // Cold path: stand up a fresh engine for every solve — pool spawn,
    // pattern analysis, and every scratch-buffer allocation are paid
    // inside the timed region, exactly as a one-shot caller would.
    let mut cold = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let engine = Engine::with_workers(acamar(), 1);
        let rep = engine.solve_one(&a, &b).expect("cold solve failed");
        cold.push(t.elapsed().as_secs_f64());
        assert!(rep.converged(), "{}: cold solve diverged", d.name);
    }
    let cold_solve_s = median(&mut cold);

    // Warm path: one live engine, plan cached, buffers pooled.
    let engine = Engine::new(acamar());
    engine.solve_one(&a, &b).expect("warm-up solve failed");
    let mut warm = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let rep = engine.solve_one(&a, &b).expect("warm solve failed");
        warm.push(t.elapsed().as_secs_f64());
        assert!(rep.converged(), "{}: warm solve diverged", d.name);
    }
    let warm_solve_s = median(&mut warm);

    // Warm multi-RHS batch on the same engine (pool + cache hot).
    let rhss: Vec<Vec<f64>> = (0..batch_jobs)
        .map(|k| vec![1.0 + (k % 13) as f64 * 0.1; a.nrows()])
        .collect();
    let batch = engine.solve_batch(&a, &rhss).expect("batch failed");
    let cold_solves_per_sec = 1.0 / cold_solve_s;

    DatasetResult {
        id: d.id.to_string(),
        name: d.name.to_string(),
        rows: a.nrows(),
        nnz,
        cold_solve_ms: cold_solve_s * 1e3,
        warm_solve_ms: warm_solve_s * 1e3,
        cold_solves_per_sec,
        batch_jobs,
        batch_wall_seconds: batch.wall_seconds,
        batch_jobs_per_sec: batch.jobs_per_second(),
        batch_speedup_vs_cold: batch.jobs_per_second() / cold_solves_per_sec,
        batch_converged: batch.converged,
        cache_hits: batch.cache.hits,
        cache_misses: batch.cache.misses,
        cache_analysis_ms: batch.cache.analysis_nanos as f64 / 1e6,
    }
}

struct CompiledSpmvBench {
    id: String,
    name: String,
    bands: usize,
    generic_spmv_us: f64,
    compiled_spmv_us: f64,
    speedup: f64,
    compile_ms: f64,
    compile_pct_of_batch_wall: f64,
    bitwise_identical: bool,
    warm_alloc_delta: i64,
}

/// Warm A/B of the schedule-driven compiled SpMV plan against the generic
/// CSR walk, plus the plan's one-time compile cost. `batch_wall_seconds`
/// is the dataset's 1k-RHS batch wall time, the budget the compile must
/// amortize into.
fn bench_compiled_spmv(d: &Dataset, quick: bool, batch_wall_seconds: f64) -> CompiledSpmvBench {
    let a = d.matrix_f64();
    let nnz = a.nnz();
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| 0.5 + ((i * 7) % 23) as f64 * 0.125)
        .collect();
    let mut y_generic = vec![0.0_f64; a.nrows()];
    let mut y_compiled = vec![0.0_f64; a.nrows()];

    // The plan the engine would cache: compiled from the MSID schedule.
    let artifacts = acamar().analyze(&a);
    let hints = artifacts.plan.schedule.band_hints();

    // One-time compile cost (median of fresh compiles).
    let mut compile_samples = Vec::with_capacity(7);
    for _ in 0..7 {
        let t = Instant::now();
        let p = CompiledSpmv::compile(&a, &hints).expect("schedule tiles the rows");
        compile_samples.push(t.elapsed().as_secs_f64());
        assert!(p.matches(&a));
    }
    let compile_s = median(&mut compile_samples);
    let plan = artifacts.compiled;

    // Size each timed sample to a roughly constant amount of work.
    let inner = (8_000_000 / nnz.max(1)).clamp(16, 50_000) / if quick { 4 } else { 1 };
    let samples = if quick { 5 } else { 9 };

    a.mul_vec_into(&x, &mut y_generic).expect("generic warm-up");
    plan.execute(&a, &x, &mut y_compiled)
        .expect("compiled warm-up");

    // Alternate A/B samples so clock drift and cache-state changes on a
    // shared host hit both paths evenly instead of biasing whichever side
    // happens to run second.
    let mut generic = Vec::with_capacity(samples);
    let mut compiled = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..inner {
            a.mul_vec_into(&x, &mut y_generic).expect("generic spmv");
        }
        generic.push(t.elapsed().as_secs_f64() / inner as f64);

        let t = Instant::now();
        for _ in 0..inner {
            plan.execute(&a, &x, &mut y_compiled)
                .expect("compiled spmv");
        }
        compiled.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    let generic_s = median(&mut generic);
    let compiled_s = median(&mut compiled);

    // The warm compiled path must not touch the heap. The counting
    // allocator is process-global, so a winding-down pool thread from an
    // earlier phase can leak a count into the bracket; a deterministic
    // per-pass allocation survives every attempt, noise does not, so the
    // minimum over a few attempts isolates the path's own behavior.
    let mut warm_alloc_delta = i64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..inner {
            plan.execute(&a, &x, &mut y_compiled)
                .expect("compiled spmv");
        }
        let delta = (allocations() - before) as i64;
        warm_alloc_delta = warm_alloc_delta.min(delta);
        if delta == 0 {
            break;
        }
    }

    let bitwise_identical = y_generic.len() == y_compiled.len()
        && y_generic
            .iter()
            .zip(&y_compiled)
            .all(|(g, c)| g.to_bits() == c.to_bits());

    CompiledSpmvBench {
        id: d.id.to_string(),
        name: d.name.to_string(),
        bands: plan.bands().len(),
        generic_spmv_us: generic_s * 1e6,
        compiled_spmv_us: compiled_s * 1e6,
        speedup: generic_s / compiled_s,
        compile_ms: compile_s * 1e3,
        compile_pct_of_batch_wall: 100.0 * compile_s / batch_wall_seconds,
        bitwise_identical,
        warm_alloc_delta,
    }
}

/// Geometric mean of the per-dataset compiled-over-generic speedups.
fn geomean_compiled_speedup(results: &[CompiledSpmvBench]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = results.iter().map(|r| r.speedup.ln()).sum();
    (log_sum / results.len() as f64).exp()
}

/// One dataset's Deterministic-vs-Fast determinism-tier A/B.
struct FastTierBench {
    id: String,
    name: String,
    det_core_us: f64,
    fast_core_us: f64,
    speedup: f64,
    det_iterations: usize,
    fast_iterations: usize,
    det_residual: f64,
    fast_residual: f64,
    /// `fast_residual / det_residual` — the Fast tier's accuracy gate is
    /// that this stays <= 10.
    residual_ratio: f64,
    verdicts_match: bool,
}

/// Warm A/B of the two determinism tiers on the solver's iteration core —
/// the per-iteration kernel mix of CG (fused SpMV+dot, axpy+norm²,
/// dense dot) over the engine-cached compiled plan — plus one full solve
/// under each tier so the convergence triple (iterations, final residual,
/// verdict) can be compared. Both arms run through [`SoftwareKernels`]
/// with the same plan; the only difference is the [`DeterminismPolicy`],
/// exactly the switch `RunOptions` flips.
fn bench_fast_tier(d: &Dataset, quick: bool) -> FastTierBench {
    let a = Arc::new(d.matrix_f64());
    let nnz = a.nnz();
    let artifacts = acamar().analyze(&a);
    let plan = artifacts.compiled;

    let x: Vec<f64> = (0..a.ncols())
        .map(|i| 0.5 + ((i * 7) % 23) as f64 * 0.125)
        .collect();
    let mut y = vec![0.0_f64; a.nrows()];
    let mut det_k = SoftwareKernels::new().with_compiled_plan(Arc::clone(&plan));
    let mut fast_k = SoftwareKernels::new()
        .with_compiled_plan(Arc::clone(&plan))
        .with_policy(DeterminismPolicy::Fast);
    // Alpha 0 keeps `y` the SpMV image across repetitions (no drift over
    // thousands of reps) while both arms still pay the full axpy FLOPs.
    let core = |k: &mut SoftwareKernels, y: &mut Vec<f64>| -> f64 {
        let d = k.spmv_dot(&a, &x, y, &x);
        let n = k.axpy_normsq(0.0, &x, y);
        d + n + k.dot(y, &x)
    };

    let inner = (8_000_000 / nnz.max(1)).clamp(16, 50_000) / if quick { 4 } else { 1 };
    let samples = if quick { 5 } else { 9 };
    let mut sink = core(&mut det_k, &mut y) + core(&mut fast_k, &mut y);
    // Alternate A/B samples, same rationale as the compiled-SpMV bench.
    let mut det = Vec::with_capacity(samples);
    let mut fast = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..inner {
            sink += core(&mut det_k, &mut y);
        }
        det.push(t.elapsed().as_secs_f64() / inner as f64);
        let t = Instant::now();
        for _ in 0..inner {
            sink += core(&mut fast_k, &mut y);
        }
        fast.push(t.elapsed().as_secs_f64() / inner as f64);
    }
    assert!(
        sink.is_finite(),
        "{}: fast-tier iteration core produced a non-finite value",
        d.name
    );
    // Minimum-of-samples, not median: scheduler noise on a shared host
    // only ever adds time, so the fastest repetition of identical work is
    // the least-contaminated estimate for each arm. Both arms use the
    // same estimator, keeping the A/B symmetric.
    let min_s = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let det_s = min_s(&det);
    let fast_s = min_s(&fast);

    // Convergence triple under each tier, through the real engine path
    // (plan cache keyed per policy, so each tier warms independently).
    let engine = Engine::new(acamar());
    let b = vec![1.0_f64; a.nrows()];
    let solve = |policy| {
        let mut batch = engine.solve_jobs(vec![
            SolveJob::new(Arc::clone(&a), b.clone()).with_policy(policy)
        ]);
        batch
            .results
            .remove(0)
            .unwrap_or_else(|e| panic!("{}: {policy} solve failed: {e}", d.name))
    };
    let det_rep = solve(DeterminismPolicy::Deterministic);
    let fast_rep = solve(DeterminismPolicy::Fast);
    let det_residual = det_rep.solve.final_residual();
    let fast_residual = fast_rep.solve.final_residual();

    FastTierBench {
        id: d.id.to_string(),
        name: d.name.to_string(),
        det_core_us: det_s * 1e6,
        fast_core_us: fast_s * 1e6,
        speedup: det_s / fast_s,
        det_iterations: det_rep.solve.iterations,
        fast_iterations: fast_rep.solve.iterations,
        det_residual,
        fast_residual,
        residual_ratio: fast_residual / det_residual.max(f64::MIN_POSITIVE),
        verdicts_match: det_rep.converged() == fast_rep.converged(),
    }
}

/// Geometric mean of the per-dataset Fast-over-Deterministic speedups.
fn geomean_fast_tier_speedup(results: &[FastTierBench]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = results.iter().map(|r| r.speedup.ln()).sum();
    (log_sum / results.len() as f64).exp()
}

/// `BENCH_PR8.json`: the determinism-tier A/B block, one object per
/// dataset plus the suite-level summary the regression gate reads.
fn write_pr8_json(
    path: &str,
    mode: &str,
    workers: usize,
    required_speedup: f64,
    fast: &[FastTierBench],
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"fast_tier\": [\n");
    for (i, f) in fast.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", f.id));
        out.push_str(&format!("      \"name\": \"{}\",\n", f.name));
        out.push_str(&format!(
            "      \"det_core_us\": {},\n",
            json_f(f.det_core_us)
        ));
        out.push_str(&format!(
            "      \"fast_core_us\": {},\n",
            json_f(f.fast_core_us)
        ));
        out.push_str(&format!("      \"speedup\": {},\n", json_f(f.speedup)));
        out.push_str(&format!(
            "      \"det_iterations\": {},\n",
            f.det_iterations
        ));
        out.push_str(&format!(
            "      \"fast_iterations\": {},\n",
            f.fast_iterations
        ));
        out.push_str(&format!(
            "      \"det_residual\": {},\n",
            json_f(f.det_residual)
        ));
        out.push_str(&format!(
            "      \"fast_residual\": {},\n",
            json_f(f.fast_residual)
        ));
        out.push_str(&format!(
            "      \"residual_ratio\": {},\n",
            json_f(f.residual_ratio)
        ));
        out.push_str(&format!("      \"verdicts_match\": {}\n", f.verdicts_match));
        out.push_str(if i + 1 < fast.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    let max_ratio = fast
        .iter()
        .map(|f| f.residual_ratio)
        .fold(0.0_f64, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"geomean_fast_tier_speedup\": {},\n",
        json_f(geomean_fast_tier_speedup(fast))
    ));
    out.push_str(&format!(
        "    \"required_fast_tier_speedup\": {},\n",
        json_f(required_speedup)
    ));
    out.push_str(&format!(
        "    \"max_residual_ratio\": {},\n",
        json_f(max_ratio)
    ));
    out.push_str(&format!(
        "    \"all_verdicts_match\": {}\n",
        fast.iter().all(|f| f.verdicts_match)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(path, out).expect("write fast-tier benchmark JSON");
}

/// The per-dataset speedup table CI uploads as an artifact.
fn write_fast_tier_csv(path: &str, fast: &[FastTierBench]) {
    let mut out = String::from(
        "id,name,det_core_us,fast_core_us,speedup,det_iterations,fast_iterations,\
         residual_ratio,verdicts_match\n",
    );
    for f in fast {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{},{},{:.3},{}\n",
            f.id,
            f.name,
            f.det_core_us,
            f.fast_core_us,
            f.speedup,
            f.det_iterations,
            f.fast_iterations,
            f.residual_ratio,
            f.verdicts_match
        ));
    }
    std::fs::write(path, out).expect("write fast-tier speedup table");
}

struct AllocCheck {
    solver: &'static str,
    delta: i64,
    iterations_base: usize,
    iterations_double: usize,
}

/// Proves a warm solver loop allocation-free: with the tolerance pinned to
/// zero the solve runs its full iteration budget (budget exhaustion is the
/// only stop), so doubling that budget doubles loop work while everything
/// outside the loop — report, history vector, solution escape — stays
/// constant. An equal allocation count at both budgets means zero heap
/// allocations per iteration.
fn loop_allocation_deltas() -> Vec<AllocCheck> {
    use acamar_sparse::generate::{self, RowDistribution};

    fn measure<F>(solver: &'static str, a: CsrMatrix<f64>, solve: F) -> AllocCheck
    where
        F: Fn(&CsrMatrix<f64>, &[f64], &ConvergenceCriteria, &mut SoftwareKernels) -> usize,
    {
        let b = vec![1.0_f64; a.nrows()];
        let count_run = |max_iter: usize| -> (u64, usize) {
            let ws = acamar_solvers::WorkspaceHandle::new();
            let mut k = SoftwareKernels::new().with_workspace(ws);
            let crit = ConvergenceCriteria {
                tolerance: 0.0,
                ..ConvergenceCriteria::paper()
            }
            .with_max_iterations(max_iter);
            // Two warm-ups settle the buffer pool into its steady state
            // (the first populates it, the second replaces the escaped
            // solution buffer); the third run is measured.
            let _ = solve(&a, &b, &crit, &mut k);
            let _ = solve(&a, &b, &crit, &mut k);
            let before = allocations();
            let iters = solve(&a, &b, &crit, &mut k);
            (allocations() - before, iters)
        };
        let (base, iterations_base) = count_run(60);
        let (double, iterations_double) = count_run(120);
        AllocCheck {
            solver,
            delta: double as i64 - base as i64,
            iterations_base,
            iterations_double,
        }
    }

    vec![
        measure("cg", generate::poisson2d(40, 40), |a, b, c, k| {
            acamar_solvers::conjugate_gradient(a, b, None, c, k)
                .expect("cg shape")
                .iterations
        }),
        measure(
            "bicgstab",
            generate::convection_diffusion_2d(30, 30, 2.0),
            |a, b, c, k| {
                acamar_solvers::bicgstab(a, b, None, c, k)
                    .expect("bicgstab shape")
                    .iterations
            },
        ),
        measure(
            "jacobi",
            generate::diagonally_dominant(
                1200,
                RowDistribution::Uniform { min: 2, max: 6 },
                1.05,
                7,
            ),
            |a, b, c, k| {
                acamar_solvers::jacobi(a, b, None, c, k)
                    .expect("jacobi shape")
                    .iterations
            },
        ),
    ]
}

struct SpmvResult {
    rows: usize,
    nnz: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    bitwise_identical: bool,
}

/// Serial vs row-partitioned parallel SpMV on a matrix large enough to
/// clear `PARALLEL_SPMV_MIN_NNZ`.
fn bench_parallel_spmv(threads: usize, reps: usize) -> SpmvResult {
    let a: CsrMatrix<f64> = generate::poisson2d(360, 360);
    let x: Vec<f64> = (0..a.nrows()).map(|i| ((i % 17) as f64) * 0.25).collect();
    let mut y_serial = vec![0.0_f64; a.nrows()];
    let mut y_parallel = vec![0.0_f64; a.nrows()];

    let mut serial = SoftwareKernels::new();
    let t = Instant::now();
    for _ in 0..reps {
        serial.spmv(&a, &x, &mut y_serial);
    }
    let serial_s = t.elapsed().as_secs_f64() / reps as f64;

    let mut parallel = SoftwareKernels::new().with_spmv_threads(threads);
    let t = Instant::now();
    for _ in 0..reps {
        parallel.spmv(&a, &x, &mut y_parallel);
    }
    let parallel_s = t.elapsed().as_secs_f64() / reps as f64;

    SpmvResult {
        rows: a.nrows(),
        nnz: a.nnz(),
        threads,
        serial_ms: serial_s * 1e3,
        parallel_ms: parallel_s * 1e3,
        bitwise_identical: y_serial == y_parallel,
    }
}

/// Telemetry overhead and trace-fidelity measurement on one dataset.
struct TelemetryBench {
    id: String,
    name: String,
    jobs: usize,
    disabled_batch_s: f64,
    ring_batch_s: f64,
    /// Wall-clock overhead of a live `RingRecorder` over the disabled
    /// sink, in percent (negative = within noise, ring side faster).
    overhead_pct: f64,
    /// Run-to-run spread of the disabled-sink samples around their
    /// median, in percent — the measurement's own noise floor. An
    /// `overhead_pct` whose magnitude sits below this is
    /// indistinguishable from zero.
    noise_floor_pct: f64,
    /// Events drained from the trace-fidelity batch.
    trace_events: usize,
    trace_dropped: u64,
    /// SpMV reconfigurations reconstructed from the trace vs the fabric's
    /// own accounting — must match exactly.
    trace_spmv_reconfigs: u64,
    stats_spmv_reconfigs: u64,
    trace_matches_stats: bool,
    /// JSON-lines trace, Prometheus snapshot, and rendered timeline of
    /// the trace-fidelity batch (written as CI artifacts).
    trace_jsonl: String,
    prometheus: String,
    timeline: String,
}

fn bench_telemetry(d: &Dataset, batch_jobs: usize, samples: usize) -> TelemetryBench {
    let a = d.matrix_f64();
    let rhss: Vec<Vec<f64>> = (0..batch_jobs)
        .map(|k| vec![1.0 + (k % 13) as f64 * 0.1; a.nrows()])
        .collect();

    // Reference: the default (disabled) sink, warm engine.
    let engine = Engine::new(acamar());
    engine.solve_batch(&a, &rhss).expect("telemetry warm-up");
    let mut disabled = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        engine.solve_batch(&a, &rhss).expect("disabled batch");
        disabled.push(t.elapsed().as_secs_f64());
    }
    let disabled_s = median(&mut disabled);
    // `median` sorts in place, so the spread is endpoints of the sorted
    // sample.
    let noise_floor_pct = (disabled.last().expect("samples > 0")
        - disabled.first().expect("samples > 0"))
        / disabled_s
        * 100.0;

    // Live lock-free ring. Drained between samples so every timed batch
    // pays the full (successful-push) recording cost rather than the
    // cheaper drop-on-full path.
    let rec = Arc::new(RingRecorder::new(1 << 18));
    let engine = Engine::new(acamar()).with_recorder(rec.clone());
    engine.solve_batch(&a, &rhss).expect("telemetry warm-up");
    let mut ring = Vec::with_capacity(samples);
    for _ in 0..samples {
        rec.drain();
        let t = Instant::now();
        engine.solve_batch(&a, &rhss).expect("ring batch");
        ring.push(t.elapsed().as_secs_f64());
    }
    let ring_s = median(&mut ring);
    let overhead_pct = (ring_s / disabled_s - 1.0) * 100.0;

    // Trace fidelity on a small batch with a ring sized to hold every
    // event: the reconstructed reconfiguration counts must equal the
    // fabric's own statistics, and the counter array (which never drops)
    // must agree with the batch report.
    let rec = Arc::new(RingRecorder::new(1 << 19));
    let engine = Engine::new(acamar()).with_recorder(rec.clone());
    let small: Vec<Vec<f64>> = rhss.iter().take(8).cloned().collect();
    let batch = engine.solve_batch(&a, &small).expect("trace batch");
    assert!(batch.all_converged(), "{}: trace batch diverged", d.name);
    let events = rec.drain();
    let dropped = rec.dropped();
    let counts = timeline::reconfig_counts(&events, None);
    let counters = rec.counters();
    assert_eq!(
        counters[Counter::SpmvReconfigs.index()],
        batch.stats.spmv_reconfig_events as u64,
        "{}: telemetry counters disagree with FabricRunStats",
        d.name
    );
    assert_eq!(
        counters[Counter::CacheMisses.index()],
        batch.cache.misses,
        "{}: telemetry counters disagree with CacheStats",
        d.name
    );
    assert_eq!(
        counters[Counter::AnalysisNanos.index()],
        batch.cache.analysis_nanos,
        "{}: analysis time has two sources of truth",
        d.name
    );
    let trace_matches_stats =
        dropped == 0 && counts.spmv == batch.stats.spmv_reconfig_events as u64;

    TelemetryBench {
        id: d.id.to_string(),
        name: d.name.to_string(),
        jobs: batch_jobs,
        disabled_batch_s: disabled_s,
        ring_batch_s: ring_s,
        overhead_pct,
        noise_floor_pct,
        trace_events: events.len(),
        trace_dropped: dropped,
        trace_spmv_reconfigs: counts.spmv,
        stats_spmv_reconfigs: batch.stats.spmv_reconfig_events as u64,
        trace_matches_stats,
        trace_jsonl: json_lines(&events),
        prometheus: batch.prometheus_text(),
        timeline: timeline::render_summary(&events),
    }
}

/// One routing arm of the serving-layer A/B.
struct RouteArm {
    label: &'static str,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
}

struct ServiceBench {
    shards: usize,
    patterns: usize,
    requests: usize,
    inter_arrival_us: f64,
    affinity: RouteArm,
    random: RouteArm,
    /// `random.p99 / affinity.p99` — > 1 means affinity routing served
    /// the warm tail faster.
    p99_speedup_vs_random: f64,
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Drives the seeded request stream through a fresh service at a fixed
/// arrival pace and measures admission-to-completion latency per ticket.
/// The warm-up pass (one request per pattern, untimed) puts each arm in
/// its steady state first: under affinity every later request lands on
/// its pattern's warm shard, while random routing keeps paying analyses
/// on shards that have not seen the pattern yet — which is exactly the
/// tail the A/B exists to expose.
fn run_service_arm(
    label: &'static str,
    routing: RoutingPolicy,
    shards: usize,
    pats: &[Arc<CsrMatrix<f64>>],
    stream: &[(usize, f64)],
    inter_arrival: Duration,
    burst: usize,
) -> RouteArm {
    let service = Service::<f64>::new(
        acamar(),
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(stream.len() + pats.len())
            .with_routing(routing),
    );
    let warm: Vec<_> = pats
        .iter()
        .map(|a| {
            service
                .submit(ServiceRequest::new(Arc::clone(a), vec![1.0; a.nrows()]))
                .expect("warm-up fits the queue bound")
        })
        .collect();
    for t in warm {
        assert!(t.wait().expect("warm-up solves").converged());
    }

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(stream.len());
    for (i, (p, scale)) in stream.iter().enumerate() {
        // Open loop: arrivals follow the schedule regardless of how the
        // service is keeping up, so queueing delay shows up as latency
        // instead of silently throttling the generator. Arrivals come in
        // bursts (as a time-stepping client would send them) at the same
        // mean rate: a burst's requests queue behind each other, so a
        // cache miss inside a burst delays everything after it and the
        // tail reflects routing quality rather than scheduler jitter.
        let due = inter_arrival * (i - i % burst) as u32;
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let a = &pats[*p];
        tickets.push(
            service
                .submit(ServiceRequest::new(Arc::clone(a), vec![*scale; a.nrows()]))
                .expect("queue capacity is sized to the whole stream"),
        );
    }
    let mut latencies_ms: Vec<f64> = tickets
        .into_iter()
        .map(|t| {
            let (result, latency) = t.wait_timed();
            assert!(result.expect("healthy systems solve").converged());
            latency.as_secs_f64() * 1e3
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));

    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    for s in 0..service.shards() {
        let c = service.engine(s).counters();
        cache_hits += c.cache.hits;
        cache_misses += c.cache.misses;
    }
    assert_eq!(service.total_queue_depth(), 0);
    RouteArm {
        label,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        p999_ms: percentile(&latencies_ms, 0.999),
        cache_hits,
        cache_misses,
    }
}

/// Open-loop load-generator A/B: affinity vs seeded-random routing over
/// the same seeded stream of recurring sparsity patterns.
fn bench_service(quick: bool) -> ServiceBench {
    let shards = 4;
    let burst = 8;
    let (n_patterns, n_requests, n_rows) = if quick {
        (32, 256, 2000)
    } else {
        (64, 768, 4000)
    };

    // One random-structure configuration, many seeds: every pattern is
    // structurally distinct (distinct fingerprint, so it routes and
    // caches independently) but statistically identical, so warm solve
    // cost is uniform across the pool. That isolates the A/B: with no
    // pattern-mix variance to queue behind, the only systematic
    // difference between the arms is the analysis each cache miss pays —
    // and on this structure a miss costs ~1.6x a warm solve.
    let pats: Vec<Arc<CsrMatrix<f64>>> = (0..n_patterns)
        .map(|k| {
            Arc::new(generate::diagonally_dominant::<f64>(
                n_rows,
                generate::RowDistribution::Uniform { min: 2, max: 6 },
                6.0,
                1 + k as u64,
            ))
        })
        .collect();
    let fingerprints: std::collections::HashSet<PatternFingerprint> =
        pats.iter().map(|a| PatternFingerprint::of(a)).collect();
    assert_eq!(
        fingerprints.len(),
        pats.len(),
        "service bench patterns must be structurally distinct"
    );

    // Both arms replay this exact stream. DetRng-chosen patterns (not
    // cycling) so neither arm can luck into accidental affinity.
    let mut rng = DetRng::seed_from_u64(0x10ad_5e88);
    let stream: Vec<(usize, f64)> = (0..n_requests)
        .map(|_| {
            (
                (rng.next_u64() % n_patterns as u64) as usize,
                1.0 + rng.gen_f64(),
            )
        })
        .collect();

    // Calibrate the arrival pace to the host: mean warm solve time across
    // the pattern set, then offered load ~= 1/2 of one core's capacity so
    // queues stay shallow and the tail is dominated by per-request work
    // (warm solve vs analysis-laden miss), not by a saturated queue. The
    // floor keeps dispatcher wakeup/locking overhead — which calibration
    // cannot see — from saturating the host when the solves are tiny.
    let engine = Engine::with_workers(acamar(), 1);
    for a in &pats {
        engine
            .solve_one(a, &vec![1.0; a.nrows()])
            .expect("calibration warm-up");
    }
    let t = Instant::now();
    for a in &pats {
        engine
            .solve_one(a, &vec![1.0; a.nrows()])
            .expect("calibration solve");
    }
    let mean_warm = t.elapsed() / pats.len() as u32;
    let inter_arrival = (mean_warm * 5 / 2).max(Duration::from_micros(200));

    // ABBA order with a per-arm minimum: each arm runs once early and
    // once late, so allocator/CPU warm-up drift cancels instead of
    // biasing whichever arm runs first, and the min discards samples a
    // scheduling hiccup landed on. The cache counts are deterministic —
    // identical across repeats — so merging asserts rather than picks.
    let run = |label, routing| {
        run_service_arm(label, routing, shards, &pats, &stream, inter_arrival, burst)
    };
    let random_policy = RoutingPolicy::Random { seed: 0xA3 };
    let a1 = run("affinity", RoutingPolicy::Affinity);
    let r1 = run("random", random_policy);
    let r2 = run("random", random_policy);
    let a2 = run("affinity", RoutingPolicy::Affinity);
    let merge = |x: RouteArm, y: RouteArm| {
        assert_eq!(x.cache_misses, y.cache_misses, "routing is deterministic");
        assert_eq!(x.cache_hits, y.cache_hits, "routing is deterministic");
        RouteArm {
            label: x.label,
            p50_ms: x.p50_ms.min(y.p50_ms),
            p99_ms: x.p99_ms.min(y.p99_ms),
            p999_ms: x.p999_ms.min(y.p999_ms),
            cache_hits: x.cache_hits,
            cache_misses: x.cache_misses,
        }
    };
    let affinity = merge(a1, a2);
    let random = merge(r1, r2);
    let p99_speedup_vs_random = random.p99_ms / affinity.p99_ms;

    ServiceBench {
        shards,
        patterns: n_patterns,
        requests: n_requests,
        inter_arrival_us: inter_arrival.as_secs_f64() * 1e6,
        affinity,
        random,
        p99_speedup_vs_random,
    }
}

/// Availability under chaos: one shard of four is crash-killed
/// mid-burst, and the numbers are what the clients see across the
/// outage.
struct AvailabilityBench {
    shards: usize,
    requests: usize,
    crashed_shard: usize,
    /// Tickets that did not resolve with a converged solution. The gate
    /// is exactly zero: a dispatcher crash may slow the tail, never eat
    /// a job.
    lost_jobs: usize,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    restarts: u64,
    failovers: u64,
    health_transitions: u64,
}

/// Kills one shard's dispatcher thread mid-burst — the home shard of the
/// first pattern, so its affinity traffic has warm spill targets — and
/// measures the latency tail the clients see across the outage. The
/// self-healing machinery this exercises end to end: the supervisor
/// respawns the crashed dispatcher and requeues whatever it stranded,
/// the breaker spills the broken shard's traffic down the rendezvous
/// ranking, and after `probe_after` diversions a half-open probe heals
/// it. Gates: zero lost jobs (every ticket resolves converged), a
/// finite p999, at least one supervisor restart, and at least one
/// failover diversion.
fn bench_availability(quick: bool) -> AvailabilityBench {
    let shards = 4;
    let n_patterns = 8;
    let (n_requests, n_rows) = if quick { (96, 800) } else { (256, 2000) };
    let pats: Vec<Arc<CsrMatrix<f64>>> = (0..n_patterns)
        .map(|k| {
            Arc::new(generate::diagonally_dominant::<f64>(
                n_rows,
                generate::RowDistribution::Uniform { min: 2, max: 6 },
                6.0,
                0xAB + k as u64,
            ))
        })
        .collect();
    let ring = Arc::new(RingRecorder::new(1 << 15));
    let service = Service::<f64>::with_recorder(
        acamar(),
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(n_requests + n_patterns)
            .with_retry_budget(2)
            .with_restart_backoff(Duration::from_millis(1)),
        Arc::clone(&ring),
    );
    // Warm every pattern onto its home shard so the measured tail is the
    // outage, not first-contact analysis cost.
    let warm: Vec<_> = pats
        .iter()
        .map(|a| {
            service
                .submit(ServiceRequest::new(Arc::clone(a), vec![1.0; a.nrows()]))
                .expect("warm-up fits the queue bound")
        })
        .collect();
    for t in warm {
        assert!(t.wait().expect("warm-up solves").converged());
    }

    let victim = shard_ranking(&PatternFingerprint::of(&pats[0]), shards)[0];
    let submit = |k: usize| {
        let a = &pats[k % n_patterns];
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| 1.0 + ((i + 3 * k) % 11) as f64 * 0.05)
            .collect();
        service
            .submit(ServiceRequest::new(Arc::clone(a), b))
            .expect("queue capacity covers the stream")
    };
    let mut tickets = Vec::with_capacity(n_requests);
    for k in 0..n_requests / 2 {
        tickets.push(submit(k));
    }
    // Kill the dispatcher mid-burst, then hold the second half of the
    // stream until the supervisor has respawned it — the respawned shard
    // is Broken, so the held traffic exercises failover routing and the
    // half-open probe rather than racing the restart itself.
    service.crash_shard(victim);
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.restarts(victim) == 0 {
        assert!(
            Instant::now() < deadline,
            "supervisor never respawned the crashed dispatcher on shard {victim}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for k in n_requests / 2..n_requests {
        tickets.push(submit(k));
    }

    let mut lost = 0usize;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(n_requests);
    for t in tickets {
        let (result, latency) = t.wait_timed();
        match result {
            Ok(report) if report.converged() => {
                latencies_ms.push(latency.as_secs_f64() * 1e3);
            }
            _ => lost += 1,
        }
    }
    assert_eq!(
        lost, 0,
        "a dispatcher crash must not lose jobs: every ticket resolves converged"
    );
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let counters = ring.counters();
    AvailabilityBench {
        shards,
        requests: n_requests,
        crashed_shard: victim,
        lost_jobs: lost,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        p999_ms: percentile(&latencies_ms, 0.999),
        restarts: service.restarts(victim),
        failovers: counters[Counter::Failovers.index()],
        health_transitions: counters[Counter::HealthTransitions.index()],
    }
}

/// Matrix-sequence amortization: plan reuse, band patching, and
/// warm-start iteration savings over an evolving workload.
struct SequenceBench {
    rows: usize,
    nnz: usize,
    steps: usize,
    /// Median one-shot `Acamar::analyze` cost on the base pattern — what
    /// every step would pay without the sequence machinery.
    full_analysis_nanos: f64,
    /// Median from-scratch `CompiledSpmv::compile` cost on the base
    /// pattern — the denominator of the patch gate.
    full_compile_nanos: f64,
    // Fixed-pattern arm: same pattern every step, drifting RHS.
    fixed_wall_s: f64,
    fixed_converged: u64,
    /// Amortized analyze+compile nanoseconds per step across the
    /// fixed-pattern sequence (the one open-time analysis plus per-step
    /// cache-lookup wall time).
    fixed_plan_nanos_per_step: f64,
    /// `full_analysis_nanos / fixed_plan_nanos_per_step` — how many
    /// times cheaper the sequence's per-step planning is than re-running
    /// the full analysis every step.
    amortization_factor: f64,
    // Drift arm: the pattern changes in two rows every `steps/20` steps.
    drift_wall_s: f64,
    patches: u64,
    recompiles: u64,
    /// In-situ mean patch cost across the drift sequence (each patch runs
    /// cold, once per cycle boundary) — observability, not the gate.
    mean_patch_nanos: f64,
    /// Median band-patch cost measured the same way as
    /// `full_compile_nanos` (hot loop, same tile hints, same two-row
    /// delta) — the gate's numerator.
    median_patch_nanos: f64,
    /// `median_patch_nanos / full_compile_nanos`, in percent (the < 20%
    /// acceptance gate) — both sides are hot-loop medians of the same
    /// pattern, so the ratio measures splice cost, not allocator warmth.
    patch_pct_of_compile: f64,
    warm_starts_used: u64,
    // Warm-start A/B over the drift workload (iteration counts are
    // deterministic, so this is exact, not a timing measurement).
    warm_iters: u64,
    cold_iters: u64,
    /// Geomean over steps of `cold iterations / warm iterations`.
    warm_start_iter_reduction: f64,
}

/// Drops the symmetric pair `(r, c)`/`(c, r)` from `a` — a two-row
/// pattern delta that preserves symmetry and diagonal dominance.
fn drop_pair(a: &CsrMatrix<f64>, r: usize, c: usize) -> CsrMatrix<f64> {
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (rc, rv) = a.row(i);
        for (&j, &v) in rc.iter().zip(rv) {
            if (i == r && j == c) || (i == c && j == r) {
                continue;
            }
            cols.push(j);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    CsrMatrix::try_from_parts(a.nrows(), a.ncols(), row_ptr, cols, vals).expect("valid CSR")
}

/// The drift workload's matrix for step `k`: the base pattern on even
/// cycles, a two-row variant (a different dropped pair per cycle) on odd
/// ones — so the pattern changes at every cycle boundary, by exactly two
/// rows.
fn drift_matrix(
    base: &Arc<CsrMatrix<f64>>,
    grid: usize,
    k: usize,
    period: usize,
) -> Arc<CsrMatrix<f64>> {
    let cycle = k / period;
    if cycle % 2 == 0 {
        return Arc::clone(base);
    }
    let n = base.nrows();
    let mut r = (cycle * 37) % (n - 1);
    if r % grid == grid - 1 {
        r -= 1; // keep the (r, r+1) horizontal neighbor inside the stencil
    }
    Arc::new(drop_pair(base, r, r + 1))
}

fn bench_sequence(quick: bool) -> SequenceBench {
    let steps = if quick { 1_000 } else { 10_000 };
    // Large enough that the patch-vs-compile ratio measures asymptotic
    // splice cost rather than constant overhead (at tiny sizes a full
    // compile is itself only a couple of microseconds).
    let grid = 64;
    let base = Arc::new(generate::poisson2d::<f64>(grid, grid));
    let n = base.nrows();
    let rhs = |k: usize| -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + 1e-4 * k as f64 + ((i * 7) % 13) as f64 * 0.05)
            .collect()
    };

    // Ground truth: what one step costs without the sequence machinery.
    let ac = acamar();
    let reps = if quick { 5 } else { 9 };
    let mut analysis = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(ac.analyze(&base));
        analysis.push(t.elapsed().as_nanos() as f64);
    }
    let full_analysis_nanos = median(&mut analysis);
    let hints = ac.analyze(&base).plan.schedule.band_hints();
    let mut compile = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(CompiledSpmv::compile(&base, &hints).expect("compile"));
        compile.push(t.elapsed().as_nanos() as f64);
    }
    let full_compile_nanos = median(&mut compile);

    // Isolated patch cost, measured exactly like the compile baseline
    // (hot loop, median) on the tiling the sequence actually patches at:
    // the MSID hints refined to the default patch-tile granularity.
    let tile = SequenceConfig::default().patch_tile_rows;
    let tiled: Vec<BandHint> = hints
        .iter()
        .flat_map(|h| {
            let (start, end, unroll) = (h.rows.start, h.rows.end, h.unroll);
            (start..end).step_by(tile.max(1)).map(move |s| BandHint {
                rows: s..(s + tile).min(end),
                unroll,
            })
        })
        .collect();
    let tiled_base = CompiledSpmv::compile(&base, &tiled).expect("tiled compile");
    let drifted = drift_matrix(&base, grid, 1, 1);
    let delta = PatternDelta::between(base.as_ref(), drifted.as_ref()).expect("same shape");
    let mut patch = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(
            tiled_base
                .patch(drifted.as_ref(), &tiled, &delta)
                .expect("patch"),
        );
        patch.push(t.elapsed().as_nanos() as f64);
    }
    let median_patch_nanos = median(&mut patch);
    let patch_pct_of_compile = median_patch_nanos / full_compile_nanos * 100.0;

    // Fixed-pattern arm: one analysis at open amortizes over every step.
    let engine = Engine::new(acamar());
    let mut seq = engine
        .open_sequence(Arc::clone(&base), SequenceConfig::default())
        .expect("open fixed sequence");
    let t = Instant::now();
    let mut fixed_converged = 0u64;
    for k in 0..steps {
        let step = seq
            .step(SequenceJob::new(Arc::clone(&base), rhs(k)))
            .expect("fixed-pattern step");
        fixed_converged += u64::from(step.report.solve.converged());
    }
    let fixed_wall_s = t.elapsed().as_secs_f64();
    let fixed = seq.stats();
    let fixed_plan_nanos_per_step = fixed.plan_nanos_per_step();
    let amortization_factor = full_analysis_nanos / fixed_plan_nanos_per_step.max(1.0);

    // Drift arm, warm starts on: band patches at every cycle boundary.
    let period = (steps / 20).max(1);
    let engine = Engine::new(acamar());
    let mut seq = engine
        .open_sequence(Arc::clone(&base), SequenceConfig::default())
        .expect("open drift sequence");
    let t = Instant::now();
    let mut warm_iters_by_step = Vec::with_capacity(steps);
    for k in 0..steps {
        let a = drift_matrix(&base, grid, k, period);
        let step = seq
            .step(SequenceJob::new(a, rhs(k)))
            .expect("drift step (warm)");
        assert!(step.report.solve.converged(), "drift step {k} diverged");
        warm_iters_by_step.push(step.report.solve.iterations as u64);
    }
    let drift_wall_s = t.elapsed().as_secs_f64();
    let drift = seq.stats();
    let mean_patch_nanos = if drift.plans_patched > 0 {
        drift.patch_nanos as f64 / drift.plans_patched as f64
    } else {
        0.0
    };

    // Same drift workload, warm starts off: the iteration-count baseline.
    let engine = Engine::new(acamar());
    let mut seq = engine
        .open_sequence(
            Arc::clone(&base),
            SequenceConfig::default().with_warm_start(false),
        )
        .expect("open cold sequence");
    let mut cold_iters_by_step = Vec::with_capacity(steps);
    for k in 0..steps {
        let a = drift_matrix(&base, grid, k, period);
        let step = seq
            .step(SequenceJob::new(a, rhs(k)))
            .expect("drift step (cold)");
        cold_iters_by_step.push(step.report.solve.iterations as u64);
    }

    let mut log_sum = 0.0_f64;
    let mut counted = 0usize;
    for (w, c) in warm_iters_by_step.iter().zip(&cold_iters_by_step) {
        if *w > 0 && *c > 0 {
            log_sum += (*c as f64 / *w as f64).ln();
            counted += 1;
        }
    }
    let warm_start_iter_reduction = if counted > 0 {
        (log_sum / counted as f64).exp()
    } else {
        1.0
    };

    SequenceBench {
        rows: n,
        nnz: base.nnz(),
        steps,
        full_analysis_nanos,
        full_compile_nanos,
        fixed_wall_s,
        fixed_converged,
        fixed_plan_nanos_per_step,
        amortization_factor,
        drift_wall_s,
        patches: drift.plans_patched,
        recompiles: drift.plans_recompiled,
        mean_patch_nanos,
        median_patch_nanos,
        patch_pct_of_compile,
        warm_starts_used: drift.warm_starts_used,
        warm_iters: warm_iters_by_step.iter().sum(),
        cold_iters: cold_iters_by_step.iter().sum(),
        warm_start_iter_reduction,
    }
}

/// Standalone report for the sequence workload (uploaded by CI's
/// sequence-bench smoke job).
fn write_pr9_json(path: &str, mode: &str, workers: usize, s: &SequenceBench) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"sequence\": {\n");
    out.push_str(&format!("    \"rows\": {},\n", s.rows));
    out.push_str(&format!("    \"nnz\": {},\n", s.nnz));
    out.push_str(&format!("    \"steps\": {},\n", s.steps));
    out.push_str(&format!(
        "    \"full_analysis_nanos\": {},\n",
        json_f(s.full_analysis_nanos)
    ));
    out.push_str(&format!(
        "    \"full_compile_nanos\": {},\n",
        json_f(s.full_compile_nanos)
    ));
    out.push_str(&format!(
        "    \"fixed_wall_seconds\": {},\n",
        json_f(s.fixed_wall_s)
    ));
    out.push_str(&format!(
        "    \"fixed_converged\": {},\n",
        s.fixed_converged
    ));
    out.push_str(&format!(
        "    \"fixed_plan_nanos_per_step\": {},\n",
        json_f(s.fixed_plan_nanos_per_step)
    ));
    out.push_str(&format!(
        "    \"amortization_factor\": {},\n",
        json_f(s.amortization_factor)
    ));
    out.push_str(&format!(
        "    \"drift_wall_seconds\": {},\n",
        json_f(s.drift_wall_s)
    ));
    out.push_str(&format!("    \"patches\": {},\n", s.patches));
    out.push_str(&format!("    \"recompiles\": {},\n", s.recompiles));
    out.push_str(&format!(
        "    \"mean_patch_nanos\": {},\n",
        json_f(s.mean_patch_nanos)
    ));
    out.push_str(&format!(
        "    \"median_patch_nanos\": {},\n",
        json_f(s.median_patch_nanos)
    ));
    out.push_str(&format!(
        "    \"patch_pct_of_compile\": {},\n",
        json_f(s.patch_pct_of_compile)
    ));
    out.push_str(&format!(
        "    \"warm_starts_used\": {},\n",
        s.warm_starts_used
    ));
    out.push_str(&format!("    \"warm_iters\": {},\n", s.warm_iters));
    out.push_str(&format!("    \"cold_iters\": {},\n", s.cold_iters));
    out.push_str(&format!(
        "    \"warm_start_iter_reduction\": {}\n",
        json_f(s.warm_start_iter_reduction)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(path, out).expect("write sequence benchmark JSON");
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    mode: &str,
    workers: usize,
    required_speedup: f64,
    required_compiled_speedup: f64,
    results: &[DatasetResult],
    compiled: &[CompiledSpmvBench],
    alloc_checks: &[AllocCheck],
    spmv: &SpmvResult,
    telem: &TelemetryBench,
    service: &ServiceBench,
    avail: &AvailabilityBench,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", r.id));
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"rows\": {},\n", r.rows));
        out.push_str(&format!("      \"nnz\": {},\n", r.nnz));
        out.push_str(&format!(
            "      \"cold_solve_ms\": {},\n",
            json_f(r.cold_solve_ms)
        ));
        out.push_str(&format!(
            "      \"warm_solve_ms\": {},\n",
            json_f(r.warm_solve_ms)
        ));
        out.push_str(&format!(
            "      \"cold_solves_per_sec\": {},\n",
            json_f(r.cold_solves_per_sec)
        ));
        out.push_str("      \"warm_batch\": {\n");
        out.push_str(&format!("        \"jobs\": {},\n", r.batch_jobs));
        out.push_str(&format!("        \"converged\": {},\n", r.batch_converged));
        out.push_str(&format!(
            "        \"wall_seconds\": {},\n",
            json_f(r.batch_wall_seconds)
        ));
        out.push_str(&format!(
            "        \"jobs_per_sec\": {},\n",
            json_f(r.batch_jobs_per_sec)
        ));
        out.push_str(&format!(
            "        \"speedup_vs_cold\": {}\n",
            json_f(r.batch_speedup_vs_cold)
        ));
        out.push_str("      },\n");
        out.push_str("      \"plan_cache\": {\n");
        out.push_str(&format!("        \"hits\": {},\n", r.cache_hits));
        out.push_str(&format!("        \"misses\": {},\n", r.cache_misses));
        out.push_str(&format!(
            "        \"analysis_ms\": {}\n",
            json_f(r.cache_analysis_ms)
        ));
        out.push_str("      }\n");
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"compiled_spmv\": [\n");
    for (i, c) in compiled.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", c.id));
        out.push_str(&format!("      \"name\": \"{}\",\n", c.name));
        out.push_str(&format!("      \"bands\": {},\n", c.bands));
        out.push_str(&format!(
            "      \"generic_spmv_us\": {},\n",
            json_f(c.generic_spmv_us)
        ));
        out.push_str(&format!(
            "      \"compiled_spmv_us\": {},\n",
            json_f(c.compiled_spmv_us)
        ));
        out.push_str(&format!("      \"speedup\": {},\n", json_f(c.speedup)));
        out.push_str(&format!(
            "      \"compile_ms\": {},\n",
            json_f(c.compile_ms)
        ));
        out.push_str(&format!(
            "      \"compile_pct_of_batch_wall\": {},\n",
            json_f(c.compile_pct_of_batch_wall)
        ));
        out.push_str(&format!(
            "      \"bitwise_identical\": {},\n",
            c.bitwise_identical
        ));
        out.push_str(&format!(
            "      \"warm_alloc_delta\": {}\n",
            c.warm_alloc_delta
        ));
        out.push_str(if i + 1 < compiled.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"loop_allocations_per_warm_solve\": [\n");
    for (i, c) in alloc_checks.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"solver\": \"{}\", \"delta_when_iterations_doubled\": {}, \
             \"iterations_base\": {}, \"iterations_double\": {} }}{}\n",
            c.solver,
            c.delta,
            c.iterations_base,
            c.iterations_double,
            if i + 1 < alloc_checks.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"parallel_spmv\": {\n");
    out.push_str(&format!("    \"rows\": {},\n", spmv.rows));
    out.push_str(&format!("    \"nnz\": {},\n", spmv.nnz));
    out.push_str(&format!("    \"threads\": {},\n", spmv.threads));
    out.push_str(&format!("    \"serial_ms\": {},\n", json_f(spmv.serial_ms)));
    out.push_str(&format!(
        "    \"parallel_ms\": {},\n",
        json_f(spmv.parallel_ms)
    ));
    out.push_str(&format!(
        "    \"bitwise_identical\": {}\n",
        spmv.bitwise_identical
    ));
    out.push_str("  },\n");
    out.push_str("  \"telemetry\": {\n");
    out.push_str(&format!("    \"id\": \"{}\",\n", telem.id));
    out.push_str(&format!("    \"name\": \"{}\",\n", telem.name));
    out.push_str(&format!("    \"batch_jobs\": {},\n", telem.jobs));
    out.push_str(&format!(
        "    \"disabled_batch_seconds\": {},\n",
        json_f(telem.disabled_batch_s)
    ));
    out.push_str(&format!(
        "    \"ring_batch_seconds\": {},\n",
        json_f(telem.ring_batch_s)
    ));
    out.push_str(&format!(
        "    \"ring_overhead_pct\": {},\n",
        json_f(telem.overhead_pct)
    ));
    out.push_str(&format!(
        "    \"ring_overhead_noise_floor_pct\": {},\n",
        json_f(telem.noise_floor_pct)
    ));
    out.push_str(&format!("    \"trace_events\": {},\n", telem.trace_events));
    out.push_str(&format!(
        "    \"trace_dropped\": {},\n",
        telem.trace_dropped
    ));
    out.push_str(&format!(
        "    \"trace_spmv_reconfigs\": {},\n",
        telem.trace_spmv_reconfigs
    ));
    out.push_str(&format!(
        "    \"stats_spmv_reconfigs\": {},\n",
        telem.stats_spmv_reconfigs
    ));
    out.push_str(&format!(
        "    \"trace_matches_stats\": {}\n",
        telem.trace_matches_stats
    ));
    out.push_str("  },\n");
    out.push_str("  \"service\": {\n");
    out.push_str(&format!("    \"shards\": {},\n", service.shards));
    out.push_str(&format!("    \"patterns\": {},\n", service.patterns));
    out.push_str(&format!("    \"requests\": {},\n", service.requests));
    out.push_str(&format!(
        "    \"inter_arrival_us\": {},\n",
        json_f(service.inter_arrival_us)
    ));
    for arm in [&service.affinity, &service.random] {
        out.push_str(&format!("    \"{}\": {{\n", arm.label));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f(arm.p50_ms)));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f(arm.p99_ms)));
        out.push_str(&format!("      \"p999_ms\": {},\n", json_f(arm.p999_ms)));
        out.push_str(&format!("      \"cache_hits\": {},\n", arm.cache_hits));
        out.push_str(&format!("      \"cache_misses\": {}\n", arm.cache_misses));
        out.push_str("    },\n");
    }
    out.push_str(&format!(
        "    \"p99_speedup_vs_random\": {}\n",
        json_f(service.p99_speedup_vs_random)
    ));
    out.push_str("  },\n");
    out.push_str("  \"availability\": {\n");
    out.push_str(&format!("    \"shards\": {},\n", avail.shards));
    out.push_str(&format!("    \"requests\": {},\n", avail.requests));
    out.push_str(&format!(
        "    \"crashed_shard\": {},\n",
        avail.crashed_shard
    ));
    out.push_str(&format!("    \"lost_jobs\": {},\n", avail.lost_jobs));
    out.push_str(&format!("    \"p50_ms\": {},\n", json_f(avail.p50_ms)));
    out.push_str(&format!("    \"p99_ms\": {},\n", json_f(avail.p99_ms)));
    out.push_str(&format!("    \"p999_ms\": {},\n", json_f(avail.p999_ms)));
    out.push_str(&format!(
        "    \"dispatcher_restarts\": {},\n",
        avail.restarts
    ));
    out.push_str(&format!("    \"failovers\": {},\n", avail.failovers));
    out.push_str(&format!(
        "    \"health_transitions\": {}\n",
        avail.health_transitions
    ));
    out.push_str("  },\n");
    let min_speedup = results
        .iter()
        .map(|r| r.batch_speedup_vs_cold)
        .fold(f64::INFINITY, f64::min);
    let alloc_free = alloc_checks.iter().all(|c| c.delta == 0);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"min_batch_speedup_vs_cold\": {},\n",
        json_f(min_speedup)
    ));
    out.push_str(&format!(
        "    \"geomean_batch_speedup_vs_cold\": {},\n",
        json_f(geomean_speedup(results))
    ));
    out.push_str(&format!(
        "    \"required_batch_speedup\": {},\n",
        json_f(required_speedup)
    ));
    out.push_str(&format!(
        "    \"geomean_compiled_spmv_speedup\": {},\n",
        json_f(geomean_compiled_speedup(compiled))
    ));
    out.push_str(&format!(
        "    \"required_compiled_spmv_speedup\": {},\n",
        json_f(required_compiled_speedup)
    ));
    let max_compile_pct = compiled
        .iter()
        .map(|c| c.compile_pct_of_batch_wall)
        .fold(0.0_f64, f64::max);
    out.push_str(&format!(
        "    \"max_compile_pct_of_batch_wall\": {},\n",
        json_f(max_compile_pct)
    ));
    let compiled_alloc_free = compiled.iter().all(|c| c.warm_alloc_delta == 0);
    out.push_str(&format!(
        "    \"compiled_spmv_allocation_free\": {compiled_alloc_free},\n"
    ));
    out.push_str(&format!(
        "    \"warm_loop_allocation_free\": {alloc_free},\n"
    ));
    // A timing A/B can come out negative when the true overhead sits
    // below the run's noise floor; the headline number clamps at zero so
    // "-0.06% overhead" never reads as a speedup — or reports
    // "unreliable" outright when the delta is sub-noise — while the
    // signed delta and the noise floor preserve the raw measurement.
    out.push_str(&format!(
        "    \"telemetry_overhead_pct\": {},\n",
        telemetry_overhead_field(telem)
    ));
    out.push_str(&format!(
        "    \"telemetry_overhead_signed_pct\": {},\n",
        json_f(telem.overhead_pct)
    ));
    out.push_str(&format!(
        "    \"telemetry_noise_floor_pct\": {},\n",
        json_f(telem.noise_floor_pct)
    ));
    out.push_str(&format!(
        "    \"service_p99_speedup_vs_random\": {},\n",
        json_f(service.p99_speedup_vs_random)
    ));
    out.push_str(&format!(
        "    \"telemetry_trace_matches_stats\": {}\n",
        telem.trace_matches_stats
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(path, out).expect("write benchmark JSON");
}

/// Geometric mean of the per-dataset warm-batch speedups. The gate uses
/// this rather than the per-dataset minimum: on a shared host a single
/// 3-second batch window can land on a noisy stretch and dip a lone
/// dataset below its true speedup, while the geometric mean over the
/// suite is stable run to run.
fn geomean_speedup(results: &[DatasetResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = results.iter().map(|r| r.batch_speedup_vs_cold.ln()).sum();
    (log_sum / results.len() as f64).exp()
}

/// Per-workload iteration A/B of IC(0)-preconditioned CG against plain
/// CG on the Laplacian suite. Iteration counts are exact (deterministic
/// solver arithmetic), not timings, so these rows are bit-for-bit
/// reproducible across hosts.
struct PcgBench {
    name: &'static str,
    rows: usize,
    nnz: usize,
    cg_iterations: usize,
    pcg_iterations: usize,
    /// `cg_iterations / pcg_iterations`.
    iteration_reduction: f64,
}

/// One worker-count point of the SpTRSV level-parallelism scan.
struct SptrsvPoint {
    workers: usize,
    solve_us: f64,
    speedup_vs_serial: f64,
}

/// The PR10 solver-suite measurements: the PCG-vs-CG iteration table
/// over the Laplacian workloads plus the level-scheduled SpTRSV worker
/// scan on the largest 2D Poisson plan.
struct SolverSuiteBench {
    pcg: Vec<PcgBench>,
    pcg_iter_reduction_geomean: f64,
    sptrsv_name: String,
    sptrsv_rows: usize,
    sptrsv_tri_nnz: usize,
    sptrsv_levels: usize,
    sptrsv_max_level_width: usize,
    sptrsv_avg_level_width: f64,
    sptrsv_serial_us: f64,
    sptrsv_points: Vec<SptrsvPoint>,
    /// Every `execute` result at every worker count matched the serial
    /// forward-substitution reference bit for bit (Deterministic tier).
    sptrsv_bitwise_identical: bool,
}

/// Runs the Laplacian suite through plain CG and IC(0)-preconditioned CG
/// (both on [`SoftwareKernels`]), then scans the level-scheduled SpTRSV
/// plan across worker counts on a 2D Poisson lower triangle.
///
/// Quick mode keeps one size per stencil family (the iteration counts
/// are deterministic either way, so the 1.5x geomean gate still bites)
/// and scans the smaller grid.
fn bench_solver_suite(quick: bool) -> SolverSuiteBench {
    let mut workloads = laplacian_suite();
    if quick {
        workloads.retain(|w| w.unknowns() <= 600);
    }
    let criteria = ConvergenceCriteria::paper().with_max_iterations(4000);
    let mut pcg_rows = Vec::new();
    let mut log_sum = 0.0;
    for w in &workloads {
        let a = w.matrix_f64();
        let b = w.rhs();
        let mut kc = SoftwareKernels::new();
        let cg = conjugate_gradient(&a, &b, None, &criteria, &mut kc)
            .unwrap_or_else(|e| panic!("{}: CG failed: {e}", w.name));
        let mut kp = SoftwareKernels::new();
        let pcg = ic0_preconditioned_cg(&a, &b, None, &criteria, &mut kp, None)
            .unwrap_or_else(|e| panic!("{}: IC(0)-PCG failed: {e}", w.name));
        assert!(
            cg.converged(),
            "{}: CG did not converge: {:?}",
            w.name,
            cg.outcome
        );
        assert!(
            pcg.converged(),
            "{}: PCG did not converge: {:?}",
            w.name,
            pcg.outcome
        );
        let reduction = cg.iterations as f64 / pcg.iterations.max(1) as f64;
        log_sum += reduction.ln();
        pcg_rows.push(PcgBench {
            name: w.name,
            rows: a.nrows(),
            nnz: a.nnz(),
            cg_iterations: cg.iterations,
            pcg_iterations: pcg.iterations,
            iteration_reduction: reduction,
        });
    }
    let pcg_iter_reduction_geomean = (log_sum / pcg_rows.len() as f64).exp();

    // SpTRSV level-parallelism scan. The 5-point Laplacian's wavefront
    // levels are ~grid-width wide, so the plan has real (bounded)
    // parallelism to expose; the Deterministic-tier scatter must stay
    // bitwise identical to serial substitution at every worker count.
    let grid = if quick { 24 } else { 40 };
    let a = generate::poisson2d::<f64>(grid, grid);
    let plan = CompiledSptrsv::compile_lower(&a).expect("compile SpTRSV plan");
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    let mut reference = vec![0.0; n];
    plan.solve_serial(&a, &b, &mut reference)
        .expect("serial SpTRSV reference");
    let reference_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();

    let reps = if quick { 50 } else { 200 };
    let sample_count = if quick { 3 } else { 5 };
    let mut x = vec![0.0; n];
    let mut scratch = vec![0.0; plan.max_level_width()];

    let mut serial_samples: Vec<f64> = (0..sample_count)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..reps {
                plan.solve_serial(&a, &b, &mut x).expect("serial SpTRSV");
            }
            t.elapsed().as_secs_f64() / reps as f64 * 1e6
        })
        .collect();
    let sptrsv_serial_us = median(&mut serial_samples);

    let mut sptrsv_points = Vec::new();
    let mut sptrsv_bitwise_identical = true;
    for workers in [1usize, 2, 4, 8] {
        x.fill(0.0);
        plan.execute(&a, &b, &mut x, workers, &mut scratch)
            .expect("level-scheduled SpTRSV");
        sptrsv_bitwise_identical &= x
            .iter()
            .map(|v| v.to_bits())
            .eq(reference_bits.iter().copied());
        let mut samples: Vec<f64> = (0..sample_count)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..reps {
                    plan.execute(&a, &b, &mut x, workers, &mut scratch)
                        .expect("level-scheduled SpTRSV");
                }
                t.elapsed().as_secs_f64() / reps as f64 * 1e6
            })
            .collect();
        let solve_us = median(&mut samples);
        sptrsv_points.push(SptrsvPoint {
            workers,
            solve_us,
            speedup_vs_serial: sptrsv_serial_us / solve_us,
        });
    }

    SolverSuiteBench {
        pcg: pcg_rows,
        pcg_iter_reduction_geomean,
        sptrsv_name: format!("poisson2d-{grid}"),
        sptrsv_rows: n,
        sptrsv_tri_nnz: plan.tri_nnz(),
        sptrsv_levels: plan.level_count(),
        sptrsv_max_level_width: plan.max_level_width(),
        sptrsv_avg_level_width: plan.avg_level_width(),
        sptrsv_serial_us,
        sptrsv_points,
        sptrsv_bitwise_identical,
    }
}

/// `BENCH_PR10.json`: the PCG-vs-CG iteration table and the SpTRSV
/// level-parallelism scan, hand-formatted like the other reports (the
/// workspace is std-only by design).
fn write_pr10_json(path: &str, mode: &str, workers: usize, s: &SolverSuiteBench) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"pcg_vs_cg\": [\n");
    for (i, r) in s.pcg.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"rows\": {},\n", r.rows));
        out.push_str(&format!("      \"nnz\": {},\n", r.nnz));
        out.push_str(&format!("      \"cg_iterations\": {},\n", r.cg_iterations));
        out.push_str(&format!(
            "      \"pcg_iterations\": {},\n",
            r.pcg_iterations
        ));
        out.push_str(&format!(
            "      \"iteration_reduction\": {}\n",
            json_f(r.iteration_reduction)
        ));
        out.push_str(if i + 1 < s.pcg.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sptrsv\": {\n");
    out.push_str(&format!("    \"name\": \"{}\",\n", s.sptrsv_name));
    out.push_str(&format!("    \"rows\": {},\n", s.sptrsv_rows));
    out.push_str(&format!("    \"tri_nnz\": {},\n", s.sptrsv_tri_nnz));
    out.push_str(&format!("    \"levels\": {},\n", s.sptrsv_levels));
    out.push_str(&format!(
        "    \"max_level_width\": {},\n",
        s.sptrsv_max_level_width
    ));
    out.push_str(&format!(
        "    \"avg_level_width\": {},\n",
        json_f(s.sptrsv_avg_level_width)
    ));
    out.push_str(&format!(
        "    \"serial_us\": {},\n",
        json_f(s.sptrsv_serial_us)
    ));
    out.push_str(&format!(
        "    \"bitwise_identical\": {},\n",
        s.sptrsv_bitwise_identical
    ));
    out.push_str("    \"scaling\": [\n");
    for (i, p) in s.sptrsv_points.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"workers\": {},\n", p.workers));
        out.push_str(&format!("        \"solve_us\": {},\n", json_f(p.solve_us)));
        out.push_str(&format!(
            "        \"speedup_vs_serial\": {}\n",
            json_f(p.speedup_vs_serial)
        ));
        out.push_str(if i + 1 < s.sptrsv_points.len() {
            "      },\n"
        } else {
            "      }\n"
        });
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!(
        "    \"pcg_iter_reduction_geomean\": {},\n",
        json_f(s.pcg_iter_reduction_geomean)
    ));
    out.push_str("    \"required_pcg_iter_reduction\": 1.5\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(path, out).expect("write PR10 benchmark JSON");
}

/// The headline overhead field: the clamped percentage when the A/B
/// delta clears the measurement's own noise floor, the string
/// `"unreliable"` when it does not — a sub-noise delta is
/// indistinguishable from zero and must not be compared across runs.
/// (`json_field_f64` parses `"unreliable"` as absent, so regression
/// checks against newer baselines skip it naturally.)
fn telemetry_overhead_field(telem: &TelemetryBench) -> String {
    if telem.noise_floor_pct > telem.overhead_pct {
        "\"unreliable\"".to_string()
    } else {
        json_f(telem.overhead_pct.max(0.0))
    }
}

/// Machine-diffable one-level summary, committed alongside the full
/// report so CI can compare runs without a JSON parser.
///
/// `telemetry_overhead_pct` is clamped at zero (a negative A/B delta is
/// noise, not a speedup) and replaced by `"unreliable"` when it sits
/// below the run's own noise floor; the raw signed delta and the noise
/// floor ride alongside so nothing is lost.
#[allow(clippy::too_many_arguments)]
fn write_summary(
    path: &str,
    mode: &str,
    workers: usize,
    batch: f64,
    compiled: f64,
    fast_tier: f64,
    telem: &TelemetryBench,
    service: f64,
    seq: &SequenceBench,
    pcg_reduction: f64,
) {
    let out = format!(
        "{{\n  \"mode\": \"{mode}\",\n  \"workers\": {workers},\n  \
         \"geomean_batch_speedup_vs_cold\": {},\n  \
         \"geomean_compiled_spmv_speedup\": {},\n  \
         \"geomean_fast_tier_speedup\": {},\n  \
         \"telemetry_overhead_pct\": {},\n  \
         \"telemetry_overhead_signed_pct\": {},\n  \
         \"telemetry_noise_floor_pct\": {},\n  \
         \"service_p99_speedup_vs_random\": {},\n  \
         \"sequence_amortization_factor\": {},\n  \
         \"sequence_patch_pct_of_compile\": {},\n  \
         \"sequence_warm_start_iter_reduction\": {},\n  \
         \"pcg_iter_reduction_geomean\": {}\n}}\n",
        json_f(batch),
        json_f(compiled),
        json_f(fast_tier),
        telemetry_overhead_field(telem),
        json_f(telem.overhead_pct),
        json_f(telem.noise_floor_pct),
        json_f(service),
        json_f(seq.amortization_factor),
        json_f(seq.patch_pct_of_compile),
        json_f(seq.warm_start_iter_reduction),
        json_f(pcg_reduction)
    );
    std::fs::write(path, out).expect("write benchmark summary JSON");
}

/// Pull `"key": <number>` out of a flat summary/baseline file without a
/// JSON parser (the workspace is std-only by design).
fn json_field_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    for line in text.lines() {
        if let Some(rest) = line.split(&needle).nth(1) {
            let value = rest
                .trim_start_matches(':')
                .trim_start_matches(|c: char| c == ':' || c.is_whitespace())
                .trim_end_matches(|c: char| c == ',' || c.is_whitespace())
                .trim_matches('"');
            if let Ok(v) = value.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

/// `--check-regression <baseline>`: fail the run if either geomean fell
/// more than 10% below the committed baseline (full mode). Wall-clock
/// throughput is only comparable within a worker class (the 2x batch gate
/// needs a real pool; a single-CPU host measures a different quantity),
/// so a mismatch downgrades the hard gate to a warning — the absolute
/// gates in `main` still guard correctness and the floor speedups. The
/// quick smoke run (two tiny systems, 3 samples) sees run-to-run swings
/// far beyond 10%, so it gates only catastrophic (> 50%) drops.
///
/// The serving-layer p99 ratio is a tail-latency measurement — far
/// noisier than a geomean of medians — so it gates only on halving in
/// either mode, and a baseline predating the field is skipped with a
/// warning rather than failed.
#[allow(clippy::too_many_arguments)]
fn check_regression(
    baseline_path: &str,
    quick: bool,
    workers: usize,
    batch: f64,
    compiled: f64,
    fast_tier: f64,
    service: f64,
    seq: &SequenceBench,
    pcg_reduction: f64,
) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read bench baseline {baseline_path}: {e}"));
    let base_workers = json_field_f64(&text, "workers").unwrap_or(0.0) as usize;
    let base_batch = json_field_f64(&text, "geomean_batch_speedup_vs_cold")
        .expect("baseline missing geomean_batch_speedup_vs_cold");
    let base_compiled = json_field_f64(&text, "geomean_compiled_spmv_speedup")
        .expect("baseline missing geomean_compiled_spmv_speedup");
    let same_class = (workers >= 2) == (base_workers >= 2);
    if !same_class {
        eprintln!(
            "bench: baseline recorded with {base_workers} worker(s), this host has {workers}; \
             skipping the hard regression gate (absolute gates still apply)"
        );
        return;
    }
    let full_comparison = !quick && text.contains("\"mode\": \"full\"");
    let tolerance = if full_comparison { 0.90 } else { 0.50 };
    eprintln!(
        "bench: regression check vs {baseline_path}: batch {batch:.3}x (baseline {base_batch:.3}x), \
         compiled {compiled:.3}x (baseline {base_compiled:.3}x), tolerance {tolerance}"
    );
    let max_drop_pct = (1.0 - tolerance) * 100.0;
    assert!(
        batch >= base_batch * tolerance,
        "warm-batch geomean regressed: {batch:.3}x vs baseline {base_batch:.3}x \
         (> {max_drop_pct:.0}% drop)"
    );
    assert!(
        compiled >= base_compiled * tolerance,
        "compiled-SpMV geomean regressed: {compiled:.3}x vs baseline {base_compiled:.3}x \
         (> {max_drop_pct:.0}% drop)"
    );
    match json_field_f64(&text, "geomean_fast_tier_speedup") {
        Some(base_fast) => {
            eprintln!(
                "bench: regression check vs {baseline_path}: fast tier {fast_tier:.3}x \
                 (baseline {base_fast:.3}x, tolerance {tolerance})"
            );
            assert!(
                fast_tier >= base_fast * tolerance,
                "fast-tier geomean regressed: {fast_tier:.3}x vs baseline {base_fast:.3}x \
                 (> {max_drop_pct:.0}% drop)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates geomean_fast_tier_speedup; \
             skipping the fast-tier gate"
        ),
    }
    match json_field_f64(&text, "service_p99_speedup_vs_random") {
        Some(base_service) => {
            eprintln!(
                "bench: regression check vs {baseline_path}: service p99 speedup {service:.3}x \
                 (baseline {base_service:.3}x, tolerance 0.5)"
            );
            assert!(
                service >= base_service * 0.5,
                "service affinity-vs-random p99 speedup regressed: {service:.3}x vs \
                 baseline {base_service:.3}x (> 50% drop)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates service_p99_speedup_vs_random; \
             skipping the service gate"
        ),
    }
    // Sequence metrics landed after the serving-layer fields; baselines
    // recorded before them are skipped with a warning, never failed.
    match json_field_f64(&text, "sequence_amortization_factor") {
        Some(base_amort) => {
            let amort = seq.amortization_factor;
            eprintln!(
                "bench: regression check vs {baseline_path}: sequence amortization \
                 {amort:.1}x (baseline {base_amort:.1}x, tolerance 0.5)"
            );
            assert!(
                amort >= base_amort * 0.5,
                "sequence analyze+compile amortization regressed: {amort:.1}x vs \
                 baseline {base_amort:.1}x (> 50% drop)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates sequence_amortization_factor; \
             skipping the sequence amortization gate"
        ),
    }
    match json_field_f64(&text, "sequence_patch_pct_of_compile") {
        Some(base_patch) => {
            let patch = seq.patch_pct_of_compile;
            eprintln!(
                "bench: regression check vs {baseline_path}: sequence patch cost \
                 {patch:.1}% of full compile (baseline {base_patch:.1}%)"
            );
            // Lower is better; a doubling of relative patch cost fails.
            assert!(
                patch <= (base_patch * 2.0).max(20.0),
                "band-patch cost regressed: {patch:.1}% of a full compile vs \
                 baseline {base_patch:.1}% (more than doubled)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates sequence_patch_pct_of_compile; \
             skipping the sequence patch-cost gate"
        ),
    }
    match json_field_f64(&text, "sequence_warm_start_iter_reduction") {
        Some(base_warm) => {
            let warm = seq.warm_start_iter_reduction;
            eprintln!(
                "bench: regression check vs {baseline_path}: warm-start iteration \
                 reduction {warm:.3}x (baseline {base_warm:.3}x, tolerance 0.5)"
            );
            assert!(
                warm >= base_warm * 0.5,
                "warm-start iteration reduction regressed: {warm:.3}x vs \
                 baseline {base_warm:.3}x (> 50% drop)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates sequence_warm_start_iter_reduction; \
             skipping the warm-start gate"
        ),
    }
    // The PCG iteration-reduction geomean is deterministic per workload
    // set, but quick mode trims the Laplacian suite, so the loose
    // tolerance applies when comparing a quick run against a full-mode
    // baseline; baselines predating the field are skipped with a warning.
    match json_field_f64(&text, "pcg_iter_reduction_geomean") {
        Some(base_pcg) => {
            eprintln!(
                "bench: regression check vs {baseline_path}: PCG iteration reduction \
                 {pcg_reduction:.3}x (baseline {base_pcg:.3}x, tolerance {tolerance})"
            );
            assert!(
                pcg_reduction >= base_pcg * tolerance,
                "PCG iteration-reduction geomean regressed: {pcg_reduction:.3}x vs \
                 baseline {base_pcg:.3}x (> {max_drop_pct:.0}% drop)"
            );
        }
        None => eprintln!(
            "bench: baseline {baseline_path} predates pcg_iter_reduction_geomean; \
             skipping the PCG gate"
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let fast_only = args.iter().any(|a| a == "--fast-tier");
    let seq_only = args.iter().any(|a| a == "--sequence");
    let solver_only = args.iter().any(|a| a == "--solver-suite");
    let baseline = args
        .iter()
        .position(|a| a == "--check-regression")
        .map(|i| {
            args.get(i + 1)
                .expect("--check-regression needs a baseline path")
                .clone()
        });
    let (batch_jobs, samples) = if quick { (128, 3) } else { (1000, 5) };

    let mut datasets = suite();
    if quick {
        // Two smallest systems keep the CI smoke run fast.
        datasets.sort_by_key(|d| d.matrix_rows());
        datasets.truncate(2);
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mode = if quick { "quick" } else { "full" };
    eprintln!(
        "bench: mode={mode} datasets={} batch_jobs={batch_jobs} workers={workers}",
        datasets.len()
    );

    // New-solver-family workloads: the IC(0)-PCG vs plain-CG iteration
    // table over the Laplacian suite and the level-scheduled SpTRSV
    // worker scan. Always measured (the 1.5x iteration-reduction geomean
    // and SpTRSV bitwise identity are acceptance criteria; both are
    // deterministic, so they gate in quick mode too); `--solver-suite`
    // runs *only* this section, which is what CI's solver-suite job
    // invokes in quick mode.
    let ssb = bench_solver_suite(quick);
    for r in &ssb.pcg {
        eprintln!(
            "  {:<12} ({:>5} rows, {:>6} nnz): cg {:>4} iters  ic0-pcg {:>3} iters  \
             ({:.2}x fewer)",
            r.name, r.rows, r.nnz, r.cg_iterations, r.pcg_iterations, r.iteration_reduction
        );
    }
    eprintln!(
        "  sptrsv {} ({} rows, {} tri nnz): {} levels, widest {} rows, \
         avg width {:.1}, serial {:.3} us",
        ssb.sptrsv_name,
        ssb.sptrsv_rows,
        ssb.sptrsv_tri_nnz,
        ssb.sptrsv_levels,
        ssb.sptrsv_max_level_width,
        ssb.sptrsv_avg_level_width,
        ssb.sptrsv_serial_us
    );
    for p in &ssb.sptrsv_points {
        eprintln!(
            "  sptrsv workers {}: {:>8.3} us  ({:.2}x vs serial)",
            p.workers, p.solve_us, p.speedup_vs_serial
        );
    }
    write_pr10_json("BENCH_PR10.json", mode, workers, &ssb);
    eprintln!("bench: wrote BENCH_PR10.json");
    // Solver-suite acceptance gates — deterministic in both modes.
    assert!(
        ssb.sptrsv_bitwise_identical,
        "level-scheduled SpTRSV diverged from the serial substitution reference"
    );
    for r in &ssb.pcg {
        assert!(
            r.pcg_iterations <= r.cg_iterations,
            "{}: IC(0)-PCG took {} iterations vs CG's {}",
            r.name,
            r.pcg_iterations,
            r.cg_iterations
        );
    }
    eprintln!(
        "  geomean PCG iteration reduction vs CG: {:.2}x (need >= 1.50x)",
        ssb.pcg_iter_reduction_geomean
    );
    assert!(
        ssb.pcg_iter_reduction_geomean >= 1.5,
        "IC(0)-PCG reduced Laplacian-suite iterations by only {:.2}x vs plain CG \
         (need >= 1.50x)",
        ssb.pcg_iter_reduction_geomean
    );
    assert!(
        ssb.sptrsv_avg_level_width > 1.0,
        "the SpTRSV plan exposes no level parallelism \
         (avg level width {:.2})",
        ssb.sptrsv_avg_level_width
    );
    if solver_only {
        eprintln!("bench: solver-suite gates passed (solver-suite-only run)");
        return;
    }

    // Matrix-sequence workload: amortized planning, band patches, and
    // the warm-start A/B. Always measured (its gates are part of the
    // suite's acceptance criteria); `--sequence` runs *only* this
    // section, which is what CI's sequence-bench smoke job invokes in
    // quick mode.
    let seqb = bench_sequence(quick);
    eprintln!(
        "  sequence ({} rows, {} nnz, {} steps): full analysis {:.1} us, \
         amortized plan {:.3} us/step ({:.0}x cheaper), {}/{} fixed steps converged",
        seqb.rows,
        seqb.nnz,
        seqb.steps,
        seqb.full_analysis_nanos / 1e3,
        seqb.fixed_plan_nanos_per_step / 1e3,
        seqb.amortization_factor,
        seqb.fixed_converged,
        seqb.steps
    );
    eprintln!(
        "  sequence drift: {} patches, {} recompiles, patch median {:.1} us \
         ({:.2}% of a {:.1} us full compile; in-situ mean {:.1} us)",
        seqb.patches,
        seqb.recompiles,
        seqb.median_patch_nanos / 1e3,
        seqb.patch_pct_of_compile,
        seqb.full_compile_nanos / 1e3,
        seqb.mean_patch_nanos / 1e3
    );
    eprintln!(
        "  sequence warm starts: {} used, iterations {} warm vs {} cold \
         (geomean reduction {:.2}x)",
        seqb.warm_starts_used, seqb.warm_iters, seqb.cold_iters, seqb.warm_start_iter_reduction
    );
    write_pr9_json("BENCH_PR9.json", mode, workers, &seqb);
    eprintln!("bench: wrote BENCH_PR9.json");
    // Sequence acceptance gates. Planning amortization and the patch
    // cost compare medians of the same deterministic work, so they hold
    // in both modes; the warm-start reduction is an exact iteration-count
    // ratio (not a timing), so it gates in both modes too.
    assert!(
        seqb.fixed_converged == seqb.steps as u64,
        "fixed-pattern sequence: only {}/{} steps converged",
        seqb.fixed_converged,
        seqb.steps
    );
    assert!(
        seqb.amortization_factor >= 5.0,
        "sequence per-step planning ({:.3} us) is only {:.1}x cheaper than a full \
         analysis ({:.1} us); need >= 5x",
        seqb.fixed_plan_nanos_per_step / 1e3,
        seqb.amortization_factor,
        seqb.full_analysis_nanos / 1e3
    );
    assert!(
        seqb.patches >= 1,
        "drift workload produced no band patches — the delta path never engaged"
    );
    assert!(
        seqb.patch_pct_of_compile < 20.0,
        "band patch ({:.1} us) costs {:.2}% of a full compile ({:.1} us); need < 20%",
        seqb.median_patch_nanos / 1e3,
        seqb.patch_pct_of_compile,
        seqb.full_compile_nanos / 1e3
    );
    let required_warm_reduction = if quick { 1.02 } else { 1.05 };
    assert!(
        seqb.warm_start_iter_reduction >= required_warm_reduction,
        "warm starts reduced drift-workload iterations by only {:.3}x \
         (need >= {required_warm_reduction:.2}x)",
        seqb.warm_start_iter_reduction
    );
    if seq_only {
        eprintln!("bench: sequence gates passed (sequence-only run)");
        return;
    }

    // Determinism-tier A/B: always measured (it is part of the suite's
    // acceptance gates); `--fast-tier` runs *only* this section, which is
    // what CI's dedicated fast-tier job invokes in quick mode.
    let fast_tier: Vec<FastTierBench> =
        datasets.iter().map(|d| bench_fast_tier(d, quick)).collect();
    for f in &fast_tier {
        eprintln!(
            "  {:<12} fast-tier core det {:>8.3} us  fast {:>8.3} us  ({:.2}x)  \
             iters {} / {}  residual ratio {:.3}  verdicts match: {}",
            f.name,
            f.det_core_us,
            f.fast_core_us,
            f.speedup,
            f.det_iterations,
            f.fast_iterations,
            f.residual_ratio,
            f.verdicts_match
        );
    }
    // The quick smoke run covers only the two smallest systems, where
    // per-call overhead dominates; it gates on parity while the full
    // suite enforces the real 1.15x geomean from the acceptance criteria.
    let required_fast_tier = if quick { 1.0 } else { 1.15 };
    let fast_geomean = geomean_fast_tier_speedup(&fast_tier);
    write_pr8_json(
        "BENCH_PR8.json",
        mode,
        workers,
        required_fast_tier,
        &fast_tier,
    );
    write_fast_tier_csv("fast_tier_speedups.csv", &fast_tier);
    eprintln!("bench: wrote BENCH_PR8.json, fast_tier_speedups.csv");
    for f in &fast_tier {
        assert!(
            f.verdicts_match,
            "{}: the two determinism tiers disagree on convergence",
            f.name
        );
        assert!(
            f.residual_ratio <= 10.0,
            "{}: Fast-tier residual is {:.3}x the Deterministic residual (budget 10x)",
            f.name,
            f.residual_ratio
        );
    }
    eprintln!(
        "  geomean fast-tier speedup vs deterministic: {fast_geomean:.2}x \
         (need >= {required_fast_tier:.2}x)"
    );
    assert!(
        fast_geomean >= required_fast_tier,
        "Fast tier only {fast_geomean:.2}x the Deterministic tier across the suite \
         (need >= {required_fast_tier:.2}x)"
    );
    if fast_only {
        eprintln!("bench: fast-tier gates passed (fast-tier-only run)");
        return;
    }

    let mut results = Vec::new();
    let mut compiled = Vec::new();
    for d in &datasets {
        let r = bench_dataset(d, batch_jobs, samples);
        eprintln!(
            "  {:<12} cold {:>8.3} ms  warm {:>8.3} ms  batch {:>8.1} jobs/s  ({:.1}x cold)",
            r.name, r.cold_solve_ms, r.warm_solve_ms, r.batch_jobs_per_sec, r.batch_speedup_vs_cold
        );
        let c = bench_compiled_spmv(d, quick, r.batch_wall_seconds);
        eprintln!(
            "  {:<12} spmv generic {:>8.3} us  compiled {:>8.3} us  ({:.2}x, {} bands, \
             compile {:.3} ms = {:.3}% of batch)",
            c.name,
            c.generic_spmv_us,
            c.compiled_spmv_us,
            c.speedup,
            c.bands,
            c.compile_ms,
            c.compile_pct_of_batch_wall
        );
        results.push(r);
        compiled.push(c);
    }

    let alloc_checks = loop_allocation_deltas();
    for c in &alloc_checks {
        eprintln!(
            "  {:<12} loop-alloc delta (budget {} -> {} iters): {}",
            c.solver, c.iterations_base, c.iterations_double, c.delta
        );
    }

    let spmv = bench_parallel_spmv(workers.clamp(2, 8), if quick { 20 } else { 100 });
    eprintln!(
        "  parallel spmv ({} rows, {} nnz, {} threads): serial {:.3} ms, parallel {:.3} ms",
        spmv.rows, spmv.nnz, spmv.threads, spmv.serial_ms, spmv.parallel_ms
    );

    let telem = bench_telemetry(&datasets[0], batch_jobs, samples);
    eprintln!(
        "  {:<12} telemetry: disabled {:.3} s, ring {:.3} s ({:+.2}% overhead), \
         trace {} events ({} dropped), reconfigs trace {} / stats {}",
        telem.name,
        telem.disabled_batch_s,
        telem.ring_batch_s,
        telem.overhead_pct,
        telem.trace_events,
        telem.trace_dropped,
        telem.trace_spmv_reconfigs,
        telem.stats_spmv_reconfigs
    );

    let service = bench_service(quick);
    for arm in [&service.affinity, &service.random] {
        eprintln!(
            "  service {:<9} p50 {:>7.3} ms  p99 {:>7.3} ms  p999 {:>7.3} ms  \
             cache {} hits / {} misses ({} shards, {} patterns, {} reqs, \
             arrivals every {:.0} us)",
            arm.label,
            arm.p50_ms,
            arm.p99_ms,
            arm.p999_ms,
            arm.cache_hits,
            arm.cache_misses,
            service.shards,
            service.patterns,
            service.requests,
            service.inter_arrival_us
        );
    }

    let avail = bench_availability(quick);
    eprintln!(
        "  availability: shard {} of {} crashed mid-burst ({} reqs): p50 {:>7.3} ms  \
         p99 {:>7.3} ms  p999 {:>7.3} ms, {} lost, {} restarts, {} failovers, \
         {} health transitions",
        avail.crashed_shard,
        avail.shards,
        avail.requests,
        avail.p50_ms,
        avail.p99_ms,
        avail.p999_ms,
        avail.lost_jobs,
        avail.restarts,
        avail.failovers,
        avail.health_transitions
    );

    // The 2x warm-batch gate needs at least two pool workers (the batch
    // spreads across the pool; a cold solve cannot). On a single-CPU host
    // only the pooling/caching component is measurable, so the gate
    // falls back to requiring a real but smaller win.
    let required_speedup = if workers >= 2 { 2.0 } else { 1.05 };
    // The compiled plan replaces the host SpMV kernel outright, so its
    // gate holds on a single worker too. The quick smoke run covers only
    // the two smallest systems (where per-call overhead dominates and the
    // sample count is tiny), so it gates on parity; the full suite
    // enforces the real 1.15x geomean.
    let required_compiled_speedup = if quick { 1.0 } else { 1.15 };

    write_json(
        "BENCH_PR4.json",
        mode,
        workers,
        required_speedup,
        required_compiled_speedup,
        &results,
        &compiled,
        &alloc_checks,
        &spmv,
        &telem,
        &service,
        &avail,
    );
    eprintln!("bench: wrote BENCH_PR4.json");
    std::fs::write("bench_trace.jsonl", &telem.trace_jsonl).expect("write telemetry trace");
    std::fs::write("bench_metrics.prom", &telem.prometheus).expect("write Prometheus snapshot");
    write_summary(
        "BENCH_SUMMARY.json",
        mode,
        workers,
        geomean_speedup(&results),
        geomean_compiled_speedup(&compiled),
        fast_geomean,
        &telem,
        service.p99_speedup_vs_random,
        &seqb,
        ssb.pcg_iter_reduction_geomean,
    );
    eprintln!("bench: wrote BENCH_SUMMARY.json, bench_trace.jsonl, bench_metrics.prom");
    eprintln!("{}", telem.timeline);

    // Acceptance gates — panic (non-zero exit) on violation.
    let geomean = geomean_speedup(&results);
    eprintln!("  geomean batch speedup vs cold: {geomean:.2}x (need >= {required_speedup:.2}x)");
    assert!(
        geomean >= required_speedup,
        "warm batch throughput only {geomean:.2}x the cold baseline across the suite \
         (need >= {required_speedup:.2}x)"
    );
    for c in &alloc_checks {
        assert_eq!(
            c.delta, 0,
            "{}: warm solver loop allocated ({} extra allocations when doubling iterations)",
            c.solver, c.delta
        );
    }
    assert!(
        spmv.bitwise_identical,
        "parallel SpMV diverged from the serial result"
    );
    let compiled_geomean = geomean_compiled_speedup(&compiled);
    eprintln!(
        "  geomean compiled spmv speedup vs generic: {compiled_geomean:.2}x \
         (need >= {required_compiled_speedup:.2}x)"
    );
    assert!(
        compiled_geomean >= required_compiled_speedup,
        "compiled SpMV only {compiled_geomean:.2}x the generic walk across the suite \
         (need >= {required_compiled_speedup:.2}x)"
    );
    for c in &compiled {
        assert!(
            c.bitwise_identical,
            "{}: compiled SpMV diverged from the generic CSR walk",
            c.name
        );
        assert_eq!(
            c.warm_alloc_delta, 0,
            "{}: warm compiled SpMV path allocated",
            c.name
        );
        assert!(
            c.compile_pct_of_batch_wall < 5.0,
            "{}: plan compile ({:.3} ms) is {:.2}% of the batch wall time (need < 5%)",
            c.name,
            c.compile_ms,
            c.compile_pct_of_batch_wall
        );
    }
    assert!(
        telem.trace_matches_stats,
        "telemetry trace failed to reconstruct FabricRunStats (reconfigs trace {} / stats {}, \
         {} events dropped)",
        telem.trace_spmv_reconfigs, telem.stats_spmv_reconfigs, telem.trace_dropped
    );
    // Overhead is a timing measurement; on the quick smoke run (tiny
    // systems, 3 samples) it is report-only, the full run enforces the
    // < 5% budget from the issue's acceptance criteria — unless the
    // measured delta sits below the run's own noise floor, in which case
    // the summary reports "unreliable" and the gate is vacuous (a number
    // indistinguishable from zero cannot meaningfully fail a 5% budget).
    eprintln!(
        "  telemetry ring overhead: {:+.2}% (noise floor {:.2}%, budget < 5% in full mode)",
        telem.overhead_pct, telem.noise_floor_pct
    );
    if telem.noise_floor_pct > telem.overhead_pct {
        eprintln!(
            "  telemetry overhead is below this run's noise floor; \
             reporting \"unreliable\" and skipping the 5% budget gate"
        );
    } else if !quick {
        assert!(
            telem.overhead_pct < 5.0,
            "RingRecorder overhead {:.2}% exceeds the 5% budget",
            telem.overhead_pct
        );
    }
    // Serving-layer gates. The cache counts are deterministic (the plan
    // cache guarantees misses == distinct patterns per shard), so they
    // hold exactly in both modes; the p99 ratio is a timing measurement,
    // so the quick smoke run only rejects a blowout.
    assert_eq!(
        service.affinity.cache_misses, service.patterns as u64,
        "affinity routing must analyze each pattern on exactly one shard"
    );
    assert!(
        service.random.cache_misses > service.patterns as u64,
        "random routing should smear patterns across shards \
         ({} misses vs {} patterns)",
        service.random.cache_misses,
        service.patterns
    );
    eprintln!(
        "  service warm p99: affinity {:.3} ms vs random {:.3} ms ({:.2}x)",
        service.affinity.p99_ms, service.random.p99_ms, service.p99_speedup_vs_random
    );
    let required_service_speedup = if quick { 0.7 } else { 1.0 };
    assert!(
        service.p99_speedup_vs_random >= required_service_speedup,
        "affinity routing p99 ({:.3} ms) did not beat random routing p99 ({:.3} ms): \
         {:.2}x (need >= {required_service_speedup:.2}x)",
        service.affinity.p99_ms,
        service.random.p99_ms,
        service.p99_speedup_vs_random
    );
    // Availability-under-chaos gates. These hold exactly in both modes:
    // losing a job to a dispatcher crash is a correctness bug, not a
    // timing regression, and the restart/failover counts are driven by
    // the count-based health machine, not the clock.
    assert_eq!(
        avail.lost_jobs, 0,
        "crashing shard {} lost {} jobs (every ticket must resolve converged)",
        avail.crashed_shard, avail.lost_jobs
    );
    assert!(
        avail.p999_ms.is_finite(),
        "availability p999 must stay finite across the outage"
    );
    assert!(
        avail.restarts >= 1,
        "the supervisor must restart the crashed dispatcher"
    );
    assert!(
        avail.failovers >= 1,
        "the broken shard's affinity traffic must spill down the ranking"
    );
    eprintln!(
        "  availability under crash: 0/{} jobs lost, p999 {:.3} ms, \
         {} restarts, {} failovers",
        avail.requests, avail.p999_ms, avail.restarts, avail.failovers
    );
    if let Some(path) = baseline {
        check_regression(
            &path,
            quick,
            workers,
            geomean_speedup(&results),
            geomean_compiled_speedup(&compiled),
            fast_geomean,
            service.p99_speedup_vs_random,
            &seqb,
            ssb.pcg_iter_reduction_geomean,
        );
    }
    eprintln!("bench: all acceptance gates passed");
}
