//! Shared experiment running: Acamar, static baselines, and per-pass SpMV
//! statistics over the Table II dataset suite.

use acamar_core::{Acamar, AcamarConfig, AcamarRunReport};
use acamar_datasets::Dataset;
use acamar_fabric::{spmv, FabricSpec, HwRun, SpmvExecution, StaticAccelerator, UnrollSchedule};
use acamar_solvers::{ConvergenceCriteria, SolverKind};
use acamar_sparse::CsrMatrix;

/// The `SpMV_URB` sweep used by Figs. 6 and 7.
pub const URB_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The representative static baseline for single-point comparisons
/// (Figs. 9 and 10).
pub const URB_REPRESENTATIVE: usize = 16;

/// Convergence criteria used by every experiment (the paper's policy with
/// a budget sized for the scaled datasets).
pub fn criteria() -> ConvergenceCriteria {
    acamar_datasets::verify::table2_criteria()
}

/// Acamar configuration used by every experiment (paper defaults).
pub fn config() -> AcamarConfig {
    AcamarConfig::paper().with_criteria(criteria())
}

/// The device model.
pub fn spec() -> FabricSpec {
    FabricSpec::alveo_u55c()
}

/// The solver a static baseline runs for `d`: the paper "optimistically
/// chooses the solver that offers convergence for the given dataset"
/// (Section VI-A), so the first converging solver of the Table II triple.
pub fn baseline_solver(d: &Dataset) -> SolverKind {
    if d.expected.jacobi {
        SolverKind::Jacobi
    } else if d.expected.cg {
        SolverKind::ConjugateGradient
    } else {
        SolverKind::BiCgStab
    }
}

/// Acamar and a sweep of static baselines on one dataset.
#[derive(Debug)]
pub struct DatasetRun {
    /// The dataset.
    pub dataset: Dataset,
    /// Acamar's run report.
    pub acamar: AcamarRunReport<f32>,
    /// `(SpMV_URB, run)` for each baseline in the sweep.
    pub baselines: Vec<(usize, HwRun<f32>)>,
}

impl DatasetRun {
    /// The baseline run at a specific unroll factor.
    pub fn baseline(&self, urb: usize) -> Option<&HwRun<f32>> {
        self.baselines
            .iter()
            .find(|(u, _)| *u == urb)
            .map(|(_, r)| r)
    }
}

/// Runs Acamar plus static baselines at each `urbs` entry on `d`.
///
/// Per the paper's Fig. 6 setup, "for the baseline, we assume the same
/// solver that is being used in Acamar" — so the static designs run
/// Acamar's final solver (falling back to the Table II choice if Acamar
/// somehow diverged).
pub fn run_dataset(d: &Dataset, urbs: &[usize]) -> DatasetRun {
    let a = d.matrix();
    let b = d.rhs();
    let acamar = Acamar::new(spec(), config())
        .run(&a, &b)
        .expect("dataset shapes are valid");
    let solver = if acamar.converged() {
        acamar.final_solver()
    } else {
        baseline_solver(d)
    };
    let baselines = urbs
        .iter()
        .map(|&u| {
            let run = StaticAccelerator::new(spec(), solver, u)
                .run(&a, &b, &criteria())
                .expect("dataset shapes are valid");
            (u, run)
        })
        .collect();
    DatasetRun {
        dataset: d.clone(),
        acamar,
        baselines,
    }
}

/// Models one SpMV pass of `a` under `schedule` (no solver numerics) —
/// the per-pass utilization/latency view used by Figs. 2, 8, 11, and 12.
pub fn spmv_pass(a: &CsrMatrix<f32>, schedule: &UnrollSchedule) -> SpmvExecution {
    let device = spec();
    schedule
        .entries()
        .iter()
        .fold(SpmvExecution::default(), |acc, e| {
            acc.merge(&spmv::execute_rows(a, e.rows.clone(), e.unroll, &device))
        })
}

/// Builds Acamar's fine-grained plan for `a` under `cfg` and returns the
/// per-pass SpMV execution it yields.
pub fn acamar_pass(a: &CsrMatrix<f32>, cfg: &AcamarConfig) -> (SpmvExecution, usize) {
    let plan = acamar_core::FineGrainedReconfigUnit::new(cfg.clone()).plan(a);
    let exec = spmv_pass(a, &plan.schedule);
    (exec, plan.schedule.changes_per_pass())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    #[test]
    fn baseline_solver_is_first_converging() {
        assert_eq!(baseline_solver(&by_id("Wa").unwrap()), SolverKind::Jacobi);
        assert_eq!(
            baseline_solver(&by_id("2C").unwrap()),
            SolverKind::ConjugateGradient
        );
        assert_eq!(baseline_solver(&by_id("If").unwrap()), SolverKind::BiCgStab);
    }

    #[test]
    fn run_dataset_produces_converging_runs() {
        let d = by_id("Wa").unwrap();
        let run = run_dataset(&d, &[1, 16]);
        assert!(run.acamar.converged());
        assert!(run.baseline(1).unwrap().solve.converged());
        assert!(run.baseline(16).unwrap().solve.converged());
        assert!(run.baseline(2).is_none());
    }

    #[test]
    fn acamar_pass_underutilization_beats_oversized_uniform() {
        let d = by_id("At").unwrap();
        let a = d.matrix();
        let (acamar_exec, _) = acamar_pass(&a, &config());
        let uniform = spmv_pass(&a, &UnrollSchedule::uniform(a.nrows(), 32));
        assert!(acamar_exec.underutilization() < uniform.underutilization());
    }
}
