//! # acamar-bench
//!
//! Experiment harnesses regenerating every table and figure of the Acamar
//! paper's evaluation (Tables I–II, Figures 1–2 and 5–13), plus Criterion
//! microbenchmarks for the software kernels.
//!
//! Run everything with `cargo bench` — each bench target prints the
//! paper-style rows followed by `paper:` / `measured:` comparison lines —
//! or invoke an experiment directly:
//!
//! ```no_run
//! use acamar_bench::experiments;
//! use acamar_datasets::suite;
//!
//! let datasets = suite();
//! let runs = experiments::sweep(&datasets); // Acamar + URB sweep, reused
//! experiments::fig06(&runs);                // latency speedup
//! experiments::fig07(&runs);                // R.U. improvement
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod runner;
pub mod table;
