//! MSID-chain and sampling-rate design-space figures: Fig. 5
//! (reconfiguration rate vs rOpt), Fig. 11 (R.U./latency vs rOpt), and
//! Fig. 12 (R.U. vs sampling rate).

use crate::runner;
use crate::table::{banner, pct, TextTable};
use acamar_datasets::Dataset;

/// Result of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The rOpt values swept.
    pub stages: Vec<usize>,
    /// Mean reconfigurations per pass at each stage count.
    pub mean_reconfigs: Vec<f64>,
}

/// Fig. 5: reconfiguration rate (unroll changes per SpMV pass) against
/// the number of MSID chain stages, averaged over `datasets`.
pub fn fig05(datasets: &[Dataset]) -> Fig5Result {
    banner("Figure 5: reconfiguration rate vs MSID chain stages (rOpt)");
    let stages: Vec<usize> = (0..=12).collect();
    let mut mean_reconfigs = Vec::with_capacity(stages.len());
    let mut t = TextTable::new(["rOpt", "mean reconfigs/pass"]);
    for &s in &stages {
        let cfg = runner::config().with_r_opt(s);
        let total: usize = datasets
            .iter()
            .map(|d| runner::acamar_pass(&d.matrix(), &cfg).1)
            .sum();
        let mean = total as f64 / datasets.len().max(1) as f64;
        t.row([format!("{s}"), format!("{mean:.2}")]);
        mean_reconfigs.push(mean);
    }
    t.print();
    println!(
        "\npaper:    rate decreases with stages and \"becomes almost constant after rOpt = 8\"."
    );
    let at8 = mean_reconfigs[8];
    let at12 = mean_reconfigs[12];
    println!(
        "measured: {:.2} events/pass at rOpt=0, {:.2} at rOpt=8, {:.2} at rOpt=12.",
        mean_reconfigs[0], at8, at12
    );
    Fig5Result {
        stages,
        mean_reconfigs,
    }
}

/// Result of the Fig. 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// The rOpt values swept.
    pub stages: Vec<usize>,
    /// Per dataset: `(id, underutilization per stage, spmv cycles per stage)`.
    pub rows: Vec<(&'static str, Vec<f64>, Vec<u64>)>,
}

impl Fig11Result {
    /// Maximum relative change of SpMV latency across the sweep, per
    /// dataset, relative to `rOpt = 0`.
    pub fn max_latency_change(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, _, cyc)| {
                let base = cyc[0] as f64;
                cyc.iter().map(move |&c| (c as f64 / base - 1.0).abs())
            })
            .fold(0.0, f64::max)
    }
}

/// Fig. 11: per-pass SpMV resource underutilization and latency as the
/// MSID stage count changes — both should stay nearly constant.
pub fn fig11(datasets: &[Dataset]) -> Fig11Result {
    banner("Figure 11: R.U. and SpMV latency vs MSID chain stages");
    let stages: Vec<usize> = vec![0, 1, 2, 4, 8, 12];
    let mut t = TextTable::new(
        std::iter::once("ID".to_string())
            .chain(stages.iter().map(|s| format!("rOpt={s} (RU / cycles)"))),
    );
    let mut rows = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let mut under = Vec::new();
        let mut cycles = Vec::new();
        let mut cells = vec![d.id.to_string()];
        for &s in &stages {
            let cfg = runner::config().with_r_opt(s);
            let (exec, _) = runner::acamar_pass(&a, &cfg);
            cells.push(format!(
                "{} / {}",
                pct(exec.underutilization()),
                exec.cycles
            ));
            under.push(exec.underutilization());
            cycles.push(exec.cycles);
        }
        t.row(cells);
        rows.push((d.id, under, cycles));
    }
    t.print();
    let res = Fig11Result { stages, rows };
    println!(
        "\npaper:    both metrics remain almost constant post-optimization \
         (\"naive to rOpt changes\")."
    );
    println!(
        "measured: max SpMV latency change across the sweep: {}.",
        pct(res.max_latency_change())
    );
    res
}

/// Result of the Fig. 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Sampling rates swept.
    pub rates: Vec<usize>,
    /// Per dataset `(id, underutilization per rate)`.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl Fig12Result {
    /// Mean underutilization at each sampling rate.
    pub fn mean_per_rate(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.rates.len())
            .map(|i| self.rows.iter().map(|(_, u)| u[i]).sum::<f64>() / n)
            .collect()
    }
}

/// Fig. 12: per-pass SpMV resource underutilization against the sampling
/// rate (post-MSID). Finer sampling tracks the rows better.
pub fn fig12(datasets: &[Dataset]) -> Fig12Result {
    banner("Figure 12: R.U. vs sampling rate (post-MSID)");
    let rates = vec![4usize, 8, 16, 32, 64, 128, 512, 4096];
    let mut t = TextTable::new(
        std::iter::once("ID".to_string()).chain(rates.iter().map(|r| format!("SR={r}"))),
    );
    let mut rows = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let under: Vec<f64> = rates
            .iter()
            .map(|&r| {
                let cfg = runner::config().with_sampling_rate(r);
                runner::acamar_pass(&a, &cfg).0.underutilization()
            })
            .collect();
        let mut cells = vec![d.id.to_string()];
        cells.extend(under.iter().map(|&v| pct(v)));
        t.row(cells);
        rows.push((d.id, under));
    }
    t.print();
    let res = Fig12Result { rates, rows };
    let means = res.mean_per_rate();
    println!(
        "\npaper:    increasing the sampling rate decreases underutilization \
         (at the cost of more reconfigurations); 32 is the chosen balance."
    );
    println!(
        "measured: mean R.U. {} at SR=4 down to {} at SR=4096.",
        pct(means[0]),
        pct(*means.last().expect("nonempty sweep"))
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    fn small_suite() -> Vec<Dataset> {
        vec![
            by_id("Fi").unwrap(),
            by_id("At").unwrap(),
            by_id("Ci").unwrap(),
        ]
    }

    #[test]
    fn fig05_rate_is_nonincreasing_and_flattens() {
        let r = fig05(&small_suite());
        for w in r.mean_reconfigs.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "rate increased: {:?}",
                r.mean_reconfigs
            );
        }
        let at8 = r.mean_reconfigs[8];
        let at12 = r.mean_reconfigs[12];
        assert!(
            at12 >= 0.75 * at8 - 0.5,
            "not flat after 8: {at8} -> {at12}"
        );
    }

    #[test]
    fn fig11_latency_stays_roughly_constant() {
        let r = fig11(&small_suite());
        assert!(
            r.max_latency_change() < 0.35,
            "latency moved {} across rOpt sweep",
            r.max_latency_change()
        );
    }

    #[test]
    fn fig12_finer_sampling_reduces_underutilization() {
        let r = fig12(&small_suite());
        let means = r.mean_per_rate();
        assert!(*means.last().unwrap() <= means[0] + 1e-9, "means {means:?}");
    }
}
