//! Headline-claims summary (the paper's abstract / §VI in one table).
//!
//! "Our experiments show a resource utilization and latency improvement
//! up to 3.5x and 6x as well as improved performance efficiency and
//! achieved throughput over a static design and Nvidia GTX 1650 Super."

use crate::runner::{DatasetRun, URB_REPRESENTATIVE, URB_SWEEP};
use crate::table::{banner, f2, pct, TextTable};
use acamar_core::metrics;
use acamar_gpu::{model_csr_spmv, GpuSpec};

/// The headline numbers of one full sweep.
#[derive(Debug, Clone)]
pub struct SummaryResult {
    /// Max latency speedup over any swept baseline.
    pub max_speedup: f64,
    /// Geometric-mean latency speedup vs the representative baseline.
    pub gmean_speedup_representative: f64,
    /// Max R.U. improvement ratio (clamped at 50x).
    pub max_ru_improvement: f64,
    /// Mean achieved throughput of Acamar / static / GPU.
    pub throughput: (f64, f64, f64),
    /// Mean SpMV underutilization of Acamar / GPU.
    pub underutilization: (f64, f64),
    /// Mean area saving vs the representative static design.
    pub area_saving: f64,
    /// Fraction of runs where Acamar converged.
    pub robust_convergence: f64,
}

/// Condenses a sweep into the abstract's headline claims.
pub fn summary(runs: &[DatasetRun]) -> SummaryResult {
    banner("Headline claims (paper abstract / §VI)");
    let gpu = GpuSpec::gtx1650_super();

    let mut max_speedup = 0.0f64;
    let mut rep_speedups = Vec::new();
    let mut max_ru = 0.0f64;
    let mut thr = (0.0, 0.0, 0.0);
    let mut under = (0.0, 0.0);
    let mut area = Vec::new();
    let mut converged = 0usize;
    for run in runs {
        if run.acamar.converged() {
            converged += 1;
        }
        for &u in &URB_SWEEP {
            let base = run.baseline(u).expect("swept");
            max_speedup = max_speedup.max(metrics::latency_speedup(base, &run.acamar));
            max_ru = max_ru.max(metrics::underutilization_improvement(
                base,
                &run.acamar,
                50.0,
            ));
        }
        let rep = run.baseline(URB_REPRESENTATIVE).expect("swept");
        rep_speedups.push(metrics::latency_speedup(rep, &run.acamar).max(1e-9));
        let g = model_csr_spmv(&gpu, &run.dataset.matrix());
        thr.0 += run.acamar.stats.achieved_throughput();
        thr.1 += rep.stats.achieved_throughput();
        thr.2 += g.fraction_of_peak;
        under.0 += run.acamar.stats.spmv.underutilization();
        under.1 += g.lane_underutilization;
        area.push(rep.stats.avg_area_mm2 / run.acamar.stats.avg_area_mm2.max(1e-9));
    }
    let n = runs.len().max(1) as f64;
    let result = SummaryResult {
        max_speedup,
        gmean_speedup_representative: metrics::geometric_mean(&rep_speedups).unwrap_or(0.0),
        max_ru_improvement: max_ru,
        throughput: (thr.0 / n, thr.1 / n, thr.2 / n),
        underutilization: (under.0 / n, under.1 / n),
        area_saving: area.iter().sum::<f64>() / n,
        robust_convergence: converged as f64 / n,
    };

    let mut t = TextTable::new(["claim", "paper", "measured"]);
    t.row([
        "latency improvement (best case)".to_string(),
        "up to 6x (11.61x vs URB=1)".to_string(),
        format!("up to {}x", f2(result.max_speedup)),
    ]);
    t.row([
        "R.U. improvement (best case)".to_string(),
        "up to 3x-3.5x".to_string(),
        format!("up to {}x (clamped 50x)", f2(result.max_ru_improvement)),
    ]);
    t.row([
        "achieved throughput (Acamar)".to_string(),
        "~70% of peak, up to 83%".to_string(),
        pct(result.throughput.0),
    ]);
    t.row([
        "achieved throughput (GPU)".to_string(),
        "very small fraction".to_string(),
        pct(result.throughput.2),
    ]);
    t.row([
        "SpMV underutilization Acamar vs GPU".to_string(),
        "50% vs 81%".to_string(),
        format!(
            "{} vs {}",
            pct(result.underutilization.0),
            pct(result.underutilization.1)
        ),
    ]);
    t.row([
        "area saving vs static".to_string(),
        "~2x".to_string(),
        format!("{}x", f2(result.area_saving)),
    ]);
    t.row([
        "robust convergence".to_string(),
        "all datasets".to_string(),
        pct(result.robust_convergence),
    ]);
    t.print();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep;
    use acamar_datasets::by_id;

    #[test]
    fn summary_reproduces_headline_shapes() {
        let ds = vec![
            by_id("At").unwrap(),
            by_id("2C").unwrap(),
            by_id("Fi").unwrap(),
        ];
        let runs = sweep(&ds);
        let s = summary(&runs);
        assert!(s.max_speedup > 1.5, "max speedup {}", s.max_speedup);
        assert!(s.max_ru_improvement > 1.0);
        assert!(s.throughput.0 > s.throughput.2 * 10.0, "acamar >> gpu");
        assert!(s.underutilization.0 < s.underutilization.1);
        assert_eq!(s.robust_convergence, 1.0);
    }
}
