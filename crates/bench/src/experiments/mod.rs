//! One experiment per table/figure of the paper's evaluation.
//!
//! Every function prints the rows/series the paper reports, followed by a
//! `paper:` line quoting the claim and a `measured:` line with this
//! reproduction's numbers, and returns a result struct for programmatic
//! checks. The bench targets under `benches/` run each experiment on the
//! full Table II suite; EXPERIMENTS.md records the comparison.

mod ablations;
mod compare_figs;
mod kernel_figs;
mod msid_figs;
mod summary;
mod tables;

pub use ablations::{
    ablation_init_unroll, ablation_msid, ablation_overlap, ablation_reorder, ablation_tolerance,
    AblationInitResult, AblationMsidResult, AblationOverlapResult, AblationReorderResult,
    AblationToleranceResult,
};
pub use compare_figs::{
    fig06, fig07, fig08, fig09, fig10, fig13, sweep, Fig10Result, Fig13Result, Fig6Result,
    Fig7Result, Fig8Result, Fig9Result,
};
pub use kernel_figs::{fig01, fig02, Fig1Result, Fig1Row, Fig2Result};
pub use msid_figs::{fig05, fig11, fig12, Fig11Result, Fig12Result, Fig5Result};
pub use summary::{summary, SummaryResult};
pub use tables::{table1, table2, Table1Result, Table2Result, Table2Row};
