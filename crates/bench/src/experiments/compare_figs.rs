//! Acamar-vs-baseline comparison figures: Fig. 6 (latency speedup),
//! Fig. 7 (R.U. improvement), Fig. 8 (vs GPU underutilization), Fig. 9
//! (achieved throughput), Fig. 10 (performance efficiency), Fig. 13
//! (allowed reconfiguration time).

use crate::runner::{self, DatasetRun, URB_REPRESENTATIVE, URB_SWEEP};
use crate::table::{banner, f2, pct, TextTable};
use acamar_core::metrics;
use acamar_datasets::Dataset;
use acamar_fabric::cost;
use acamar_gpu::{model_csr_spmv, GpuSpec};

/// Clamp for underutilization improvement ratios (Fig. 7) when Acamar's
/// waste approaches zero.
const RATIO_CLAMP: f64 = 50.0;

/// Shared sweep: Acamar + the URB sweep of baselines on every dataset.
pub fn sweep(datasets: &[Dataset]) -> Vec<DatasetRun> {
    datasets
        .iter()
        .map(|d| runner::run_dataset(d, &URB_SWEEP))
        .collect()
}

/// Result of the Fig. 6 experiment.
#[derive(Debug)]
pub struct Fig6Result {
    /// Per dataset `(id, speedup per URB)`.
    pub rows: Vec<(&'static str, Vec<f64>)>,
    /// Geometric-mean speedup per URB.
    pub gmean: Vec<f64>,
}

/// Fig. 6: latency speedup of Acamar over the static design per
/// `SpMV_URB` (compute cycles; reconfiguration budgeted in Fig. 13).
pub fn fig06(runs: &[DatasetRun]) -> Fig6Result {
    banner("Figure 6: latency speedup of Acamar over static design");
    let mut t = TextTable::new(
        std::iter::once("ID".to_string()).chain(URB_SWEEP.iter().map(|u| format!("URB={u}"))),
    );
    let mut rows = Vec::new();
    for run in runs {
        let speeds: Vec<f64> = URB_SWEEP
            .iter()
            .map(|&u| metrics::latency_speedup(run.baseline(u).expect("swept"), &run.acamar))
            .collect();
        let mut cells = vec![run.dataset.id.to_string()];
        cells.extend(speeds.iter().map(|&s| format!("{}x", f2(s))));
        t.row(cells);
        rows.push((run.dataset.id, speeds));
    }
    let gmean: Vec<f64> = (0..URB_SWEEP.len())
        .map(|i| {
            let v: Vec<f64> = rows.iter().map(|(_, s)| s[i]).collect();
            metrics::geometric_mean(&v).unwrap_or(0.0)
        })
        .collect();
    let mut cells = vec!["GMEAN".to_string()];
    cells.extend(gmean.iter().map(|&s| format!("{}x", f2(s))));
    t.row(cells);
    t.print();
    let max = rows
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(0.0, f64::max);
    println!("\npaper:    up to 11.61x at URB=1; gains diminish and flatten for URB > 16.");
    println!(
        "measured: up to {}x at URB=1 (GMEAN {}x); GMEAN at URB=64: {}x.",
        f2(max),
        f2(gmean[0]),
        f2(*gmean.last().expect("nonempty"))
    );
    Fig6Result { rows, gmean }
}

/// Result of the Fig. 7 experiment.
#[derive(Debug)]
pub struct Fig7Result {
    /// Per dataset `(id, improvement ratio per URB)`.
    pub rows: Vec<(&'static str, Vec<f64>)>,
    /// Geometric mean per URB.
    pub gmean: Vec<f64>,
}

/// Fig. 7: improvement ratio in SpMV resource underutilization
/// (baseline / Acamar, higher is better).
pub fn fig07(runs: &[DatasetRun]) -> Fig7Result {
    banner("Figure 7: R.U. improvement ratio over static design (higher is better)");
    let mut t = TextTable::new(
        std::iter::once("ID".to_string()).chain(URB_SWEEP.iter().map(|u| format!("URB={u}"))),
    );
    let mut rows = Vec::new();
    for run in runs {
        let ratios: Vec<f64> = URB_SWEEP
            .iter()
            .map(|&u| {
                metrics::underutilization_improvement(
                    run.baseline(u).expect("swept"),
                    &run.acamar,
                    RATIO_CLAMP,
                )
            })
            .collect();
        let mut cells = vec![run.dataset.id.to_string()];
        cells.extend(ratios.iter().map(|&s| format!("{}x", f2(s))));
        t.row(cells);
        rows.push((run.dataset.id, ratios));
    }
    let gmean: Vec<f64> = (0..URB_SWEEP.len())
        .map(|i| {
            let v: Vec<f64> = rows.iter().map(|(_, s)| s[i].max(1e-6)).collect();
            metrics::geometric_mean(&v).unwrap_or(0.0)
        })
        .collect();
    let mut cells = vec!["GMEAN".to_string()];
    cells.extend(gmean.iter().map(|&s| format!("{}x", f2(s))));
    t.row(cells);
    t.print();
    println!(
        "\npaper:    improvement up to ~3x, growing with baseline resources \
         (small-URB baselines already waste little)."
    );
    println!(
        "measured: GMEAN {}x at URB=2 rising to {}x at URB=64 (ratios clamped at {}x).",
        f2(gmean[1]),
        f2(*gmean.last().expect("nonempty")),
        RATIO_CLAMP
    );
    Fig7Result { rows, gmean }
}

/// Result of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Per dataset `(id, acamar R.U., gpu R.U.)`.
    pub rows: Vec<(&'static str, f64, f64)>,
    /// Averages `(acamar, gpu)`.
    pub averages: (f64, f64),
}

/// Fig. 8: SpMV resource underutilization, Acamar vs GTX 1650 Super
/// (lower is better).
pub fn fig08(datasets: &[Dataset]) -> Fig8Result {
    banner("Figure 8: resource underutilization, Acamar vs GTX 1650 Super");
    let gpu = GpuSpec::gtx1650_super();
    let mut t = TextTable::new(["ID", "Acamar", "GPU"]);
    let mut rows = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let (exec, _) = runner::acamar_pass(&a, &runner::config());
        let g = model_csr_spmv(&gpu, &a);
        t.row([
            d.id.to_string(),
            pct(exec.underutilization()),
            pct(g.lane_underutilization),
        ]);
        rows.push((d.id, exec.underutilization(), g.lane_underutilization));
    }
    t.print();
    let n = rows.len().max(1) as f64;
    let avg_a = rows.iter().map(|r| r.1).sum::<f64>() / n;
    let avg_g = rows.iter().map(|r| r.2).sum::<f64>() / n;
    println!("\npaper:    on average Acamar 50% underutilized vs 81% for the GPU.");
    println!("measured: Acamar {} vs GPU {}.", pct(avg_a), pct(avg_g));
    Fig8Result {
        rows,
        averages: (avg_a, avg_g),
    }
}

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Per dataset `(id, acamar %, static %, gpu %)` of peak throughput.
    pub rows: Vec<(&'static str, f64, f64, f64)>,
    /// Averages `(acamar, static, gpu)`.
    pub averages: (f64, f64, f64),
}

/// Fig. 9: achieved compute throughput as a fraction of peak — Acamar vs
/// the static design (top) and vs the GPU (bottom).
pub fn fig09(runs: &[DatasetRun]) -> Fig9Result {
    banner("Figure 9: achieved throughput as % of peak (higher is better)");
    let gpu = GpuSpec::gtx1650_super();
    let mut t = TextTable::new([
        "ID",
        "Acamar",
        &format!("Static URB={URB_REPRESENTATIVE}"),
        "GPU",
    ]);
    let mut rows = Vec::new();
    for run in runs {
        let a = run.dataset.matrix();
        let acamar = run.acamar.stats.achieved_throughput();
        let stat = run
            .baseline(URB_REPRESENTATIVE)
            .expect("swept")
            .stats
            .achieved_throughput();
        let g = model_csr_spmv(&gpu, &a).fraction_of_peak;
        t.row([run.dataset.id.to_string(), pct(acamar), pct(stat), pct(g)]);
        rows.push((run.dataset.id, acamar, stat, g));
    }
    t.print();
    let n = rows.len().max(1) as f64;
    let avg = (
        rows.iter().map(|r| r.1).sum::<f64>() / n,
        rows.iter().map(|r| r.2).sum::<f64>() / n,
        rows.iter().map(|r| r.3).sum::<f64>() / n,
    );
    println!(
        "\npaper:    Acamar achieves ~70% of peak on average (up to 83%); the GPU \
         achieves a very small fraction of its peak."
    );
    println!(
        "measured: Acamar {} vs static {} vs GPU {}.",
        pct(avg.0),
        pct(avg.1),
        pct(avg.2)
    );
    Fig9Result {
        rows,
        averages: avg,
    }
}

/// Result of the Fig. 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Per dataset `(id, acamar GFLOPS/mm², static GFLOPS/mm², area saving x)`.
    pub rows: Vec<(&'static str, f64, f64, f64)>,
    /// Mean area saving of Acamar over the static design.
    pub mean_area_saving: f64,
}

/// Fig. 10: performance efficiency (GFLOPS per mm² of instantiated
/// fabric) and the implied area saving.
pub fn fig10(runs: &[DatasetRun]) -> Fig10Result {
    banner("Figure 10: performance efficiency (GFLOPS/mm², higher is better)");
    let mut t = TextTable::new([
        "ID",
        "Acamar",
        &format!("Static URB={URB_REPRESENTATIVE}"),
        "area saving",
    ]);
    let mut rows = Vec::new();
    for run in runs {
        let base = run.baseline(URB_REPRESENTATIVE).expect("swept");
        let acamar_hw = acamar_fabric::HwRun {
            solve: run.acamar.solve.clone(),
            stats: run.acamar.stats.clone(),
            clock_mhz: run.acamar.clock_mhz,
        };
        let pe_a = acamar_hw.gflops_per_mm2();
        let pe_b = base.gflops_per_mm2();
        let saving = base.stats.avg_area_mm2 / acamar_hw.stats.avg_area_mm2.max(1e-9);
        t.row([
            run.dataset.id.to_string(),
            f2(pe_a),
            f2(pe_b),
            format!("{}x", f2(saving)),
        ]);
        rows.push((run.dataset.id, pe_a, pe_b, saving));
    }
    t.print();
    let n = rows.len().max(1) as f64;
    let mean_saving = rows.iter().map(|r| r.3).sum::<f64>() / n;
    println!(
        "\npaper:    Acamar averages ~720 GFLOPS/mm² and is ~2x more area \
         efficient than the static design."
    );
    println!("measured: mean area saving {}x.", f2(mean_saving));
    Fig10Result {
        rows,
        mean_area_saving: mean_saving,
    }
}

/// Result of the Fig. 13 experiment.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Per dataset `(id, allowed seconds per event, modeled ICAP seconds
    /// per event, fits)`.
    pub rows: Vec<(&'static str, f64, f64, bool)>,
}

/// Fig. 13: the per-event reconfiguration-time budget that keeps Acamar
/// no slower than the static design, against the modeled ICAP time.
pub fn fig13(runs: &[DatasetRun]) -> Fig13Result {
    banner("Figure 13: allowed reconfiguration time per event");
    let device = runner::spec();
    let mut t = TextTable::new(["ID", "allowed (ms)", "ICAP model (ms)", "fits"]);
    let mut rows = Vec::new();
    for run in runs {
        let base = run.baseline(URB_REPRESENTATIVE).expect("swept");
        let allowed = metrics::allowed_reconfig_seconds(base, &run.acamar);
        let max_u = run.acamar.plan.schedule.max_unroll();
        let bits = cost::bitstream_bits(&cost::spmv_engine(max_u));
        let icap_s = bits as f64 / (device.icap_gbps * 1e9);
        match allowed {
            Some(budget) => {
                let fits = icap_s <= budget;
                t.row([
                    run.dataset.id.to_string(),
                    format!("{:.3}", budget * 1e3),
                    format!("{:.3}", icap_s * 1e3),
                    if fits { "yes" } else { "no" }.to_string(),
                ]);
                rows.push((run.dataset.id, budget, icap_s, fits));
            }
            None => {
                t.row([
                    run.dataset.id.to_string(),
                    "unbounded".to_string(),
                    format!("{:.3}", icap_s * 1e3),
                    "yes".to_string(),
                ]);
                rows.push((run.dataset.id, f64::INFINITY, icap_s, true));
            }
        }
    }
    t.print();
    let fitting = rows.iter().filter(|r| r.3).count();
    println!(
        "\npaper:    reconfiguration must finish within per-dataset bounds to keep \
         Acamar no slower than the baseline (latency is a secondary goal)."
    );
    println!(
        "measured: ICAP model fits the budget on {fitting}/{} datasets (vs the \
         URB={URB_REPRESENTATIVE} baseline).",
        rows.len()
    );
    Fig13Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    fn small_runs() -> Vec<DatasetRun> {
        let ds = vec![by_id("Wa").unwrap(), by_id("Li").unwrap()];
        sweep(&ds)
    }

    #[test]
    fn fig06_speedup_monotone_decreasing_in_urb() {
        let runs = small_runs();
        let r = fig06(&runs);
        assert!(r.gmean[0] > 1.0, "URB=1 speedup {:?}", r.gmean);
        // speedup vs URB=1 baseline must exceed speedup vs URB=64 baseline
        assert!(r.gmean[0] > *r.gmean.last().unwrap());
    }

    #[test]
    fn fig07_improvement_grows_with_baseline_resources() {
        let runs = small_runs();
        let r = fig07(&runs);
        let first = r.gmean[1]; // URB=2
        let last = *r.gmean.last().unwrap(); // URB=64
        assert!(last > first, "gmean {:?}", r.gmean);
    }

    #[test]
    fn fig08_gpu_wastes_more_than_acamar() {
        let ds = vec![by_id("Wa").unwrap(), by_id("At").unwrap()];
        let r = fig08(&ds);
        assert!(r.averages.1 > r.averages.0, "{:?}", r.averages);
        assert!(r.averages.1 > 0.6);
    }

    #[test]
    fn fig09_acamar_gets_closest_to_peak() {
        // Sparse datasets (NNZ/row well under the baseline's 16 lanes):
        // the static design wastes most slots while Acamar sizes to fit.
        // (Dense datasets can go the other way — the paper's Pr/Cr note.)
        let ds = vec![by_id("At").unwrap(), by_id("2C").unwrap()];
        let runs = sweep(&ds);
        let r = fig09(&runs);
        let (a, s, g) = r.averages;
        assert!(a > s, "acamar {a} static {s}");
        assert!(a > g, "acamar {a} gpu {g}");
        assert!(g < 0.05, "gpu should be tiny: {g}");
        assert!(a > 0.5, "acamar should be well utilized: {a}");
    }

    #[test]
    fn fig10_acamar_is_more_area_efficient_on_sparse_datasets() {
        // Datasets sparser than the URB=16 baseline: Acamar instantiates a
        // smaller engine and wins on area. (Datasets denser than the
        // baseline can lose, exactly as the paper notes for Ga/Pr/Si.)
        let ds = vec![by_id("At").unwrap(), by_id("2C").unwrap()];
        let runs = sweep(&ds);
        let r = fig10(&runs);
        assert!(r.mean_area_saving > 1.0, "saving {}", r.mean_area_saving);
        for (id, pe_a, pe_b, _) in &r.rows {
            assert!(pe_a > pe_b, "{id}: {pe_a} <= {pe_b}");
        }
    }

    #[test]
    fn fig13_produces_a_budget_per_dataset() {
        let runs = small_runs();
        let r = fig13(&runs);
        assert_eq!(r.rows.len(), 2);
        for (_, budget, icap, _) in &r.rows {
            // The budget is a signed slack: finite (possibly negative when
            // Acamar's compute alone already matches the baseline) or
            // unbounded when no reconfiguration happens.
            assert!(budget.is_finite() || budget.is_infinite());
            assert!(*icap > 0.0);
        }
    }
}
