//! Ablations of Acamar's design choices (beyond the paper's figures):
//! the MSID chain's effect on *time* (not just event counts), overlapped
//! partial reconfiguration, and the static initialize-engine width.

use crate::runner;
use crate::table::{banner, pct, TextTable};
use acamar_core::Acamar;
use acamar_datasets::Dataset;
use acamar_fabric::cost;

/// Result of the MSID-ablation experiment.
#[derive(Debug, Clone)]
pub struct AblationMsidResult {
    /// Per dataset `(id, events without MSID, events with MSID,
    /// per-pass reconfig ms without, with)`.
    pub rows: Vec<(&'static str, usize, usize, f64, f64)>,
    /// Mean fraction of per-pass reconfiguration time the chain removes.
    pub mean_time_saving: f64,
}

/// MSID ablation: reconfiguration *time* per SpMV pass with the chain off
/// (`rOpt = 0`) and on (`rOpt = 8`).
pub fn ablation_msid(datasets: &[Dataset]) -> AblationMsidResult {
    banner("Ablation: MSID chain off vs on (reconfiguration time per pass)");
    let device = runner::spec();
    let mut t = TextTable::new([
        "ID",
        "events (off)",
        "events (on)",
        "reconf ms/pass (off)",
        "reconf ms/pass (on)",
    ]);
    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let (off_exec, off_events) = runner::acamar_pass(&a, &runner::config().with_r_opt(0));
        let (_on_exec, on_events) = runner::acamar_pass(&a, &runner::config());
        let _ = off_exec;
        // Approximate each event with the ICAP time of the largest engine
        // in the schedule (region-sized bitstream).
        let plan = acamar_core::FineGrainedReconfigUnit::new(runner::config()).plan(&a);
        let bits = cost::bitstream_bits(&cost::spmv_engine(plan.schedule.max_unroll()));
        let per_event = bits as f64 / (device.icap_gbps * 1e9);
        let off_ms = off_events as f64 * per_event * 1e3;
        let on_ms = on_events as f64 * per_event * 1e3;
        if off_ms > 0.0 {
            savings.push(1.0 - on_ms / off_ms);
        }
        t.row([
            d.id.to_string(),
            off_events.to_string(),
            on_events.to_string(),
            format!("{off_ms:.3}"),
            format!("{on_ms:.3}"),
        ]);
        rows.push((d.id, off_events, on_events, off_ms, on_ms));
    }
    t.print();
    let mean = if savings.is_empty() {
        0.0
    } else {
        savings.iter().sum::<f64>() / savings.len() as f64
    };
    println!(
        "\npaper:    the MSID chain exists purely to cut reconfiguration overhead \
         (Fig. 4-5); R.U. and latency stay put (Fig. 11)."
    );
    println!(
        "measured: mean per-pass reconfiguration-time saving {} across datasets \
         that reconfigure at all.",
        pct(mean)
    );
    AblationMsidResult {
        rows,
        mean_time_saving: mean,
    }
}

/// Result of the overlap-ablation experiment.
#[derive(Debug, Clone)]
pub struct AblationOverlapResult {
    /// Per dataset `(id, total ms serialized, total ms overlapped)`.
    pub rows: Vec<(&'static str, f64, f64)>,
    /// Mean end-to-end time saving from overlapping.
    pub mean_saving: f64,
}

/// Overlap ablation: end-to-end modeled time with serialized DFX
/// reconfiguration (the paper's design) vs double-buffered overlap (this
/// reproduction's extension).
pub fn ablation_overlap(datasets: &[Dataset]) -> AblationOverlapResult {
    banner("Ablation: serialized vs overlapped partial reconfiguration");
    let mut t = TextTable::new(["ID", "total ms (serial)", "total ms (overlap)", "saving"]);
    let mut rows = Vec::new();
    let mut savings = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let b = d.rhs();
        let serial = Acamar::new(runner::spec(), runner::config())
            .run(&a, &b)
            .expect("valid dataset");
        let overlap = Acamar::new(runner::spec(), runner::config().with_overlap(true))
            .run(&a, &b)
            .expect("valid dataset");
        let (ts, to) = (serial.total_seconds() * 1e3, overlap.total_seconds() * 1e3);
        let saving = if ts > 0.0 { 1.0 - to / ts } else { 0.0 };
        savings.push(saving);
        t.row([
            d.id.to_string(),
            format!("{ts:.3}"),
            format!("{to:.3}"),
            pct(saving),
        ]);
        rows.push((d.id, ts, to));
    }
    t.print();
    let mean = savings.iter().sum::<f64>() / savings.len().max(1) as f64;
    println!(
        "\nnote:     extension beyond the paper (which serializes DFX); overlap \
         hides ICAP streaming behind each set's compute."
    );
    println!("measured: mean end-to-end saving {}.", pct(mean));
    AblationOverlapResult {
        rows,
        mean_saving: mean,
    }
}

/// Result of the initialize-engine ablation.
#[derive(Debug, Clone)]
pub struct AblationInitResult {
    /// Initialize-engine widths swept.
    pub widths: Vec<usize>,
    /// Per dataset `(id, total compute kilocycles per width)`.
    pub rows: Vec<(&'static str, Vec<u64>)>,
}

/// Initialize-engine ablation: the paper keeps a static, "unoptimized"
/// SpMV engine for the pre-loop pass; this sweeps its width to show the
/// choice barely matters (it runs once per solver attempt).
pub fn ablation_init_unroll(datasets: &[Dataset]) -> AblationInitResult {
    banner("Ablation: initialize-phase static SpMV engine width");
    let widths = vec![1usize, 4, 16];
    let mut t = TextTable::new(
        std::iter::once("ID".to_string())
            .chain(widths.iter().map(|w| format!("init U={w} (kcycles)"))),
    );
    let mut rows = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let b = d.rhs();
        let mut cells = vec![d.id.to_string()];
        let mut per_width = Vec::new();
        for &w in &widths {
            let mut cfg = runner::config();
            cfg.init_unroll = w;
            let rep = Acamar::new(runner::spec(), cfg)
                .run(&a, &b)
                .expect("valid dataset");
            let kcycles = rep.stats.cycles.compute() / 1000;
            cells.push(kcycles.to_string());
            per_width.push(kcycles);
        }
        t.row(cells);
        rows.push((d.id, per_width));
    }
    t.print();
    println!(
        "\npaper:    \"to avoid the reconfiguration latency, Acamar does not \
         reconfigure the SpMV unit in the initialize unit and continues with \
         an unoptimized variant\" (§IV-B)."
    );
    println!("measured: total compute is insensitive to the init width (one pass).");
    AblationInitResult { widths, rows }
}

/// Result of the MSID-tolerance ablation.
#[derive(Debug, Clone)]
pub struct AblationToleranceResult {
    /// Tolerances swept.
    pub tolerances: Vec<f64>,
    /// Per tolerance: `(mean events/pass, mean underutilization)`.
    pub per_tolerance: Vec<(f64, f64)>,
}

/// MSID-tolerance ablation (paper §V-D): larger tolerances merge more
/// sets — fewer reconfigurations, but unroll factors drift further from
/// the per-set optimum, raising underutilization. The paper picks 0.15.
pub fn ablation_tolerance(datasets: &[Dataset]) -> AblationToleranceResult {
    banner("Ablation: MSID tolerance (events/pass vs R.U.)");
    let tolerances = vec![0.0, 0.05, 0.15, 0.3, 0.6, 1.0];
    let mut t = TextTable::new(["tolerance", "mean events/pass", "mean R.U."]);
    let mut per_tolerance = Vec::new();
    for &tol in &tolerances {
        let mut events = 0usize;
        let mut ru = 0.0f64;
        for d in datasets {
            let a = d.matrix();
            let cfg = runner::config().with_msid_tolerance(tol);
            let (exec, ev) = runner::acamar_pass(&a, &cfg);
            events += ev;
            ru += exec.underutilization();
        }
        let n = datasets.len().max(1) as f64;
        let mean_events = events as f64 / n;
        let mean_ru = ru / n;
        t.row([
            format!("{tol:.2}"),
            format!("{mean_events:.2}"),
            pct(mean_ru),
        ]);
        per_tolerance.push((mean_events, mean_ru));
    }
    t.print();
    println!(
        "\npaper:    \"a number greater than 0.5 signifies a more tolerable system \
         that can result in a smaller reconfiguration rate but possible wasted \
         resources\"; 0.15 is the chosen setting (§V-D)."
    );
    println!(
        "measured: events/pass falls from {:.2} (tol 0) to {:.2} (tol 1.0) while \
         R.U. rises from {} to {}.",
        per_tolerance[0].0,
        per_tolerance.last().expect("nonempty").0,
        pct(per_tolerance[0].1),
        pct(per_tolerance.last().expect("nonempty").1),
    );
    AblationToleranceResult {
        tolerances,
        per_tolerance,
    }
}

/// Result of the reordering ablation.
#[derive(Debug, Clone)]
pub struct AblationReorderResult {
    /// Per workload `(name, R.U. original, R.U. sorted, events original,
    /// events sorted)`.
    pub rows: Vec<(String, f64, f64, usize, usize)>,
}

/// Reordering ablation: sort rows by NNZ (a symmetric permutation) before
/// planning — homogeneous sets fit their unroll factor almost perfectly.
/// Runs on the high-variance stress workloads where it matters.
pub fn ablation_reorder() -> AblationReorderResult {
    banner("Ablation: NNZ-sorted row reordering before fine-grained planning");
    let mut t = TextTable::new([
        "workload",
        "R.U. (original)",
        "R.U. (sorted)",
        "events (original)",
        "events (sorted)",
    ]);
    let mut rows = Vec::new();
    for w in acamar_datasets::stress_suite() {
        if w.dim > 4096 {
            continue; // keep the sweep fast; chunking covered elsewhere
        }
        let a = w.matrix();
        let perm = acamar_sparse::permute::permutation_by_row_nnz(&a);
        let sorted =
            acamar_sparse::permute::permute_symmetric(&a, &perm).expect("valid permutation");
        let (orig_exec, orig_events) = runner::acamar_pass(&a, &runner::config());
        let (sort_exec, sort_events) = runner::acamar_pass(&sorted, &runner::config());
        t.row([
            w.name.to_string(),
            pct(orig_exec.underutilization()),
            pct(sort_exec.underutilization()),
            orig_events.to_string(),
            sort_events.to_string(),
        ]);
        rows.push((
            w.name.to_string(),
            orig_exec.underutilization(),
            sort_exec.underutilization(),
            orig_events,
            sort_events,
        ));
    }
    t.print();
    println!(
        "
note:     extension beyond the paper (related-work [39] territory):          reordering complements — and on skewed workloads outperforms —          per-set averaging, at the cost of a host-side permutation."
    );
    let improved = rows.iter().filter(|r| r.2 <= r.1 + 1e-9).count();
    println!(
        "measured: sorting reduced (or matched) R.U. on {improved}/{} workloads.",
        rows.len()
    );
    AblationReorderResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    fn ds() -> Vec<Dataset> {
        vec![by_id("Fi").unwrap(), by_id("At").unwrap()]
    }

    #[test]
    fn tolerance_trades_events_for_utilization() {
        let r = ablation_tolerance(&ds());
        // Any nonzero tolerance should not reconfigure *more* than exact
        // matching only (the chain is not monotone *between* nonzero
        // tolerances — merges can split runs across stages — but merging
        // never loses to no merging).
        let baseline = r.per_tolerance[0].0;
        for (events, _) in &r.per_tolerance[1..] {
            assert!(*events <= baseline + 1e-9, "{:?}", r.per_tolerance);
        }
        // R.U. at the loosest tolerance is at least that at the tightest
        let first = r.per_tolerance[0].1;
        let last = r.per_tolerance.last().unwrap().1;
        assert!(last >= first - 1e-9, "{first} -> {last}");
    }

    #[test]
    fn reordering_helps_on_skewed_workloads() {
        let r = ablation_reorder();
        assert!(!r.rows.is_empty());
        // On the bimodal workload, sorted sets fit their unroll factor
        // far better than interleaved ones.
        let bimodal = r
            .rows
            .iter()
            .find(|row| row.0 == "bimodal-circuit")
            .expect("stress suite has the bimodal workload");
        assert!(
            bimodal.2 < bimodal.1,
            "sorted R.U. {} should beat original {}",
            bimodal.2,
            bimodal.1
        );
    }

    #[test]
    fn msid_ablation_never_increases_events() {
        let r = ablation_msid(&ds());
        for (id, off, on, _, _) in &r.rows {
            assert!(on <= off, "{id}: {on} > {off}");
        }
        assert!(r.mean_time_saving >= 0.0);
    }

    #[test]
    fn overlap_ablation_never_slower() {
        let r = ablation_overlap(&ds());
        for (id, serial, overlap) in &r.rows {
            assert!(overlap <= &(serial * 1.0001), "{id}: {overlap} > {serial}");
        }
        assert!(r.mean_saving >= 0.0);
    }

    #[test]
    fn init_width_changes_compute_only_marginally() {
        let r = ablation_init_unroll(&ds());
        for (id, cyc) in &r.rows {
            let min = *cyc.iter().min().unwrap() as f64;
            let max = *cyc.iter().max().unwrap() as f64;
            assert!(
                max / min.max(1.0) < 1.5,
                "{id}: init width swings compute {min} -> {max}"
            );
        }
    }
}
