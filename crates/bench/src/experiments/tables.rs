//! Table I (solver convergence criteria) and Table II (per-dataset
//! convergence matrix).

use crate::runner;
use crate::table::{banner, TextTable};
use acamar_core::Acamar;
use acamar_datasets::{verify, Dataset};
use acamar_solvers::{paper_table1, SolverKind};

/// Result of the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// `(solver, criterion)` rows as printed.
    pub rows: Vec<(&'static str, &'static str)>,
}

/// Prints the paper's Table I (structural requirements for convergence).
pub fn table1() -> Table1Result {
    banner("Table I: structural requirements on A for convergence");
    let rows = paper_table1();
    let mut t = TextTable::new(["Solver", "Convergence Criteria"]);
    for (s, c) in &rows {
        t.row([*s, *c]);
    }
    t.print();
    println!(
        "\npaper:    11 solver/criterion rows; Acamar executes JB, CG, BiCG-STAB \
         (plus GS/SOR/GMRES in software here)."
    );
    println!("measured: static table (definitionally identical).");
    Table1Result { rows }
}

/// One measured Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The dataset.
    pub dataset: Dataset,
    /// Measured (JB, CG, BiCG-STAB) convergence.
    pub measured: acamar_datasets::ExpectedConvergence,
    /// Whether Acamar converged.
    pub acamar: bool,
    /// Which solver Acamar finished with.
    pub acamar_solver: SolverKind,
    /// Solver switches Acamar needed.
    pub switches: usize,
    /// Whether the measured triple matches the paper.
    pub matches_paper: bool,
}

/// Result of the Table II experiment.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Every row.
    pub rows: Vec<Table2Row>,
    /// Rows whose triple matches the paper.
    pub matching_rows: usize,
    /// Rows where Acamar converged.
    pub acamar_converged: usize,
}

/// Runs the Table II experiment on `datasets`: measures each solver's
/// convergence in f32 and runs Acamar for the final column.
pub fn table2(datasets: &[Dataset]) -> Table2Result {
    banner("Table II: solver convergence per dataset (paper tol 1e-5, f32)");
    let mut t = TextTable::new([
        "ID",
        "Dataset",
        "DIM",
        "Sparsity%",
        "JB",
        "CG",
        "BiCG-STAB",
        "Acamar",
        "via",
        "paper",
        "match",
    ]);
    let mut rows = Vec::new();
    for d in datasets {
        let triple = verify::measure_triple(d);
        let a = d.matrix();
        let rep = Acamar::new(runner::spec(), runner::config())
            .run(&a, &d.rhs())
            .expect("valid dataset");
        let mark = |b: bool| if b { "✓" } else { "✗" };
        let row = Table2Row {
            dataset: d.clone(),
            measured: triple.measured,
            acamar: rep.converged(),
            acamar_solver: rep.final_solver(),
            switches: rep.solver_switches(),
            matches_paper: triple.measured == d.expected,
        };
        t.row([
            d.id.to_string(),
            d.name.to_string(),
            format!("{}", d.matrix_rows()),
            format!("{:.4}", 100.0 * a.density()),
            mark(row.measured.jacobi).to_string(),
            mark(row.measured.cg).to_string(),
            mark(row.measured.bicgstab).to_string(),
            mark(row.acamar).to_string(),
            row.acamar_solver.to_string(),
            d.expected.marks(),
            if row.matches_paper { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    t.print();
    let matching = rows.iter().filter(|r| r.matches_paper).count();
    let acamar_ok = rows.iter().filter(|r| r.acamar).count();
    println!("\npaper:    no single solver converges on all 25 datasets; Acamar column all ✓.");
    println!(
        "measured: {matching}/{} triples match the paper; Acamar converged on {acamar_ok}/{}.",
        rows.len(),
        rows.len()
    );
    Table2Result {
        rows,
        matching_rows: matching,
        acamar_converged: acamar_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    #[test]
    fn table1_prints_all_rows() {
        let r = table1();
        assert_eq!(r.rows.len(), 11);
    }

    #[test]
    fn table2_smoke_on_three_datasets() {
        let ds = vec![
            by_id("Wa").unwrap(),
            by_id("2C").unwrap(),
            by_id("Fe").unwrap(),
        ];
        let r = table2(&ds);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.matching_rows, 3);
        assert_eq!(r.acamar_converged, 3);
        // Fe (✓✗✗): Acamar should land on Jacobi.
        assert_eq!(r.rows[2].acamar_solver, SolverKind::Jacobi);
    }
}
