//! Fig. 1 (SpMV share of solver latency) and Fig. 2 (baseline SpMV
//! resource underutilization vs unroll factor).

use crate::runner;
use crate::table::{banner, pct, TextTable};
use acamar_datasets::Dataset;
use acamar_fabric::{StaticAccelerator, UnrollSchedule};
use acamar_solvers::SolverKind;

/// One dataset's SpMV latency share under one solver.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Dataset ID.
    pub id: &'static str,
    /// Solver measured.
    pub solver: SolverKind,
    /// Fraction of compute cycles spent in SpMV.
    pub spmv_share: f64,
}

/// Result of the Fig. 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// All measured rows.
    pub rows: Vec<Fig1Row>,
    /// Mean SpMV share across rows.
    pub mean_share: f64,
}

/// Fig. 1: run each of JB/CG/BiCG-STAB (where Table II says it converges)
/// on a static design and report the SpMV share of compute cycles.
pub fn fig01(datasets: &[Dataset]) -> Fig1Result {
    banner("Figure 1: SpMV share of solver latency (static design, URB=8)");
    let mut rows = Vec::new();
    let mut t = TextTable::new(["ID", "JB", "CG", "BiCG-STAB"]);
    for d in datasets {
        let a = d.matrix();
        let b = d.rhs();
        let mut cells = vec![d.id.to_string()];
        for (solver, expected) in [
            (SolverKind::Jacobi, d.expected.jacobi),
            (SolverKind::ConjugateGradient, d.expected.cg),
            (SolverKind::BiCgStab, d.expected.bicgstab),
        ] {
            if !expected {
                cells.push("-".into());
                continue;
            }
            let run = StaticAccelerator::new(runner::spec(), solver, 8)
                .run(&a, &b, &runner::criteria())
                .expect("valid dataset");
            let share = run.stats.cycles.spmv_share();
            rows.push(Fig1Row {
                id: d.id,
                solver,
                spmv_share: share,
            });
            cells.push(pct(share));
        }
        t.row(cells);
    }
    t.print();
    let mean = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(|r| r.spmv_share).sum::<f64>() / rows.len() as f64
    };
    println!(
        "\npaper:    \"SpMV consumes most of the time, making it the most expensive kernel\"."
    );
    println!(
        "measured: mean SpMV share {} across {} (dataset, solver) pairs.",
        pct(mean),
        rows.len()
    );
    Fig1Result {
        rows,
        mean_share: mean,
    }
}

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Unroll factors swept.
    pub unrolls: Vec<usize>,
    /// Per dataset: `(id, underutilization per unroll)`.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl Fig2Result {
    /// Mean underutilization at each swept unroll factor.
    pub fn mean_per_unroll(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.unrolls.len())
            .map(|i| self.rows.iter().map(|(_, u)| u[i]).sum::<f64>() / n)
            .collect()
    }
}

/// Fig. 2: resource underutilization of a *fixed* unroll factor per
/// dataset (one SpMV pass; Eq. 5).
pub fn fig02(datasets: &[Dataset]) -> Fig2Result {
    banner("Figure 2: baseline SpMV resource underutilization vs unroll factor");
    let unrolls = vec![2usize, 4, 8, 16, 32, 64];
    let mut t = TextTable::new(
        std::iter::once("ID".to_string()).chain(unrolls.iter().map(|u| format!("U={u}"))),
    );
    let mut rows = Vec::new();
    for d in datasets {
        let a = d.matrix();
        let under: Vec<f64> = unrolls
            .iter()
            .map(|&u| {
                runner::spmv_pass(&a, &UnrollSchedule::uniform(a.nrows(), u)).underutilization()
            })
            .collect();
        let mut cells = vec![d.id.to_string()];
        cells.extend(under.iter().map(|&v| pct(v)));
        t.row(cells);
        rows.push((d.id, under));
    }
    t.print();
    let res = Fig2Result { unrolls, rows };
    let means = res.mean_per_unroll();
    println!(
        "\npaper:    no fixed unroll factor is optimal for all datasets; \
         underutilization grows with allocated resources."
    );
    println!(
        "measured: mean underutilization {} at U=2 rising to {} at U=64.",
        pct(means[0]),
        pct(*means.last().expect("nonempty sweep"))
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_datasets::by_id;

    #[test]
    fn fig01_spmv_dominates() {
        let ds = vec![by_id("Wa").unwrap(), by_id("If").unwrap()];
        let r = fig01(&ds);
        assert!(r.mean_share > 0.4, "mean share {}", r.mean_share);
        // converging solvers only: Wa has 3, If has 1
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn fig02_underutilization_is_monotone_in_unroll() {
        let ds = vec![by_id("At").unwrap(), by_id("Li").unwrap()];
        let r = fig02(&ds);
        for (id, u) in &r.rows {
            for w in u.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{id}: underutilization not monotone: {u:?}"
                );
            }
        }
        let means = r.mean_per_unroll();
        assert!(means.last().unwrap() > &0.5);
    }
}
