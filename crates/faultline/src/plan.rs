//! Fault categories and the seeded decision plan.

use acamar_sparse::rng::DetRng;
use std::fmt;

/// The fault categories the harness can inject, one per seam the
/// resilient engine and the serving layer defend.
///
/// The first five target engine/fabric seams (PR 2); the last three
/// target the serving layer's own seams — the dispatcher threads and the
/// admission queue — which sit *above* the engine's panic isolation and
/// therefore need their own supervision to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultCategory {
    /// A NaN/Inf value written into a right-hand-side vector before the
    /// solve starts (seam: `acamar-engine` job intake).
    RhsPoison,
    /// A stuck bit in the Dynamic SpMV Kernel corrupting one output
    /// element of every loop-phase SpMV of one solver attempt (seam:
    /// `acamar-fabric` kernel executor).
    SpmvBitFlip,
    /// An ICAP partial-reconfiguration abort: a scheduled nested-region
    /// swap fails mid-stream, leaving the previous unroll active (seam:
    /// `acamar-fabric` reconfiguration controller).
    ReconfigAbort,
    /// Corruption of a plan-cache entry's stored pattern metadata (seam:
    /// `acamar-engine` plan cache).
    CacheCorruption,
    /// A worker thread panicking or stalling mid-job (seam:
    /// `acamar-engine` worker pool).
    WorkerDisruption,
    /// A shard dispatcher thread panicking while it holds a wave of
    /// in-flight jobs (seam: `acamar-service` dispatch loop). The
    /// supervisor must respawn the dispatcher and re-queue the wave.
    DispatcherPanic,
    /// A shard dispatcher wedging for a bounded interval before
    /// dispatching its wave (seam: `acamar-service` dispatch loop). The
    /// heartbeat watchdog must notice the stall.
    DispatcherStall,
    /// A queued job silently dropped between pop and dispatch (seam:
    /// `acamar-service` admission queue). The retry budget must re-queue
    /// it or resolve its ticket with a typed error.
    QueueDrop,
}

impl FaultCategory {
    /// Every category, in [`FaultCategory::index`] order.
    pub const ALL: [FaultCategory; Self::COUNT] = [
        FaultCategory::RhsPoison,
        FaultCategory::SpmvBitFlip,
        FaultCategory::ReconfigAbort,
        FaultCategory::CacheCorruption,
        FaultCategory::WorkerDisruption,
        FaultCategory::DispatcherPanic,
        FaultCategory::DispatcherStall,
        FaultCategory::QueueDrop,
    ];

    /// Number of categories (length of [`FaultCategory::ALL`]).
    pub const COUNT: usize = 8;

    /// The engine/fabric-seam categories (what `Engine` itself defends).
    pub const ENGINE: [FaultCategory; 5] = [
        FaultCategory::RhsPoison,
        FaultCategory::SpmvBitFlip,
        FaultCategory::ReconfigAbort,
        FaultCategory::CacheCorruption,
        FaultCategory::WorkerDisruption,
    ];

    /// The service-seam categories (what the serving layer's supervision
    /// and failover machinery defends).
    pub const SERVICE: [FaultCategory; 3] = [
        FaultCategory::DispatcherPanic,
        FaultCategory::DispatcherStall,
        FaultCategory::QueueDrop,
    ];

    /// Dense index of this category in [`FaultCategory::ALL`] — the key
    /// for per-category counters and tallies.
    pub fn index(self) -> usize {
        match self {
            FaultCategory::RhsPoison => 0,
            FaultCategory::SpmvBitFlip => 1,
            FaultCategory::ReconfigAbort => 2,
            FaultCategory::CacheCorruption => 3,
            FaultCategory::WorkerDisruption => 4,
            FaultCategory::DispatcherPanic => 5,
            FaultCategory::DispatcherStall => 6,
            FaultCategory::QueueDrop => 7,
        }
    }

    /// `true` for the serving-layer seams ([`FaultCategory::SERVICE`]).
    pub fn is_service_seam(self) -> bool {
        matches!(
            self,
            FaultCategory::DispatcherPanic
                | FaultCategory::DispatcherStall
                | FaultCategory::QueueDrop
        )
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultCategory::RhsPoison => "rhs-poison",
            FaultCategory::SpmvBitFlip => "spmv-bit-flip",
            FaultCategory::ReconfigAbort => "reconfig-abort",
            FaultCategory::CacheCorruption => "cache-corruption",
            FaultCategory::WorkerDisruption => "worker-disruption",
            FaultCategory::DispatcherPanic => "dispatcher-panic",
            FaultCategory::DispatcherStall => "dispatcher-stall",
            FaultCategory::QueueDrop => "queue-drop",
        }
    }
}

impl fmt::Display for FaultCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Seeded, deterministic fault schedule.
///
/// Every injection decision is a pure function of `(seed, category, job,
/// site)` — not of wall-clock time, thread scheduling, or how many other
/// decisions were made before it. Two runs of the same batch with the
/// same plan therefore inject the *same* faults into the *same* jobs,
/// whatever the worker count, which is what makes chaos runs replayable
/// and their reports assertable in tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultCategory::COUNT],
}

impl FaultPlan {
    /// A quiet plan (every rate zero) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; FaultCategory::COUNT],
        }
    }

    /// A plan injecting every category at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [rate.clamp(0.0, 1.0); FaultCategory::COUNT],
        }
    }

    /// Returns a copy with `category` injected at `rate` (clamped to
    /// `[0, 1]`).
    pub fn with_rate(mut self, category: FaultCategory, rate: f64) -> FaultPlan {
        self.rates[category.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injection rate configured for `category`.
    pub fn rate(&self, category: FaultCategory) -> f64 {
        self.rates[category.index()]
    }

    /// `true` when no category can fire.
    pub fn is_quiet(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }

    /// The injection decision for `(category, job, site)`.
    pub fn roll(&self, category: FaultCategory, job: u64, site: u64) -> bool {
        self.rng(category, job, site)
            .gen_bool(self.rates[category.index()])
    }

    /// A generator keyed to `(category, job, site)` for drawing fault
    /// *parameters* (which element to poison, how long to stall) once the
    /// roll fired. The first draw replays the roll and is discarded by
    /// callers via [`FaultPlan::roll`]; parameter draws should use fresh
    /// sites.
    pub fn rng(&self, category: FaultCategory, job: u64, site: u64) -> DetRng {
        DetRng::seed_from_u64(mix(self.seed, &[category.index() as u64 + 1, job, site]))
    }
}

/// SplitMix64-style absorption of `words` into `seed`, so nearby
/// `(job, site)` pairs land on uncorrelated streams.
fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        h ^= w;
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, c) in FaultCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
            assert_eq!(c.to_string(), c.label());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_site_keyed() {
        let p = FaultPlan::uniform(42, 0.5);
        for job in 0..16 {
            for site in 0..4 {
                let a = p.roll(FaultCategory::SpmvBitFlip, job, site);
                let b = p.roll(FaultCategory::SpmvBitFlip, job, site);
                assert_eq!(a, b, "roll must be pure in (cat, job, site)");
            }
        }
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let quiet = FaultPlan::new(7);
        assert!(quiet.is_quiet());
        let always = FaultPlan::new(7).with_rate(FaultCategory::RhsPoison, 1.0);
        for job in 0..32 {
            assert!(!quiet.roll(FaultCategory::RhsPoison, job, 0));
            assert!(always.roll(FaultCategory::RhsPoison, job, 0));
            assert!(!always.roll(FaultCategory::SpmvBitFlip, job, 0));
        }
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let p = FaultPlan::uniform(3, 0.25);
        let hits = (0..10_000)
            .filter(|&j| p.roll(FaultCategory::WorkerDisruption, j, 0))
            .count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let same = (0..256)
            .filter(|&j| {
                a.roll(FaultCategory::CacheCorruption, j, 0)
                    == b.roll(FaultCategory::CacheCorruption, j, 0)
            })
            .count();
        assert!(same < 256, "seeds must decorrelate the schedule");
    }
}
