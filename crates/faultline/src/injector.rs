//! The shared injector: rolls the plan at each seam and keeps the
//! ground-truth ledger of what was actually injected.

use crate::plan::{FaultCategory, FaultPlan};
use acamar_sparse::Scalar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Stuck-at-1 mask over the two high exponent bits of an `f64`: OR-ing
/// it in forces the exponent to at least 2^513, turning values of any
/// magnitude into astronomically large (or non-finite) ones, so a
/// corrupted SpMV is always *numerically loud* enough for divergence
/// detection to see.
const EXPONENT_STUCK: u64 = 0x6000_0000_0000_0000;

/// One injected fault, as recorded by the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Category injected.
    pub category: FaultCategory,
    /// Batch-local job index the fault targeted.
    pub job: u64,
    /// Seam-specific site (attempt number, reconfiguration event index).
    pub site: u64,
}

impl FaultEvent {
    /// The event as a structured telemetry payload. The engine emits this
    /// (attributed to [`FaultEvent::job`]) when it joins the injector
    /// ledger against job dispositions, so a drained trace carries the
    /// same injection record the robustness report reconciles.
    pub fn telemetry_kind(&self) -> acamar_telemetry::EventKind {
        acamar_telemetry::EventKind::FaultInjected {
            category: self.category.index().min(u8::MAX as usize) as u8,
            site: self.site,
        }
    }
}

/// What an injected worker disruption does to the thread running the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerDisruption {
    /// The worker panics mid-job (must be caught by the engine).
    Panic,
    /// The worker stalls for this many milliseconds before proceeding
    /// (must be caught by the engine's deadline check).
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// Panic payload used by injected worker panics, so a quiet hook (and
/// tests) can tell harness-made panics from genuine bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic {
    /// Batch-local index of the job whose worker was disrupted.
    pub job: u64,
}

/// Replaces the default panic hook with one that stays silent for
/// [`InjectedPanic`] payloads and defers to the previous hook otherwise.
/// Idempotent; chaos tests call it to keep their output readable.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Rolls a [`FaultPlan`] at every seam and records each fault that
/// actually fired.
///
/// The injector is shared (`Arc`) between the engine, the fabric kernel
/// executor, and the test observing the run; all counters are atomic and
/// the event ledger is mutex-guarded, so concurrent workers can inject
/// without coordination. Determinism comes from the plan: which faults
/// fire depends only on `(seed, category, job, site)`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    injected: [AtomicU64; FaultCategory::COUNT],
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Lifetime injected-fault counts, indexed by
    /// [`FaultCategory::index`].
    pub fn injected(&self) -> [u64; FaultCategory::COUNT] {
        std::array::from_fn(|i| self.injected[i].load(Ordering::Relaxed))
    }

    /// Total faults injected across all categories.
    pub fn injected_total(&self) -> u64 {
        self.injected().iter().sum()
    }

    /// Snapshot of the event ledger.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().expect("fault ledger poisoned").clone()
    }

    /// Drains the event ledger (counters keep their lifetime totals); the
    /// engine calls this once per batch to attribute events to jobs.
    pub fn take_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.events.lock().expect("fault ledger poisoned"))
    }

    fn record(&self, category: FaultCategory, job: u64, site: u64) {
        self.injected[category.index()].fetch_add(1, Ordering::Relaxed);
        self.events
            .lock()
            .expect("fault ledger poisoned")
            .push(FaultEvent {
                category,
                job,
                site,
            });
    }

    /// Seam: poisons one element of `rhs` with NaN or Inf. Returns `true`
    /// when the fault fired (the caller must then treat `rhs` as tainted).
    pub fn poison_rhs<T: Scalar>(&self, job: u64, rhs: &mut [T]) -> bool {
        if rhs.is_empty() || !self.plan.roll(FaultCategory::RhsPoison, job, 0) {
            return false;
        }
        let mut rng = self.plan.rng(FaultCategory::RhsPoison, job, 1);
        let idx = rng.gen_range(0..rhs.len());
        rhs[idx] = T::from_f64(if rng.gen_bool(0.5) {
            f64::NAN
        } else {
            f64::INFINITY
        });
        self.record(FaultCategory::RhsPoison, job, 0);
        true
    }

    /// Seam: decides whether solver attempt `attempt` of `job` runs with a
    /// stuck bit in the SpMV datapath. `Some(raw)` means every loop-phase
    /// SpMV of that attempt must pass its output through
    /// [`FaultInjector::apply_flip`] with this raw draw.
    pub fn stuck_flip(&self, job: u64, attempt: u64) -> Option<u64> {
        if !self.plan.roll(FaultCategory::SpmvBitFlip, job, attempt) {
            return None;
        }
        self.record(FaultCategory::SpmvBitFlip, job, attempt);
        Some(
            self.plan
                .rng(FaultCategory::SpmvBitFlip, job, attempt ^ u64::MAX)
                .next_u64(),
        )
    }

    /// Applies the stuck-bit corruption to one element of `y` (chosen by
    /// `raw`, stable across the attempt's SpMV calls).
    pub fn apply_flip<T: Scalar>(raw: u64, y: &mut [T]) {
        if y.is_empty() {
            return;
        }
        let idx = (raw % y.len() as u64) as usize;
        let bits = y[idx].to_f64().to_bits() | EXPONENT_STUCK;
        y[idx] = T::from_f64(f64::from_bits(bits));
    }

    /// Seam: does the `site`-th scheduled nested-region swap of `job`'s
    /// solve abort mid-stream?
    pub fn reconfig_aborts(&self, job: u64, site: u64) -> bool {
        if !self.plan.roll(FaultCategory::ReconfigAbort, job, site) {
            return false;
        }
        self.record(FaultCategory::ReconfigAbort, job, site);
        true
    }

    /// Seam: is `job`'s plan-cache entry corrupted before its lookup?
    pub fn corrupt_cache(&self, job: u64) -> bool {
        if !self.plan.roll(FaultCategory::CacheCorruption, job, 0) {
            return false;
        }
        self.record(FaultCategory::CacheCorruption, job, 0);
        true
    }

    /// Seam: is the worker disrupted while running rescue rung `rung` of
    /// `job` (rung 0 is the primary attempt)?
    pub fn disrupt_worker(&self, job: u64, rung: u64) -> Option<WorkerDisruption> {
        if !self.plan.roll(FaultCategory::WorkerDisruption, job, rung) {
            return None;
        }
        self.record(FaultCategory::WorkerDisruption, job, rung);
        let mut rng = self
            .plan
            .rng(FaultCategory::WorkerDisruption, job, rung ^ u64::MAX);
        Some(if rng.gen_bool(0.5) {
            WorkerDisruption::Panic
        } else {
            WorkerDisruption::Stall {
                millis: 2 + rng.gen_range(0..8usize) as u64,
            }
        })
    }

    /// Seam: does the dispatcher panic while holding admission `seq` on
    /// delivery attempt `attempt`? Keyed by the service-global admission
    /// sequence (not the shard), so the decision survives failover
    /// rerouting; a fresh `attempt` gives the retried delivery its own
    /// roll, so a bounded retry budget can dodge a repeat fault.
    pub fn dispatcher_panic(&self, seq: u64, attempt: u64) -> bool {
        if !self.plan.roll(FaultCategory::DispatcherPanic, seq, attempt) {
            return false;
        }
        self.record(FaultCategory::DispatcherPanic, seq, attempt);
        true
    }

    /// Seam: does the dispatcher wedge before dispatching admission `seq`
    /// on attempt `attempt`? Returns the stall length in milliseconds
    /// when it fires.
    pub fn dispatcher_stall(&self, seq: u64, attempt: u64) -> Option<u64> {
        if !self.plan.roll(FaultCategory::DispatcherStall, seq, attempt) {
            return None;
        }
        self.record(FaultCategory::DispatcherStall, seq, attempt);
        let mut rng = self
            .plan
            .rng(FaultCategory::DispatcherStall, seq, attempt ^ u64::MAX);
        Some(2 + rng.gen_range(0..8usize) as u64)
    }

    /// Seam: is admission `seq` silently dropped between pop and dispatch
    /// on attempt `attempt`?
    pub fn drop_queued(&self, seq: u64, attempt: u64) -> bool {
        if !self.plan.roll(FaultCategory::QueueDrop, seq, attempt) {
            return false;
        }
        self.record(FaultCategory::QueueDrop, seq, attempt);
        true
    }
}

/// A cheap per-job handle pairing a shared [`FaultInjector`] with the
/// batch-local job index, so deep layers (the fabric kernel executor)
/// can roll job-keyed decisions without knowing about the engine.
#[derive(Debug, Clone)]
pub struct FaultContext {
    injector: Arc<FaultInjector>,
    job: u64,
    salt: u64,
}

impl FaultContext {
    /// A context for `job` drawing from `injector`.
    pub fn new(injector: Arc<FaultInjector>, job: u64) -> FaultContext {
        FaultContext {
            injector,
            job,
            salt: 0,
        }
    }

    /// Namespaces this context's injection sites, e.g. by rescue-ladder
    /// rung. Without a distinct salt, a re-run of the same job would
    /// replay the exact site sequence of the previous run and re-draw
    /// identical faults — a retry could then never dodge a stuck bit.
    pub fn with_salt(mut self, salt: u64) -> FaultContext {
        self.salt = salt;
        self
    }

    /// The shared injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The batch-local job index.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Maps a run-local site counter into this context's namespace
    /// (identity when the salt is zero, so un-salted callers keep their
    /// site numbering).
    pub fn site(&self, local: u64) -> u64 {
        local | (self.salt << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_rhs_writes_a_non_finite_value_and_records_it() {
        let inj = FaultInjector::new(FaultPlan::new(11).with_rate(FaultCategory::RhsPoison, 1.0));
        let mut rhs = vec![1.0_f64; 16];
        assert!(inj.poison_rhs(3, &mut rhs));
        assert_eq!(rhs.iter().filter(|v| !v.is_finite()).count(), 1);
        assert_eq!(inj.injected()[FaultCategory::RhsPoison.index()], 1);
        let events = inj.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 3);
        assert_eq!(events[0].category, FaultCategory::RhsPoison);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::new(0));
        let mut rhs = vec![1.0_f64; 8];
        for job in 0..64 {
            assert!(!inj.poison_rhs(job, &mut rhs));
            assert!(inj.stuck_flip(job, 1).is_none());
            assert!(!inj.reconfig_aborts(job, 0));
            assert!(!inj.corrupt_cache(job));
            assert!(inj.disrupt_worker(job, 0).is_none());
            assert!(!inj.dispatcher_panic(job, 0));
            assert!(inj.dispatcher_stall(job, 0).is_none());
            assert!(!inj.drop_queued(job, 0));
        }
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn service_seams_record_and_rekey_by_attempt() {
        let inj = FaultInjector::new(
            FaultPlan::new(21)
                .with_rate(FaultCategory::DispatcherPanic, 1.0)
                .with_rate(FaultCategory::QueueDrop, 1.0)
                .with_rate(FaultCategory::DispatcherStall, 1.0),
        );
        assert!(inj.dispatcher_panic(7, 0));
        assert!(inj.drop_queued(7, 0));
        let stall = inj.dispatcher_stall(7, 0).expect("rate 1.0 stalls");
        assert!((2..10).contains(&stall));
        assert_eq!(inj.injected()[FaultCategory::DispatcherPanic.index()], 1);
        assert_eq!(inj.injected()[FaultCategory::QueueDrop.index()], 1);
        assert_eq!(inj.injected()[FaultCategory::DispatcherStall.index()], 1);
        // A half-rate plan gives the retried delivery attempt its own
        // roll: across many seqs, some first attempts fire and their
        // retries do not — the budget can dodge a repeat fault.
        let half = FaultInjector::new(FaultPlan::new(9).with_rate(FaultCategory::QueueDrop, 0.5));
        let dodged = (0..128)
            .filter(|&s| half.plan().roll(FaultCategory::QueueDrop, s, 0))
            .filter(|&s| !half.plan().roll(FaultCategory::QueueDrop, s, 1))
            .count();
        assert!(dodged > 8, "retries must be independently keyed ({dodged})");
    }

    #[test]
    fn stuck_flip_makes_values_numerically_loud() {
        for v in [0.0_f64, 1.0, -3.25, 1e-8, 512.0] {
            let mut y = vec![v; 4];
            FaultInjector::apply_flip(1, &mut y);
            let corrupted = y[1].abs();
            assert!(
                !corrupted.is_finite() || corrupted > 1e100,
                "flip of {v} gave {corrupted}, too quiet to detect"
            );
        }
    }

    #[test]
    fn flip_is_stable_within_an_attempt_and_keyed_across_attempts() {
        let inj = FaultInjector::new(FaultPlan::uniform(5, 0.5));
        let first = inj.stuck_flip(9, 1);
        let again = inj.stuck_flip(9, 1);
        assert_eq!(first, again, "same (job, attempt) must redraw identically");
        // Counters double-recorded on the replay: callers roll once per
        // attempt; this test just exercises purity.
    }

    #[test]
    fn take_events_drains_but_keeps_counters() {
        let inj =
            FaultInjector::new(FaultPlan::new(2).with_rate(FaultCategory::CacheCorruption, 1.0));
        assert!(inj.corrupt_cache(0));
        assert!(inj.corrupt_cache(1));
        assert_eq!(inj.take_events().len(), 2);
        assert!(inj.events().is_empty());
        assert_eq!(inj.injected_total(), 2);
    }

    #[test]
    fn disruption_mixes_panics_and_stalls() {
        let inj =
            FaultInjector::new(FaultPlan::new(4).with_rate(FaultCategory::WorkerDisruption, 1.0));
        let (mut panics, mut stalls) = (0, 0);
        for job in 0..64 {
            match inj.disrupt_worker(job, 0) {
                Some(WorkerDisruption::Panic) => panics += 1,
                Some(WorkerDisruption::Stall { millis }) => {
                    assert!((2..10).contains(&millis));
                    stalls += 1;
                }
                None => unreachable!("rate 1.0 must always disrupt"),
            }
        }
        assert!(panics > 8 && stalls > 8, "panics {panics} stalls {stalls}");
    }
}
