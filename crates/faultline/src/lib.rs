//! # acamar-faultline
//!
//! Deterministic, seeded fault injection for the Acamar reproduction.
//!
//! Acamar's headline claim is *robust convergence* — the Solver Modifier
//! rescues diverging solves at runtime, and the Dynamic SpMV Kernel is
//! swapped through ICAP partial reconfiguration, a mechanism that can
//! fail mid-swap in real DFX deployments. This crate provides the
//! adversary that proves those claims: a [`FaultPlan`] describes *which*
//! faults fire (a pure function of `(seed, category, job, site)`, so
//! chaos runs replay identically regardless of thread scheduling), and a
//! shared [`FaultInjector`] rolls the plan at each seam while keeping a
//! ground-truth ledger the engine reconciles into its `RobustnessReport`.
//!
//! ## Seams
//!
//! | Category | Seam | Effect |
//! |---|---|---|
//! | [`FaultCategory::RhsPoison`] | engine job intake | NaN/Inf in the RHS |
//! | [`FaultCategory::SpmvBitFlip`] | fabric kernel executor | stuck exponent bit in SpMV output |
//! | [`FaultCategory::ReconfigAbort`] | fabric reconfig controller | ICAP swap aborts, old unroll stays |
//! | [`FaultCategory::CacheCorruption`] | engine plan cache | stored pattern metadata corrupted |
//! | [`FaultCategory::WorkerDisruption`] | engine worker pool | worker panics or stalls mid-job |
//! | [`FaultCategory::DispatcherPanic`] | service dispatch loop | dispatcher thread panics holding a wave |
//! | [`FaultCategory::DispatcherStall`] | service dispatch loop | dispatcher wedges before dispatching |
//! | [`FaultCategory::QueueDrop`] | service admission queue | queued job vanishes between pop and dispatch |
//!
//! The hooks this crate feeds are always compiled into the downstream
//! crates and are inert unless an injector is installed, so a fault-free
//! run is byte-identical to a build without any harness at all.

#![warn(missing_docs)]

mod injector;
mod plan;

pub use injector::{
    silence_injected_panics, FaultContext, FaultEvent, FaultInjector, InjectedPanic,
    WorkerDisruption,
};
pub use plan::{FaultCategory, FaultPlan};
