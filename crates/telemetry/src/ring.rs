//! Lock-free bounded MPMC ring recorder.
//!
//! The classic bounded-sequence queue (Vyukov): each slot carries a
//! sequence number that encodes whether it is free for the producer or
//! ready for the consumer of a given lap. Producers and consumers each
//! claim a position with one CAS; no locks, no allocation after
//! construction. When the ring is full the event is dropped and counted —
//! a telemetry layer must never stall the solve it is observing.

use crate::{Counter, Event, EventKind, Recorder};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Event>>,
}

/// A lock-free, bounded, multi-producer multi-consumer event ring plus a
/// fixed array of atomic counters.
///
/// Capacity is rounded up to a power of two. When the ring is full, new
/// events are dropped (never blocking the recording thread) and the
/// [`Counter::EventsDropped`] counter is bumped.
pub struct RingRecorder {
    buf: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    counters: [AtomicU64; Counter::COUNT],
    epoch: Instant,
}

// SAFETY: slot access is mediated by the per-slot sequence protocol —
// a producer writes `value` only after winning the CAS on `enqueue_pos`
// for a slot whose sequence marks it empty, and publishes with a release
// store; a consumer reads only after observing that release.
unsafe impl Send for RingRecorder {}
unsafe impl Sync for RingRecorder {}

impl RingRecorder {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> RingRecorder {
        let cap = capacity.max(2).next_power_of_two();
        let buf: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingRecorder {
            buf,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            epoch: Instant::now(),
        }
    }

    /// The ring's capacity in events.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Try to enqueue one event; returns `false` (and counts a drop) when
    /// the ring is full.
    fn push(&self, event: Event) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                if self
                    .enqueue_pos
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: the CAS gives this thread exclusive write
                    // access to the slot for this lap.
                    unsafe { (*slot.value.get()).write(event) };
                    slot.seq.store(pos + 1, Ordering::Release);
                    return true;
                }
            } else if dif < 0 {
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Try to dequeue one event.
    fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                if self
                    .dequeue_pos
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // SAFETY: the CAS gives this thread exclusive read
                    // access to the slot for this lap; the producer's
                    // release store made the write visible.
                    let event = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.seq.store(pos + self.mask + 1, Ordering::Release);
                    return Some(event);
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every currently buffered event, in queue order.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }

    /// A point-in-time snapshot of all counters, indexed by
    /// [`Counter::index`].
    pub fn counters(&self) -> [u64; Counter::COUNT] {
        std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Events dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.counters[Counter::EventsDropped.index()].load(Ordering::Relaxed)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, job: u64, kind: EventKind) {
        let event = Event {
            job,
            t_nanos: self.epoch.elapsed().as_nanos() as u64,
            kind,
        };
        if !self.push(event) {
            self.counters[Counter::EventsDropped.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counter_add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let ring = RingRecorder::new(8);
        for i in 0..5u32 {
            ring.record(0, EventKind::IterationStart { iteration: i });
        }
        let events = ring.drain();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e.kind,
                EventKind::IterationStart {
                    iteration: i as u32
                }
            );
        }
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = RingRecorder::new(4);
        for i in 0..10u32 {
            ring.record(0, EventKind::IterationStart { iteration: i });
        }
        assert_eq!(ring.drain().len(), 4);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingRecorder::new(0).capacity(), 2);
        assert_eq!(RingRecorder::new(5).capacity(), 8);
        assert_eq!(RingRecorder::new(8).capacity(), 8);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let ring = Arc::new(RingRecorder::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..512u32 {
                        ring.record(t, EventKind::IterationStart { iteration: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = ring.drain();
        assert_eq!(events.len(), 4 * 512);
        assert_eq!(ring.dropped(), 0);
        // Per-producer order is preserved.
        for job in 0..4u64 {
            let iters: Vec<u32> = events
                .iter()
                .filter(|e| e.job == job)
                .map(|e| match e.kind {
                    EventKind::IterationStart { iteration } => iteration,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(iters, (0..512).collect::<Vec<_>>());
        }
    }

    #[test]
    fn counters_accumulate() {
        let ring = RingRecorder::new(4);
        ring.counter_add(Counter::CacheHits, 2);
        ring.counter_add(Counter::CacheHits, 3);
        assert_eq!(ring.counters()[Counter::CacheHits.index()], 5);
    }
}
