//! Fig. 13-style reconfiguration timeline reconstructed from a trace.
//!
//! The paper's Fig. 13 plots, over a solve, which SpMV unroll
//! configuration is resident in the partial-reconfiguration region and
//! when the ICAP swaps (or aborts a swap). [`render_job`] rebuilds that
//! picture from a recorded event stream: one row per unroll factor with a
//! residency bar across the iteration axis, plus marker rows for ICAP
//! aborts and solver-region swaps.

use crate::{Counter, Event, EventKind, Region};

/// Aggregate reconfiguration activity recovered from a trace. Matches the
/// fabric's `FabricRunStats` accounting, which is what the telemetry
/// neutrality tests cross-check.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigCounts {
    /// SpMV-region swaps (including post-abort recovery swaps).
    pub spmv: u64,
    /// Solver-region swaps.
    pub solver: u64,
    /// Aborted swaps.
    pub aborts: u64,
    /// Compiled-plan band / schedule-set segments executed.
    pub segments: u64,
}

/// Count reconfiguration events in a trace, optionally restricted to one
/// job (`None` aggregates every job).
pub fn reconfig_counts(events: &[Event], job: Option<u64>) -> ReconfigCounts {
    let mut out = ReconfigCounts::default();
    for e in events {
        if let Some(j) = job {
            if e.job != j {
                continue;
            }
        }
        match e.kind {
            EventKind::Reconfig { region, .. } => match region {
                Region::SpmvKernel => out.spmv += 1,
                Region::Solver => out.solver += 1,
            },
            EventKind::ReconfigAbort { .. } => out.aborts += 1,
            EventKind::SpmvSegment { .. } => out.segments += 1,
            _ => {}
        }
    }
    out
}

/// Per-set segment totals recovered from a trace: `(set, segments,
/// cycles)` sorted by set index. This is the per-set view the acceptance
/// criteria compare against the compiled-plan execution stats.
pub fn per_set_segments(events: &[Event], job: Option<u64>) -> Vec<(u32, u64, u64)> {
    let mut sets: Vec<(u32, u64, u64)> = Vec::new();
    for e in events {
        if let Some(j) = job {
            if e.job != j {
                continue;
            }
        }
        if let EventKind::SpmvSegment { set, cycles, .. } = e.kind {
            match sets.iter_mut().find(|(s, _, _)| *s == set) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += cycles;
                }
                None => sets.push((set, 1, cycles)),
            }
        }
    }
    sets.sort_by_key(|(s, _, _)| *s);
    sets
}

/// One residency interval on the timeline: an unroll factor active from
/// `from_iter` (inclusive) to `to_iter` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Residency {
    unroll: u8,
    from_iter: u32,
    to_iter: u32,
}

/// Render the Fig. 13-style ASCII reconfiguration timeline for one job.
///
/// The horizontal axis is the solver iteration (from
/// [`EventKind::IterationStart`] events); each SpMV-region
/// [`EventKind::Reconfig`] starts a new residency for its unroll factor.
/// Rows are one per distinct unroll factor (descending), with `█` marking
/// residency, `^` marking ICAP aborts, and `S` marking solver-region
/// swaps. Returns a short placeholder string when the trace holds no
/// reconfiguration events for the job.
pub fn render_job(events: &[Event], job: u64, width: usize) -> String {
    let width = width.clamp(16, 160);
    let mut iter: u32 = 0;
    let mut max_iter: u32 = 0;
    let mut residencies: Vec<Residency> = Vec::new();
    let mut aborts: Vec<u32> = Vec::new();
    let mut solver_swaps: Vec<(u32, u8)> = Vec::new();
    let mut segments: u64 = 0;

    for e in events.iter().filter(|e| e.job == job) {
        match e.kind {
            EventKind::IterationStart { iteration } => {
                iter = iteration;
                max_iter = max_iter.max(iteration);
            }
            EventKind::Reconfig { region, unroll, .. } => match region {
                Region::SpmvKernel => {
                    if let Some(last) = residencies.last_mut() {
                        last.to_iter = last.to_iter.max(iter);
                    }
                    residencies.push(Residency {
                        unroll,
                        from_iter: iter,
                        to_iter: iter,
                    });
                }
                Region::Solver => solver_swaps.push((iter, unroll)),
            },
            EventKind::ReconfigAbort { .. } => aborts.push(iter),
            EventKind::SpmvSegment { .. } => segments += 1,
            _ => {}
        }
    }

    if residencies.is_empty() && solver_swaps.is_empty() && aborts.is_empty() {
        return format!("job {job}: no reconfiguration events in trace\n");
    }

    // Close the last residency at the end of the observed iteration range.
    let span_end = max_iter + 1;
    if let Some(last) = residencies.last_mut() {
        last.to_iter = span_end;
    }

    let col = |iteration: u32| -> usize {
        ((iteration as usize * width) / span_end.max(1) as usize).min(width - 1)
    };

    let mut out = String::new();
    out.push_str(&format!(
        "job {job}: {span_end} iterations, {} spmv swaps ({} aborted), {} solver swaps, {segments} segments\n",
        residencies.len(),
        aborts.len(),
        solver_swaps.len(),
    ));

    // One row per distinct unroll factor, widest first.
    let mut unrolls: Vec<u8> = residencies.iter().map(|r| r.unroll).collect();
    unrolls.sort_unstable();
    unrolls.dedup();
    unrolls.reverse();

    for u in unrolls {
        let mut row = vec!['·'; width];
        for r in residencies.iter().filter(|r| r.unroll == u) {
            let a = col(r.from_iter);
            let b = col(r.to_iter.max(r.from_iter + 1).min(span_end));
            for cell in row.iter_mut().take(b.max(a + 1)).skip(a) {
                *cell = '█';
            }
        }
        out.push_str(&format!("unroll {u:>3} |"));
        out.extend(row);
        out.push_str("|\n");
    }

    if !aborts.is_empty() {
        let mut row = vec![' '; width];
        for &a in &aborts {
            row[col(a)] = '^';
        }
        out.push_str("icap abort |");
        out.extend(row);
        out.push_str("|\n");
    }

    if !solver_swaps.is_empty() {
        let mut row = vec![' '; width];
        for &(i, _) in &solver_swaps {
            row[col(i)] = 'S';
        }
        out.push_str("solver swap|");
        out.extend(row);
        out.push_str("|\n");
    }

    out.push_str(&format!("{:>11} 0{:>w$}\n", "iter", span_end, w = width));
    out
}

/// Render a compact multi-job summary: reconfiguration counts per job plus
/// the aggregate, one line each. Useful for batch traces where a full
/// per-job timeline would be overwhelming.
pub fn render_summary(events: &[Event]) -> String {
    let mut jobs: Vec<u64> = events.iter().map(|e| e.job).collect();
    jobs.sort_unstable();
    jobs.dedup();

    let mut out = String::new();
    for job in &jobs {
        let c = reconfig_counts(events, Some(*job));
        if c == ReconfigCounts::default() {
            continue;
        }
        out.push_str(&format!(
            "job {job}: spmv {} solver {} aborts {} segments {}\n",
            c.spmv, c.solver, c.aborts, c.segments
        ));
    }
    let total = reconfig_counts(events, None);
    out.push_str(&format!(
        "total: spmv {} solver {} aborts {} segments {}\n",
        total.spmv, total.solver, total.aborts, total.segments
    ));
    out
}

/// Render dropped-event and sampling context that should accompany any
/// timeline read off a bounded ring (a full ring truncates the picture).
pub fn render_capture_note(counters: &[u64; Counter::COUNT]) -> String {
    let dropped = counters[Counter::EventsDropped.index()];
    if dropped == 0 {
        "trace complete (no events dropped)\n".to_string()
    } else {
        format!("warning: {dropped} events dropped (ring full) — timeline is truncated\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(job: u64, t: u64, kind: EventKind) -> Event {
        Event {
            job,
            t_nanos: t,
            kind,
        }
    }

    fn sample_trace() -> Vec<Event> {
        vec![
            ev(0, 0, EventKind::IterationStart { iteration: 0 }),
            ev(
                0,
                1,
                EventKind::Reconfig {
                    region: Region::SpmvKernel,
                    unroll: 8,
                    set: 0,
                },
            ),
            ev(
                0,
                2,
                EventKind::SpmvSegment {
                    set: 0,
                    rows: 100,
                    unroll: 8,
                    cycles: 400,
                },
            ),
            ev(0, 3, EventKind::IterationStart { iteration: 1 }),
            ev(
                0,
                4,
                EventKind::Reconfig {
                    region: Region::SpmvKernel,
                    unroll: 4,
                    set: 1,
                },
            ),
            ev(
                0,
                5,
                EventKind::SpmvSegment {
                    set: 1,
                    rows: 50,
                    unroll: 4,
                    cycles: 150,
                },
            ),
            ev(
                0,
                6,
                EventKind::ReconfigAbort {
                    region: Region::SpmvKernel,
                },
            ),
            ev(0, 7, EventKind::IterationStart { iteration: 2 }),
            ev(
                0,
                8,
                EventKind::Reconfig {
                    region: Region::Solver,
                    unroll: 2,
                    set: 0,
                },
            ),
            ev(1, 9, EventKind::CacheHit),
        ]
    }

    #[test]
    fn counts_match_trace() {
        let trace = sample_trace();
        let c = reconfig_counts(&trace, Some(0));
        assert_eq!(
            c,
            ReconfigCounts {
                spmv: 2,
                solver: 1,
                aborts: 1,
                segments: 2,
            }
        );
        // Job 1 has no reconfig activity.
        assert_eq!(reconfig_counts(&trace, Some(1)), ReconfigCounts::default());
        // Aggregate equals job 0.
        assert_eq!(reconfig_counts(&trace, None), c);
    }

    #[test]
    fn per_set_segments_aggregates_by_set() {
        let trace = sample_trace();
        assert_eq!(
            per_set_segments(&trace, Some(0)),
            vec![(0, 1, 400), (1, 1, 150)]
        );
    }

    #[test]
    fn render_contains_rows_and_markers() {
        let trace = sample_trace();
        let text = render_job(&trace, 0, 32);
        assert!(text.contains("unroll   8 |"), "{text}");
        assert!(text.contains("unroll   4 |"), "{text}");
        assert!(text.contains("icap abort |"), "{text}");
        assert!(text.contains("solver swap|"), "{text}");
        assert!(text.contains("2 spmv swaps (1 aborted)"), "{text}");
    }

    #[test]
    fn render_handles_empty_job() {
        let trace = sample_trace();
        let text = render_job(&trace, 1, 32);
        assert!(text.contains("no reconfiguration events"));
    }

    #[test]
    fn summary_lists_active_jobs_and_total() {
        let trace = sample_trace();
        let text = render_summary(&trace);
        assert!(text.contains("job 0: spmv 2 solver 1 aborts 1 segments 2"));
        assert!(!text.contains("job 1:"));
        assert!(text.contains("total: spmv 2 solver 1 aborts 1 segments 2"));
    }

    #[test]
    fn capture_note_reports_drops() {
        let mut counters = [0u64; Counter::COUNT];
        assert!(render_capture_note(&counters).contains("complete"));
        counters[Counter::EventsDropped.index()] = 3;
        assert!(render_capture_note(&counters).contains("3 events dropped"));
    }
}
