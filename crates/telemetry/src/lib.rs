//! Structured telemetry for the Acamar workspace.
//!
//! The crate defines a tiny observability vocabulary shared by every other
//! crate in the workspace:
//!
//! - [`Recorder`] — the sink trait: typed [`Event`]s plus monotonic
//!   [`Counter`]s. Implementations must be thread-safe; the engine's worker
//!   pool records from many threads at once.
//! - [`NullRecorder`] — the disabled recorder. It reports
//!   [`Recorder::is_active`]` == false`, which lets [`TelemetrySink`]
//!   collapse it to `None` at construction time: the instrumented hot paths
//!   then pay exactly one predictable branch per site — no virtual call, no
//!   clock read, no allocation — preserving the zero-allocation warm-path
//!   guarantee proven by the bench harness.
//! - [`RingRecorder`] — a lock-free bounded MPMC ring (drop-on-full, with a
//!   dropped-event counter) plus a fixed array of atomic counters, cheap
//!   enough to leave on in production batches.
//! - [`export`] — JSON-lines trace serialization and a Prometheus
//!   text-format metrics writer.
//! - [`timeline`] — an ASCII renderer that reconstructs the paper's
//!   Fig. 13-style reconfiguration timeline from a recorded trace.
//!
//! Instrumented code never talks to a recorder directly; it goes through a
//! [`TelemetrySink`], which carries the job id, the residual sampling
//! stride, and the (possibly absent) recorder.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod ring;

pub mod export;
pub mod timeline;

pub use ring::RingRecorder;

use std::sync::Arc;
use std::time::Instant;

/// A dynamically reconfigurable region of the modeled fabric.
///
/// Mirrors the fabric crate's region vocabulary without depending on it
/// (the dependency runs the other way: the fabric records into telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The iterative-solver partial-reconfiguration region.
    Solver,
    /// The SpMV kernel partial-reconfiguration region (unroll swaps).
    SpmvKernel,
}

impl Region {
    /// Stable lowercase name used by the JSON-lines exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            Region::Solver => "solver",
            Region::SpmvKernel => "spmv",
        }
    }
}

/// A named section of the engine's per-job pipeline, bracketed by
/// [`EventKind::SpanEnter`] / [`EventKind::SpanExit`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// Input validation and fault-injection intake seams.
    Intake,
    /// Pattern analysis / plan-cache consultation.
    Analyze,
    /// The primary solve attempt.
    Solve,
    /// The rescue ladder (everything after a failed primary attempt).
    Rescue,
}

impl Span {
    /// Stable lowercase name used by the JSON-lines exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            Span::Intake => "intake",
            Span::Analyze => "analyze",
            Span::Solve => "solve",
            Span::Rescue => "rescue",
        }
    }
}

/// How a detected fault was ultimately resolved, in the same vocabulary the
/// robustness ledger uses when it reconciles injector events against job
/// dispositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultResolution {
    /// The job converged without engaging the rescue ladder.
    Detected,
    /// The job converged after one or more rescue rungs.
    Recovered,
    /// The job exhausted the ladder without converging.
    Exhausted,
}

impl FaultResolution {
    /// Stable lowercase name used by the JSON-lines exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultResolution::Detected => "detected",
            FaultResolution::Recovered => "recovered",
            FaultResolution::Exhausted => "exhausted",
        }
    }
}

/// A serving-layer shard's health, as seen by the supervision state
/// machine. Mirrors the service crate's vocabulary without depending on
/// it (the dependency runs the other way: the service records into
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// The shard is serving normally.
    Healthy,
    /// Consecutive failures or a stale heartbeat put the shard on watch.
    Suspect,
    /// The circuit breaker opened; traffic spills to the next-ranked
    /// shard.
    Broken,
    /// The breaker is half-open: probe requests are being admitted.
    Probing,
}

impl HealthState {
    /// Stable lowercase name used by the JSON-lines exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Broken => "broken",
            HealthState::Probing => "probing",
        }
    }
}

/// The payload of a recorded event. Every variant is scalar-only and
/// `Copy`, so events move through the lock-free ring without touching the
/// heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A job entered the engine pipeline.
    JobStart {
        /// `true` when the job runs under the `Fast` determinism tier
        /// (reassociated SIMD reductions); `false` for the bitwise
        /// deterministic tier.
        fast: bool,
    },
    /// A job left the engine pipeline.
    JobEnd {
        /// Whether the final attempt converged.
        converged: bool,
        /// Rescue rungs climbed (0 = primary attempt sufficed).
        rungs: u32,
    },
    /// A pipeline span opened.
    SpanEnter {
        /// Which span.
        span: Span,
    },
    /// A pipeline span closed.
    SpanExit {
        /// Which span.
        span: Span,
        /// Wall-clock nanoseconds spent inside the span.
        nanos: u64,
    },
    /// The plan cache served an existing analysis.
    CacheHit,
    /// The plan cache analyzed a new pattern.
    CacheMiss {
        /// Wall-clock nanoseconds the analysis took.
        analysis_nanos: u64,
    },
    /// A fingerprint collision forced a fresh analysis.
    CacheCollision,
    /// A solve attempt started.
    AttemptStart {
        /// Solver index (the engine's `SolverKind` ordinal).
        solver: u8,
        /// Rescue rung (0 = primary).
        rung: u8,
    },
    /// A solve attempt finished.
    AttemptEnd {
        /// Solver index (the engine's `SolverKind` ordinal).
        solver: u8,
        /// Rescue rung (0 = primary).
        rung: u8,
        /// Whether the attempt converged.
        converged: bool,
        /// Iterations the attempt spent.
        iterations: u32,
    },
    /// A sampled relative residual from inside a solver loop.
    Residual {
        /// Solver-loop iteration the sample was taken at.
        iteration: u32,
        /// Relative residual observed by the convergence monitor.
        relative: f64,
    },
    /// The executor entered a named solver phase.
    PhaseStart {
        /// Phase ordinal (executor-defined).
        phase: u8,
    },
    /// The executor began a solver iteration.
    IterationStart {
        /// Iteration index.
        iteration: u32,
    },
    /// A partial reconfiguration completed on a fabric region.
    Reconfig {
        /// Which region was reprogrammed.
        region: Region,
        /// The unroll factor (SpMV region) or solver ordinal (solver
        /// region) now resident.
        unroll: u8,
        /// The MSID schedule entry (set) that triggered the swap.
        set: u32,
    },
    /// A partial reconfiguration was aborted mid-swap (ICAP fault).
    ReconfigAbort {
        /// Which region the aborted swap targeted.
        region: Region,
    },
    /// One compiled-plan band / schedule-set segment of an SpMV pass.
    SpmvSegment {
        /// The MSID schedule entry (set) index.
        set: u32,
        /// Rows covered by the segment.
        rows: u32,
        /// Unroll factor the segment executed with.
        unroll: u8,
        /// Modeled accelerator cycles charged for the segment.
        cycles: u64,
    },
    /// The fault injector fired at an instrumented seam.
    FaultInjected {
        /// `FaultCategory` ordinal.
        category: u8,
        /// Site hash identifying the seam.
        site: u64,
    },
    /// A previously injected fault was reconciled against the job's
    /// disposition.
    FaultOutcome {
        /// `FaultCategory` ordinal.
        category: u8,
        /// How the fault was resolved.
        resolution: FaultResolution,
    },
    /// The rescue ladder engaged a rung.
    RescueStep {
        /// Ladder step (1-based rung).
        step: u8,
        /// Solver ordinal chosen for the rung.
        solver: u8,
    },
    /// The serving layer admitted a job into a shard's bounded queue.
    JobAdmitted {
        /// Shard the router assigned (by fingerprint affinity or the
        /// configured fallback policy).
        shard: u16,
        /// Queue depth immediately after the enqueue.
        depth: u32,
    },
    /// The serving layer rejected a job because the target shard's
    /// admission queue was full (backpressure).
    JobRejected {
        /// Shard whose queue was full.
        shard: u16,
        /// Queue depth observed at rejection (== capacity).
        depth: u32,
    },
    /// A queued job's deadline expired before dispatch; it was shed
    /// without running any solve.
    JobShed {
        /// Shard the job was queued on.
        shard: u16,
        /// Wall-clock nanoseconds the job waited before being shed.
        waited_nanos: u64,
    },
    /// The serving layer dequeued a job and handed it to a shard engine.
    JobDispatched {
        /// Shard executing the job.
        shard: u16,
        /// Wall-clock nanoseconds the job spent queued.
        wait_nanos: u64,
    },
    /// A shard's supervision state machine changed state.
    HealthTransition {
        /// The shard whose health changed.
        shard: u16,
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
    /// The router diverted a request away from its affinity shard because
    /// that shard's circuit breaker was open.
    Failover {
        /// The broken affinity shard the request would have gone to.
        from: u16,
        /// The next-ranked shard that received it instead.
        to: u16,
    },
    /// A half-open circuit breaker admitted a probe request to a broken
    /// shard.
    BreakerProbe {
        /// The shard being probed.
        shard: u16,
    },
    /// A job that failed delivery (dispatcher panic or queue drop) was
    /// re-queued under its retry budget.
    JobRetried {
        /// Shard the retried delivery was queued on.
        shard: u16,
        /// Delivery attempt number (1 = first retry).
        attempt: u32,
    },
    /// A shard supervisor respawned a crashed dispatcher thread.
    DispatcherRestarted {
        /// The shard whose dispatcher was respawned.
        shard: u16,
        /// Lifetime restart count for the shard (1 = first respawn).
        restarts: u32,
    },
    /// A sequence step patched only the dirty bands of its cached compiled
    /// plan instead of running a full re-analysis.
    PlanPatched {
        /// Rows whose pattern changed in the step's delta.
        dirty_rows: u32,
        /// Wall-clock nanoseconds the band patch took.
        patch_nanos: u64,
    },
    /// A sequence step passed the warm-start residual gate and seeded its
    /// solve with the previous step's solution.
    WarmStartUsed {
        /// Sequence step index (0-based).
        step: u64,
    },
    /// A sequence step failed the warm-start residual gate and fell back
    /// to a cold start.
    WarmStartRejected {
        /// Sequence step index (0-based).
        step: u64,
    },
    /// The plan cache evicted its least-recently-used entry to stay within
    /// its configured capacity.
    CacheEvicted,
    /// A forced PreconditionedCg attempt selected its preconditioner: the
    /// cached level-scheduled IC(0) pair, or the Jacobi diagonal fallback
    /// when the incomplete factorization broke down.
    PreconditionerSelected {
        /// `true` when the IC(0) factors and cached SpTRSV plans ran;
        /// `false` for the Jacobi-diagonal fallback.
        ic0: bool,
        /// Topological level count of the lower-triangle schedule
        /// (0 when no cached schedule existed).
        levels: u32,
    },
}

/// A single recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Engine job id (0 for events recorded outside any job).
    pub job: u64,
    /// Nanoseconds since the recorder's epoch.
    pub t_nanos: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// A copy with every wall-clock-derived field zeroed, so two replay
    /// runs of the same deterministic workload produce identical streams.
    /// Modeled quantities (cycles, iterations, sets) are preserved.
    pub fn normalized(mut self) -> Event {
        self.t_nanos = 0;
        match &mut self.kind {
            EventKind::SpanExit { nanos, .. } => *nanos = 0,
            EventKind::CacheMiss { analysis_nanos } => *analysis_nanos = 0,
            EventKind::JobShed { waited_nanos, .. } => *waited_nanos = 0,
            EventKind::JobDispatched { wait_nanos, .. } => *wait_nanos = 0,
            EventKind::PlanPatched { patch_nanos, .. } => *patch_nanos = 0,
            _ => {}
        }
        self
    }
}

/// Monotonic counters maintained alongside the event stream. These are the
/// single source of truth for the Prometheus export: the engine folds its
/// internal statistics (plan-cache analysis time, pool idle time) into the
/// same counters the recorder accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Jobs the engine completed (converged or not).
    JobsCompleted,
    /// Plan-cache hits.
    CacheHits,
    /// Plan-cache misses (fresh analyses).
    CacheMisses,
    /// Plan-cache fingerprint collisions.
    CacheCollisions,
    /// Wall-clock nanoseconds spent in pattern analysis.
    AnalysisNanos,
    /// Wall-clock nanoseconds pool workers spent idle, waiting for work.
    PoolIdleNanos,
    /// Wall-clock nanoseconds spent inside solve spans.
    SolveNanos,
    /// Residual samples emitted by solver loops.
    ResidualSamples,
    /// SpMV-region partial reconfigurations.
    SpmvReconfigs,
    /// Solver-region partial reconfigurations.
    SolverReconfigs,
    /// Aborted partial reconfigurations.
    ReconfigAborts,
    /// Compiled-plan band / schedule-set segments executed.
    SpmvSegments,
    /// Faults injected by the faultline layer.
    FaultsInjected,
    /// Faults resolved as detected (converged, no rescue needed).
    FaultsDetected,
    /// Faults resolved as recovered (converged via the rescue ladder).
    FaultsRecovered,
    /// Faults whose job exhausted the rescue ladder.
    FaultsExhausted,
    /// Rescue rungs climbed across all jobs.
    RescueRungs,
    /// Jobs admitted into a serving-layer shard queue.
    JobsAdmitted,
    /// Jobs rejected at admission (queue full, backpressure).
    JobsRejected,
    /// Queued jobs shed because their deadline expired before dispatch.
    JobsShed,
    /// Wall-clock nanoseconds admitted jobs spent queued before dispatch.
    QueueWaitNanos,
    /// Shard health state-machine transitions.
    HealthTransitions,
    /// Requests diverted from a broken affinity shard to a failover shard.
    Failovers,
    /// Probe requests admitted by half-open circuit breakers.
    BreakerProbes,
    /// Failed deliveries re-queued under the retry budget.
    JobsRetried,
    /// Dispatcher threads respawned by shard supervisors.
    DispatcherRestarts,
    /// Trace events dropped because the ring was full.
    EventsDropped,
    /// Jobs solved under the `Fast` determinism tier.
    FastTierSolves,
    /// `Fast`-tier jobs whose final attempt converged.
    FastTierConverged,
    /// Compiled plans band-patched by sequence steps (full recompiles
    /// avoided).
    PlansPatched,
    /// Sequence steps that passed the warm-start residual gate.
    WarmStartsUsed,
    /// Sequence steps that failed the warm-start residual gate.
    WarmStartsRejected,
    /// Plan-cache entries evicted to stay within the configured capacity.
    CacheEvictions,
    /// Level-scheduled SpTRSV substitution passes executed.
    SptrsvApplies,
    /// SOR/Gauss-Seidel relaxation sweeps executed.
    SorSweeps,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 35;

    /// Every counter, in `repr` order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::JobsCompleted,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheCollisions,
        Counter::AnalysisNanos,
        Counter::PoolIdleNanos,
        Counter::SolveNanos,
        Counter::ResidualSamples,
        Counter::SpmvReconfigs,
        Counter::SolverReconfigs,
        Counter::ReconfigAborts,
        Counter::SpmvSegments,
        Counter::FaultsInjected,
        Counter::FaultsDetected,
        Counter::FaultsRecovered,
        Counter::FaultsExhausted,
        Counter::RescueRungs,
        Counter::JobsAdmitted,
        Counter::JobsRejected,
        Counter::JobsShed,
        Counter::QueueWaitNanos,
        Counter::HealthTransitions,
        Counter::Failovers,
        Counter::BreakerProbes,
        Counter::JobsRetried,
        Counter::DispatcherRestarts,
        Counter::EventsDropped,
        Counter::FastTierSolves,
        Counter::FastTierConverged,
        Counter::PlansPatched,
        Counter::WarmStartsUsed,
        Counter::WarmStartsRejected,
        Counter::CacheEvictions,
        Counter::SptrsvApplies,
        Counter::SorSweeps,
    ];

    /// The counter's index into a `[u64; Counter::COUNT]` snapshot.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Prometheus metric name (`_total` suffix per convention).
    pub fn metric_name(self) -> &'static str {
        match self {
            Counter::JobsCompleted => "acamar_jobs_completed_total",
            Counter::CacheHits => "acamar_plan_cache_hits_total",
            Counter::CacheMisses => "acamar_plan_cache_misses_total",
            Counter::CacheCollisions => "acamar_plan_cache_collisions_total",
            Counter::AnalysisNanos => "acamar_plan_analysis_nanos_total",
            Counter::PoolIdleNanos => "acamar_pool_idle_nanos_total",
            Counter::SolveNanos => "acamar_solve_nanos_total",
            Counter::ResidualSamples => "acamar_residual_samples_total",
            Counter::SpmvReconfigs => "acamar_spmv_reconfigs_total",
            Counter::SolverReconfigs => "acamar_solver_reconfigs_total",
            Counter::ReconfigAborts => "acamar_reconfig_aborts_total",
            Counter::SpmvSegments => "acamar_spmv_segments_total",
            Counter::FaultsInjected => "acamar_faults_injected_total",
            Counter::FaultsDetected => "acamar_faults_detected_total",
            Counter::FaultsRecovered => "acamar_faults_recovered_total",
            Counter::FaultsExhausted => "acamar_faults_exhausted_total",
            Counter::RescueRungs => "acamar_rescue_rungs_total",
            Counter::JobsAdmitted => "acamar_service_jobs_admitted_total",
            Counter::JobsRejected => "acamar_service_jobs_rejected_total",
            Counter::JobsShed => "acamar_service_jobs_shed_total",
            Counter::QueueWaitNanos => "acamar_service_queue_wait_nanos_total",
            Counter::HealthTransitions => "acamar_service_health_transitions_total",
            Counter::Failovers => "acamar_service_failovers_total",
            Counter::BreakerProbes => "acamar_service_breaker_probes_total",
            Counter::JobsRetried => "acamar_service_jobs_retried_total",
            Counter::DispatcherRestarts => "acamar_service_dispatcher_restarts_total",
            Counter::EventsDropped => "acamar_trace_events_dropped_total",
            Counter::FastTierSolves => "acamar_fast_tier_solves_total",
            Counter::FastTierConverged => "acamar_fast_tier_converged_total",
            Counter::PlansPatched => "acamar_plans_patched_total",
            Counter::WarmStartsUsed => "acamar_warm_starts_used_total",
            Counter::WarmStartsRejected => "acamar_warm_starts_rejected_total",
            Counter::CacheEvictions => "acamar_plan_cache_evictions_total",
            Counter::SptrsvApplies => "acamar_sptrsv_applies_total",
            Counter::SorSweeps => "acamar_sor_sweeps_total",
        }
    }

    /// One-line help string for the Prometheus export.
    pub fn help(self) -> &'static str {
        match self {
            Counter::JobsCompleted => "Jobs completed by the engine",
            Counter::CacheHits => "Plan-cache hits",
            Counter::CacheMisses => "Plan-cache misses (fresh pattern analyses)",
            Counter::CacheCollisions => "Plan-cache fingerprint collisions",
            Counter::AnalysisNanos => "Nanoseconds spent in pattern analysis",
            Counter::PoolIdleNanos => "Nanoseconds pool workers spent idle",
            Counter::SolveNanos => "Nanoseconds spent inside solve spans",
            Counter::ResidualSamples => "Residual samples emitted by solver loops",
            Counter::SpmvReconfigs => "SpMV-region partial reconfigurations",
            Counter::SolverReconfigs => "Solver-region partial reconfigurations",
            Counter::ReconfigAborts => "Aborted partial reconfigurations",
            Counter::SpmvSegments => "Compiled-plan SpMV band segments executed",
            Counter::FaultsInjected => "Faults injected by the faultline layer",
            Counter::FaultsDetected => "Faults resolved without rescue",
            Counter::FaultsRecovered => "Faults recovered via the rescue ladder",
            Counter::FaultsExhausted => "Faults whose job exhausted the rescue ladder",
            Counter::RescueRungs => "Rescue-ladder rungs climbed",
            Counter::JobsAdmitted => "Jobs admitted into a serving-layer shard queue",
            Counter::JobsRejected => "Jobs rejected at admission (queue full)",
            Counter::JobsShed => "Queued jobs shed on an expired deadline",
            Counter::QueueWaitNanos => "Nanoseconds admitted jobs spent queued",
            Counter::HealthTransitions => "Shard health state-machine transitions",
            Counter::Failovers => "Requests diverted from a broken affinity shard",
            Counter::BreakerProbes => "Probe requests admitted by half-open breakers",
            Counter::JobsRetried => "Failed deliveries re-queued under the retry budget",
            Counter::DispatcherRestarts => "Dispatcher threads respawned by supervisors",
            Counter::EventsDropped => "Trace events dropped (ring full)",
            Counter::FastTierSolves => "Jobs solved under the Fast determinism tier",
            Counter::FastTierConverged => "Fast-tier jobs whose final attempt converged",
            Counter::PlansPatched => "Compiled plans band-patched by sequence steps",
            Counter::WarmStartsUsed => "Sequence steps that passed the warm-start gate",
            Counter::WarmStartsRejected => "Sequence steps that failed the warm-start gate",
            Counter::CacheEvictions => "Plan-cache entries evicted at capacity",
            Counter::SptrsvApplies => "Level-scheduled SpTRSV substitution passes executed",
            Counter::SorSweeps => "SOR/Gauss-Seidel relaxation sweeps executed",
        }
    }
}

/// The sink trait every instrumented crate records into.
///
/// Implementations must be cheap and thread-safe; the engine's workers
/// record concurrently. `record` receives the job id and the typed payload
/// and is responsible for timestamping (so disabled paths never read a
/// clock).
pub trait Recorder: Send + Sync {
    /// Record one typed event attributed to `job`.
    fn record(&self, job: u64, kind: EventKind);

    /// Add `n` to a monotonic counter.
    fn counter_add(&self, counter: Counter, n: u64);

    /// Whether the recorder actually retains anything. A `false` here lets
    /// [`TelemetrySink::new`] drop the recorder entirely, reducing every
    /// instrumentation site to a single branch.
    fn is_active(&self) -> bool {
        true
    }
}

/// The always-off recorder. [`TelemetrySink::new`] collapses it to `None`,
/// so installing a `NullRecorder` is exactly as fast as installing no
/// recorder at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _job: u64, _kind: EventKind) {}

    fn counter_add(&self, _counter: Counter, _n: u64) {}

    fn is_active(&self) -> bool {
        false
    }
}

/// The handle instrumented code holds: an optional shared recorder plus
/// per-job routing state. `Clone` is cheap (an `Arc` bump); the default
/// sink is disabled.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    recorder: Option<Arc<dyn Recorder>>,
    job: u64,
    residual_stride: u32,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("enabled", &self.recorder.is_some())
            .field("job", &self.job)
            .field("residual_stride", &self.residual_stride)
            .finish()
    }
}

impl TelemetrySink {
    /// Wrap a recorder. An inactive recorder (e.g. [`NullRecorder`]) is
    /// dropped on the spot, producing a disabled sink.
    pub fn new(recorder: Arc<dyn Recorder>) -> TelemetrySink {
        let recorder = if recorder.is_active() {
            Some(recorder)
        } else {
            None
        };
        TelemetrySink {
            recorder,
            job: 0,
            residual_stride: 0,
        }
    }

    /// The disabled sink: every operation is a single `None` branch.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink::default()
    }

    /// Whether a recorder is installed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// A copy of this sink routing events to `job`.
    pub fn with_job(&self, job: u64) -> TelemetrySink {
        TelemetrySink {
            recorder: self.recorder.clone(),
            job,
            residual_stride: self.residual_stride,
        }
    }

    /// The job id events from this sink are attributed to.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// A copy of this sink emitting a [`EventKind::Residual`] event every
    /// `stride` solver iterations (`0` disables the residual stream, the
    /// default — the stream is the highest-volume signal, so it is opt-in
    /// even when a recorder is installed).
    pub fn with_residual_stride(&self, stride: u32) -> TelemetrySink {
        TelemetrySink {
            recorder: self.recorder.clone(),
            job: self.job,
            residual_stride: stride,
        }
    }

    /// The configured residual sampling stride (`0` = off).
    pub fn residual_stride(&self) -> u32 {
        self.residual_stride
    }

    /// Record a typed event.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(r) = &self.recorder {
            r.record(self.job, kind);
        }
    }

    /// Add to a monotonic counter.
    #[inline]
    pub fn counter_add(&self, counter: Counter, n: u64) {
        if let Some(r) = &self.recorder {
            r.counter_add(counter, n);
        }
    }

    /// Emit a sampled residual observation if the stride selects this
    /// iteration. Called from solver loops on every monitor observation;
    /// compiles to one branch when disabled.
    #[inline]
    pub fn observe_residual(&self, iteration: usize, relative: f64) {
        if let Some(r) = &self.recorder {
            let stride = self.residual_stride;
            if stride != 0 && iteration as u32 % stride == 0 {
                r.record(
                    self.job,
                    EventKind::Residual {
                        iteration: iteration as u32,
                        relative,
                    },
                );
                r.counter_add(Counter::ResidualSamples, 1);
            }
        }
    }

    /// Open a RAII span: emits [`EventKind::SpanEnter`] now and
    /// [`EventKind::SpanExit`] (with the measured wall time) when the guard
    /// drops. Disabled sinks return an inert guard without reading the
    /// clock.
    #[inline]
    pub fn span(&self, span: Span) -> SpanGuard<'_> {
        let start = if self.recorder.is_some() {
            self.emit(EventKind::SpanEnter { span });
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard {
            sink: self,
            span,
            start,
        }
    }
}

/// RAII guard returned by [`TelemetrySink::span`]. Emits the matching
/// [`EventKind::SpanExit`] on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    sink: &'a TelemetrySink,
    span: Span,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Nanoseconds elapsed since the span opened (0 when disabled).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos() as u64;
            self.sink.emit(EventKind::SpanExit {
                span: self.span,
                nanos,
            });
            if self.span == Span::Solve {
                self.sink.counter_add(Counter::SolveNanos, nanos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct VecRecorder {
        events: Mutex<Vec<Event>>,
        counters: Mutex<[u64; Counter::COUNT]>,
    }

    impl VecRecorder {
        fn new() -> VecRecorder {
            VecRecorder {
                events: Mutex::new(Vec::new()),
                counters: Mutex::new([0; Counter::COUNT]),
            }
        }
    }

    impl Recorder for VecRecorder {
        fn record(&self, job: u64, kind: EventKind) {
            self.events.lock().unwrap().push(Event {
                job,
                t_nanos: 1,
                kind,
            });
        }

        fn counter_add(&self, counter: Counter, n: u64) {
            self.counters.lock().unwrap()[counter.index()] += n;
        }
    }

    #[test]
    fn null_recorder_collapses_to_disabled_sink() {
        let sink = TelemetrySink::new(Arc::new(NullRecorder));
        assert!(!sink.enabled());
        sink.emit(EventKind::CacheHit);
        sink.counter_add(Counter::CacheHits, 1);
        let guard = sink.span(Span::Solve);
        assert_eq!(guard.elapsed_nanos(), 0);
    }

    #[test]
    fn sink_routes_job_and_counters() {
        let rec = Arc::new(VecRecorder::new());
        let sink = TelemetrySink::new(rec.clone()).with_job(7);
        sink.emit(EventKind::CacheHit);
        sink.counter_add(Counter::CacheHits, 3);
        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job, 7);
        assert_eq!(events[0].kind, EventKind::CacheHit);
        assert_eq!(rec.counters.lock().unwrap()[Counter::CacheHits.index()], 3);
    }

    #[test]
    fn residual_stride_samples_every_nth_iteration() {
        let rec = Arc::new(VecRecorder::new());
        let sink = TelemetrySink::new(rec.clone()).with_residual_stride(4);
        for i in 0..10 {
            sink.observe_residual(i, 0.5);
        }
        let events = rec.events.lock().unwrap();
        // Iterations 0, 4, 8.
        assert_eq!(events.len(), 3);
        assert_eq!(
            rec.counters.lock().unwrap()[Counter::ResidualSamples.index()],
            3
        );
    }

    #[test]
    fn residual_stride_zero_is_silent() {
        let rec = Arc::new(VecRecorder::new());
        let sink = TelemetrySink::new(rec.clone());
        for i in 0..10 {
            sink.observe_residual(i, 0.5);
        }
        assert!(rec.events.lock().unwrap().is_empty());
    }

    #[test]
    fn span_guard_emits_matched_pair() {
        let rec = Arc::new(VecRecorder::new());
        let sink = TelemetrySink::new(rec.clone());
        {
            let _g = sink.span(Span::Analyze);
        }
        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].kind,
            EventKind::SpanEnter {
                span: Span::Analyze
            }
        );
        assert!(matches!(
            events[1].kind,
            EventKind::SpanExit {
                span: Span::Analyze,
                ..
            }
        ));
    }

    #[test]
    fn normalized_zeroes_wall_clock_fields() {
        let e = Event {
            job: 1,
            t_nanos: 99,
            kind: EventKind::CacheMiss {
                analysis_nanos: 1234,
            },
        }
        .normalized();
        assert_eq!(e.t_nanos, 0);
        assert_eq!(e.kind, EventKind::CacheMiss { analysis_nanos: 0 });

        let s = Event {
            job: 1,
            t_nanos: 5,
            kind: EventKind::SpmvSegment {
                set: 2,
                rows: 64,
                unroll: 8,
                cycles: 77,
            },
        }
        .normalized();
        // Modeled cycles are deterministic and survive normalization.
        assert_eq!(
            s.kind,
            EventKind::SpmvSegment {
                set: 2,
                rows: 64,
                unroll: 8,
                cycles: 77,
            }
        );
    }

    #[test]
    fn counter_all_matches_indices() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
