//! Trace and metrics exporters.
//!
//! Two output formats, both hand-rolled over `std` only:
//!
//! - **JSON lines** ([`json_lines`] / [`event_json`]): one self-contained
//!   JSON object per event, suitable for `trace.jsonl` artifacts and for
//!   line-oriented diffing in CI;
//! - **Prometheus text format** ([`PrometheusWriter`]): `# HELP`/`# TYPE`
//!   preambles plus one sample per metric, suitable for a metrics snapshot
//!   scraped off a batch report.

use crate::{Counter, Event, EventKind};

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:e}` keeps tiny residuals exact without fixed-point blowup.
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Serialize one event as a single-line JSON object (no trailing newline).
pub fn event_json(e: &Event) -> String {
    let mut s = format!("{{\"job\":{},\"t_ns\":{}", e.job, e.t_nanos);
    match e.kind {
        EventKind::JobStart { fast } => {
            s.push_str(&format!(",\"kind\":\"job_start\",\"fast\":{fast}"));
        }
        EventKind::JobEnd { converged, rungs } => {
            s.push_str(&format!(
                ",\"kind\":\"job_end\",\"converged\":{converged},\"rungs\":{rungs}"
            ));
        }
        EventKind::SpanEnter { span } => {
            s.push_str(&format!(
                ",\"kind\":\"span_enter\",\"span\":\"{}\"",
                span.as_str()
            ));
        }
        EventKind::SpanExit { span, nanos } => {
            s.push_str(&format!(
                ",\"kind\":\"span_exit\",\"span\":\"{}\",\"nanos\":{nanos}",
                span.as_str()
            ));
        }
        EventKind::CacheHit => s.push_str(",\"kind\":\"cache_hit\""),
        EventKind::CacheMiss { analysis_nanos } => {
            s.push_str(&format!(
                ",\"kind\":\"cache_miss\",\"analysis_nanos\":{analysis_nanos}"
            ));
        }
        EventKind::CacheCollision => s.push_str(",\"kind\":\"cache_collision\""),
        EventKind::AttemptStart { solver, rung } => {
            s.push_str(&format!(
                ",\"kind\":\"attempt_start\",\"solver\":{solver},\"rung\":{rung}"
            ));
        }
        EventKind::AttemptEnd {
            solver,
            rung,
            converged,
            iterations,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"attempt_end\",\"solver\":{solver},\"rung\":{rung},\
                 \"converged\":{converged},\"iterations\":{iterations}"
            ));
        }
        EventKind::Residual {
            iteration,
            relative,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"residual\",\"iteration\":{iteration},\"relative\":{}",
                json_f64(relative)
            ));
        }
        EventKind::PhaseStart { phase } => {
            s.push_str(&format!(",\"kind\":\"phase_start\",\"phase\":{phase}"));
        }
        EventKind::IterationStart { iteration } => {
            s.push_str(&format!(
                ",\"kind\":\"iteration_start\",\"iteration\":{iteration}"
            ));
        }
        EventKind::Reconfig {
            region,
            unroll,
            set,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"reconfig\",\"region\":\"{}\",\"unroll\":{unroll},\"set\":{set}",
                region.as_str()
            ));
        }
        EventKind::ReconfigAbort { region } => {
            s.push_str(&format!(
                ",\"kind\":\"reconfig_abort\",\"region\":\"{}\"",
                region.as_str()
            ));
        }
        EventKind::SpmvSegment {
            set,
            rows,
            unroll,
            cycles,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"spmv_segment\",\"set\":{set},\"rows\":{rows},\
                 \"unroll\":{unroll},\"cycles\":{cycles}"
            ));
        }
        EventKind::FaultInjected { category, site } => {
            s.push_str(&format!(
                ",\"kind\":\"fault_injected\",\"category\":{category},\"site\":{site}"
            ));
        }
        EventKind::FaultOutcome {
            category,
            resolution,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"fault_outcome\",\"category\":{category},\"resolution\":\"{}\"",
                resolution.as_str()
            ));
        }
        EventKind::RescueStep { step, solver } => {
            s.push_str(&format!(
                ",\"kind\":\"rescue_step\",\"step\":{step},\"solver\":{solver}"
            ));
        }
        EventKind::JobAdmitted { shard, depth } => {
            s.push_str(&format!(
                ",\"kind\":\"job_admitted\",\"shard\":{shard},\"depth\":{depth}"
            ));
        }
        EventKind::JobRejected { shard, depth } => {
            s.push_str(&format!(
                ",\"kind\":\"job_rejected\",\"shard\":{shard},\"depth\":{depth}"
            ));
        }
        EventKind::JobShed {
            shard,
            waited_nanos,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"job_shed\",\"shard\":{shard},\"waited_nanos\":{waited_nanos}"
            ));
        }
        EventKind::JobDispatched { shard, wait_nanos } => {
            s.push_str(&format!(
                ",\"kind\":\"job_dispatched\",\"shard\":{shard},\"wait_nanos\":{wait_nanos}"
            ));
        }
        EventKind::HealthTransition { shard, from, to } => {
            s.push_str(&format!(
                ",\"kind\":\"health_transition\",\"shard\":{shard},\
                 \"from\":\"{}\",\"to\":\"{}\"",
                from.as_str(),
                to.as_str()
            ));
        }
        EventKind::Failover { from, to } => {
            s.push_str(&format!(
                ",\"kind\":\"failover\",\"from\":{from},\"to\":{to}"
            ));
        }
        EventKind::BreakerProbe { shard } => {
            s.push_str(&format!(",\"kind\":\"breaker_probe\",\"shard\":{shard}"));
        }
        EventKind::JobRetried { shard, attempt } => {
            s.push_str(&format!(
                ",\"kind\":\"job_retried\",\"shard\":{shard},\"attempt\":{attempt}"
            ));
        }
        EventKind::DispatcherRestarted { shard, restarts } => {
            s.push_str(&format!(
                ",\"kind\":\"dispatcher_restarted\",\"shard\":{shard},\"restarts\":{restarts}"
            ));
        }
        EventKind::PlanPatched {
            dirty_rows,
            patch_nanos,
        } => {
            s.push_str(&format!(
                ",\"kind\":\"plan_patched\",\"dirty_rows\":{dirty_rows},\"patch_nanos\":{patch_nanos}"
            ));
        }
        EventKind::WarmStartUsed { step } => {
            s.push_str(&format!(",\"kind\":\"warm_start_used\",\"step\":{step}"));
        }
        EventKind::WarmStartRejected { step } => {
            s.push_str(&format!(
                ",\"kind\":\"warm_start_rejected\",\"step\":{step}"
            ));
        }
        EventKind::CacheEvicted => s.push_str(",\"kind\":\"cache_evicted\""),
        EventKind::PreconditionerSelected { ic0, levels } => {
            s.push_str(&format!(
                ",\"kind\":\"preconditioner_selected\",\"ic0\":{ic0},\"levels\":{levels}"
            ));
        }
    }
    s.push('}');
    s
}

/// Serialize a slice of events as JSON lines (one object per line,
/// newline-terminated). Write the result to a `.jsonl` trace file.
pub fn json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

/// Incremental Prometheus text-format builder.
///
/// ```
/// use acamar_telemetry::export::PrometheusWriter;
/// let mut w = PrometheusWriter::new();
/// w.counter("acamar_jobs_completed_total", "Jobs completed", 42);
/// w.gauge("acamar_batch_wall_seconds", "Batch wall time", 1.5);
/// let text = w.finish();
/// assert!(text.contains("acamar_jobs_completed_total 42"));
/// ```
#[derive(Debug, Default)]
pub struct PrometheusWriter {
    out: String,
}

impl PrometheusWriter {
    /// An empty writer.
    pub fn new() -> PrometheusWriter {
        PrometheusWriter::default()
    }

    /// Append a `counter`-typed metric sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut PrometheusWriter {
        self.out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
        self
    }

    /// Append a `gauge`-typed metric sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut PrometheusWriter {
        let v = if value.is_finite() {
            format!("{value}")
        } else {
            "NaN".to_string()
        };
        self.out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
        self
    }

    /// Append one `counter`-typed metric with a label per sample (e.g.
    /// per-shard counters): the `# HELP`/`# TYPE` preamble is written
    /// once, then one `name{label="value"} sample` line per entry.
    pub fn counter_samples(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: &[(String, u64)],
    ) -> &mut PrometheusWriter {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for (value, sample) in samples {
            self.out
                .push_str(&format!("{name}{{{label}=\"{value}\"}} {sample}\n"));
        }
        self
    }

    /// Append every telemetry counter from a snapshot, in declaration
    /// order, using the canonical metric names.
    pub fn counters(&mut self, snapshot: &[u64; Counter::COUNT]) -> &mut PrometheusWriter {
        for c in Counter::ALL {
            self.counter(c.metric_name(), c.help(), snapshot[c.index()]);
        }
        self
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HealthState, Region, Span};

    #[test]
    fn event_json_is_one_object_per_kind() {
        let cases = [
            EventKind::JobStart { fast: true },
            EventKind::JobEnd {
                converged: true,
                rungs: 2,
            },
            EventKind::SpanEnter { span: Span::Solve },
            EventKind::SpanExit {
                span: Span::Solve,
                nanos: 10,
            },
            EventKind::CacheHit,
            EventKind::CacheMiss { analysis_nanos: 5 },
            EventKind::CacheCollision,
            EventKind::Reconfig {
                region: Region::SpmvKernel,
                unroll: 8,
                set: 1,
            },
            EventKind::Residual {
                iteration: 3,
                relative: 1.25e-6,
            },
            EventKind::HealthTransition {
                shard: 2,
                from: HealthState::Healthy,
                to: HealthState::Suspect,
            },
            EventKind::Failover { from: 2, to: 0 },
            EventKind::BreakerProbe { shard: 2 },
            EventKind::JobRetried {
                shard: 0,
                attempt: 1,
            },
            EventKind::DispatcherRestarted {
                shard: 2,
                restarts: 1,
            },
            EventKind::PlanPatched {
                dirty_rows: 12,
                patch_nanos: 800,
            },
            EventKind::WarmStartUsed { step: 5 },
            EventKind::WarmStartRejected { step: 6 },
            EventKind::CacheEvicted,
        ];
        for kind in cases {
            let line = event_json(&Event {
                job: 9,
                t_nanos: 100,
                kind,
            });
            assert!(line.starts_with("{\"job\":9,\"t_ns\":100"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""), "{line}");
            // Balanced braces on a single line.
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn json_lines_newline_terminates_each_event() {
        let events = [
            Event {
                job: 0,
                t_nanos: 0,
                kind: EventKind::JobStart { fast: false },
            },
            Event {
                job: 0,
                t_nanos: 1,
                kind: EventKind::CacheHit,
            },
        ];
        let text = json_lines(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn prometheus_writer_emits_help_type_sample() {
        let mut w = PrometheusWriter::new();
        w.counter("acamar_test_total", "A test counter", 7);
        w.gauge("acamar_test_gauge", "A test gauge", 0.5);
        let text = w.finish();
        assert!(text.contains("# HELP acamar_test_total A test counter\n"));
        assert!(text.contains("# TYPE acamar_test_total counter\n"));
        assert!(text.contains("acamar_test_total 7\n"));
        assert!(text.contains("# TYPE acamar_test_gauge gauge\n"));
        assert!(text.contains("acamar_test_gauge 0.5\n"));
    }

    #[test]
    fn prometheus_counters_cover_every_counter() {
        let snapshot = [3u64; Counter::COUNT];
        let mut w = PrometheusWriter::new();
        w.counters(&snapshot);
        let text = w.finish();
        for c in Counter::ALL {
            assert!(
                text.contains(&format!("{} 3\n", c.metric_name())),
                "missing {}",
                c.metric_name()
            );
        }
    }
}
