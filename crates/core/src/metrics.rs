//! Comparison metrics used by the paper's evaluation figures.

use crate::acamar::AcamarRunReport;
use acamar_fabric::HwRun;

/// Latency speedup of Acamar over a baseline run (Fig. 6):
/// `baseline compute time / Acamar compute time`.
///
/// Uses compute cycles — the paper treats reconfiguration latency as a
/// separately budgeted quantity (Fig. 13, Section VIII-A); see
/// [`allowed_reconfig_seconds`] for that budget.
pub fn latency_speedup<T, U>(baseline: &HwRun<T>, acamar: &AcamarRunReport<U>) -> f64 {
    let b = baseline.stats.cycles.compute() as f64;
    let a = acamar.stats.cycles.compute().max(1) as f64;
    b / a
}

/// Improvement *ratio* in SpMV resource underutilization (Fig. 7, higher
/// is better): `baseline underutilization / Acamar underutilization`.
///
/// When Acamar achieves (near-)zero underutilization the ratio is clamped
/// to `max_ratio` to keep aggregate statistics finite.
pub fn underutilization_improvement<T, U>(
    baseline: &HwRun<T>,
    acamar: &AcamarRunReport<U>,
    max_ratio: f64,
) -> f64 {
    let b = baseline.stats.spmv.underutilization();
    let a = acamar.stats.spmv.underutilization();
    if a <= 0.0 {
        if b <= 0.0 {
            1.0
        } else {
            max_ratio
        }
    } else {
        (b / a).min(max_ratio)
    }
}

/// The reconfiguration-time budget of Fig. 13: the seconds *per
/// reconfiguration event* Acamar may spend while remaining no slower than
/// the baseline end to end.
///
/// `None` when Acamar performs no reconfigurations (budget is unbounded)
/// or when Acamar's compute alone is already slower (budget is zero or
/// negative — returned as `Some(0.0)` would hide the sign, so the signed
/// slack is returned).
pub fn allowed_reconfig_seconds<T, U>(
    baseline: &HwRun<T>,
    acamar: &AcamarRunReport<U>,
) -> Option<f64> {
    let events = acamar.stats.spmv_reconfig_events + acamar.solver_switches();
    if events == 0 {
        return None;
    }
    let clock = acamar.clock_mhz * 1e6;
    let slack_cycles =
        baseline.stats.cycles.compute() as f64 - acamar.stats.cycles.compute() as f64;
    Some(slack_cycles / clock / events as f64)
}

/// Geometric mean of a slice of positive values (the paper's GMEAN bars).
///
/// Returns `None` on an empty slice or any non-positive value.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Acamar, AcamarConfig};
    use acamar_fabric::{FabricSpec, StaticAccelerator};
    use acamar_solvers::{ConvergenceCriteria, SolverKind};
    use acamar_sparse::generate::{self, RowDistribution};

    fn setup() -> (
        AcamarRunReport<f32>,
        HwRun<f32>, // URB = 1 baseline
        HwRun<f32>, // URB = 32 baseline
    ) {
        let a = generate::diagonally_dominant::<f32>(
            400,
            RowDistribution::Uniform { min: 2, max: 12 },
            1.5,
            23,
        );
        let b = vec![1.0_f32; 400];
        let criteria = ConvergenceCriteria::paper().with_max_iterations(2000);
        let cfg = AcamarConfig::paper().with_criteria(criteria);
        let rep = Acamar::new(FabricSpec::alveo_u55c(), cfg)
            .run(&a, &b)
            .unwrap();
        let b1 = StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::Jacobi, 1)
            .run(&a, &b, &criteria)
            .unwrap();
        let b32 = StaticAccelerator::new(FabricSpec::alveo_u55c(), SolverKind::Jacobi, 32)
            .run(&a, &b, &criteria)
            .unwrap();
        (rep, b1, b32)
    }

    #[test]
    fn speedup_is_large_against_urb1_and_modest_against_urb32() {
        let (rep, b1, b32) = setup();
        let s1 = latency_speedup(&b1, &rep);
        let s32 = latency_speedup(&b32, &rep);
        assert!(s1 > 1.5, "URB=1 speedup {s1}");
        assert!(s1 > s32, "speedup should shrink with baseline resources");
    }

    #[test]
    fn underutilization_improvement_favors_acamar_against_oversized_baseline() {
        let (rep, b1, b32) = setup();
        let i32 = underutilization_improvement(&b32, &rep, 100.0);
        assert!(i32 > 1.0, "improvement {i32}");
        // URB=1 wastes nothing, so the ratio cannot exceed ~0-ish unless
        // Acamar is perfect too; it must be <= the clamp either way.
        let i1 = underutilization_improvement(&b1, &rep, 100.0);
        assert!(i1 <= 100.0);
    }

    #[test]
    fn reconfig_budget_positive_when_acamar_compute_wins() {
        let (rep, b1, _) = setup();
        match allowed_reconfig_seconds(&b1, &rep) {
            Some(budget) => assert!(budget > 0.0, "budget {budget}"),
            None => assert_eq!(rep.stats.spmv_reconfig_events, 0),
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[4.0, 1.0]), Some(2.0));
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }
}
