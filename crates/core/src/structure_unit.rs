//! Matrix Structure unit (paper Section IV-B).
//!
//! Examines the coefficient matrix's diagonal dominance and symmetry and
//! signals the host which solver to configure the Reconfigurable Solver
//! unit with. As in the paper, positive definiteness is *not* verified
//! ("the computational cost of finding eigenvalues is a sophisticated
//! task"): symmetry alone selects CG, and the Solver Modifier catches the
//! resulting occasional divergence.

use acamar_solvers::{recommend, recommend_extended, SolverKind};
use acamar_sparse::{analysis, CsrMatrix, Scalar, StructureReport};

/// The decision produced by the Matrix Structure unit.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureDecision {
    /// The structural report (dominance, symmetry, diagnostics).
    pub report: StructureReport,
    /// The solver the host should configure first.
    pub solver: SolverKind,
}

/// The Matrix Structure unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixStructureUnit;

impl MatrixStructureUnit {
    /// Creates the unit.
    pub fn new() -> Self {
        MatrixStructureUnit
    }

    /// Analyzes `a` and recommends the initial solver.
    ///
    /// Symmetry is established the paper's way — converting CSR to CSC and
    /// comparing the arrays (see
    /// [`analysis::symmetric_via_csc`]); dominance by Eq. 1.
    pub fn analyze<T: Scalar>(&self, a: &CsrMatrix<T>) -> StructureDecision {
        let report = analysis::analyze(a);
        let solver = recommend(&report);
        StructureDecision { report, solver }
    }

    /// Like [`MatrixStructureUnit::analyze`], but recommending from the
    /// extended solver set: symmetric strictly-dominant matrices with a
    /// positive diagonal select SOR ahead of Jacobi (see
    /// [`recommend_extended`]). Engaged by
    /// `AcamarConfig::with_extended_solvers`.
    pub fn analyze_extended<T: Scalar>(&self, a: &CsrMatrix<T>) -> StructureDecision {
        let report = analysis::analyze(a);
        let solver = recommend_extended(&report);
        StructureDecision { report, solver }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acamar_sparse::generate::{self, RowDistribution};

    #[test]
    fn dominant_matrix_selects_jacobi() {
        let a = generate::diagonally_dominant::<f64>(
            50,
            RowDistribution::Uniform { min: 2, max: 6 },
            1.5,
            3,
        );
        let d = MatrixStructureUnit::new().analyze(&a);
        assert_eq!(d.solver, SolverKind::Jacobi);
        assert!(d.report.strictly_diagonally_dominant);
    }

    #[test]
    fn symmetric_non_dominant_selects_cg() {
        let a = generate::jacobi_divergent_spd::<f64>(30, 0.7, 0, 0.0, 5);
        let d = MatrixStructureUnit::new().analyze(&a);
        assert_eq!(d.solver, SolverKind::ConjugateGradient);
        assert!(d.report.symmetric);
    }

    #[test]
    fn nonsymmetric_selects_bicgstab() {
        let a = generate::convection_diffusion_2d::<f64>(8, 8, 2.0);
        let d = MatrixStructureUnit::new().analyze(&a);
        assert_eq!(d.solver, SolverKind::BiCgStab);
    }

    #[test]
    fn the_cg_choice_can_be_wrong_by_design() {
        // A symmetric *indefinite* matrix still selects CG (only symmetry
        // is checked), which is exactly why the Solver Modifier exists.
        let a = generate::spread_spectrum_blocks::<f64>(60, 0.3, 100.0, true, 2);
        let d = MatrixStructureUnit::new().analyze(&a);
        // strictly dominant blocks? coupling 0.3 => |diag| = s, off = 0.6s
        // so it is dominant -> Jacobi. Check the report agrees with the
        // recommendation logic either way.
        if d.report.strictly_diagonally_dominant {
            assert_eq!(d.solver, SolverKind::Jacobi);
        } else {
            assert_eq!(d.solver, SolverKind::ConjugateGradient);
        }
    }
}
