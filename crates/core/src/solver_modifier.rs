//! Solver Modifier unit (paper Section IV-B).
//!
//! When the Reconfigurable Solver diverges, the Solver Modifier selects an
//! alternative solver "by assigning the solver whose corresponding bit is
//! low in a temporary register", and triggers the Initialize unit to
//! reset. This module models that register.

use acamar_solvers::{extended_fallback_order, fallback_order, SolverKind};

/// Tracks which of Acamar's three solvers have been attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverModifier {
    order: Vec<SolverKind>,
    tried: u8,
}

impl SolverModifier {
    /// Creates the modifier with `first` as the Matrix Structure unit's
    /// initial recommendation.
    pub fn new(first: SolverKind) -> Self {
        SolverModifier {
            order: fallback_order(first),
            tried: 0,
        }
    }

    /// Like [`SolverModifier::new`] but cycling the extended register:
    /// SOR is appended after the paper's three solvers (engaged by
    /// `AcamarConfig::with_extended_solvers`).
    pub fn extended(first: SolverKind) -> Self {
        SolverModifier {
            order: extended_fallback_order(first),
            tried: 0,
        }
    }

    /// Returns the next untried solver (marking it tried), or `None` when
    /// every solver has been attempted.
    pub fn next_solver(&mut self) -> Option<SolverKind> {
        for (i, &kind) in self.order.iter().enumerate() {
            let bit = 1u8 << i;
            if self.tried & bit == 0 {
                self.tried |= bit;
                return Some(kind);
            }
        }
        None
    }

    /// Solvers attempted so far, in order.
    pub fn attempted(&self) -> Vec<SolverKind> {
        self.order
            .iter()
            .enumerate()
            .filter(|(i, _)| self.tried & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect()
    }

    /// `true` if every solver has been attempted.
    pub fn exhausted(&self) -> bool {
        self.tried.count_ones() as usize >= self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_first_recommendation_first() {
        let mut m = SolverModifier::new(SolverKind::ConjugateGradient);
        assert_eq!(m.next_solver(), Some(SolverKind::ConjugateGradient));
        assert!(!m.exhausted());
    }

    #[test]
    fn cycles_through_all_three_then_none() {
        let mut m = SolverModifier::new(SolverKind::Jacobi);
        let mut seen = Vec::new();
        while let Some(k) = m.next_solver() {
            seen.push(k);
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], SolverKind::Jacobi);
        assert!(seen.contains(&SolverKind::ConjugateGradient));
        assert!(seen.contains(&SolverKind::BiCgStab));
        assert!(m.exhausted());
        assert_eq!(m.next_solver(), None);
        assert_eq!(m.attempted(), seen);
    }
}
