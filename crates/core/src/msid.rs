//! Multi-Stage Iterative Decision (MSID) chain — paper Algorithm 4.
//!
//! The MSID chain reduces the reconfiguration rate of the Dynamic SpMV
//! Kernel: at each stage, wherever the relative difference between
//! successive tBuffer entries is within `tolerance`, the later entry is
//! replaced by its predecessor (from the *previous* stage's buffer, so
//! equalization propagates one set per stage — Fig. 4). After `rOpt`
//! stages, runs of similar unroll factors have collapsed to a single
//! value, and the kernel only reconfigures at the remaining boundaries.

use crate::trace::TBuffer;

/// The MSID chain unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsidChain {
    /// Number of stages (`rOpt`; 0 disables the optimization).
    pub stages: usize,
    /// Relative tolerance for considering successive unroll factors equal.
    pub tolerance: f64,
}

impl MsidChain {
    /// Creates a chain with `stages` stages and the given `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn new(stages: usize, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be a non-negative finite number"
        );
        MsidChain { stages, tolerance }
    }

    /// Applies the chain to a raw unroll-factor sequence, returning the
    /// optimized sequence (paper Algorithm 4, lines 10–14, iterated
    /// `rOpt` times).
    pub fn optimize_factors(&self, factors: &[usize]) -> Vec<usize> {
        let mut prev: Vec<usize> = factors.to_vec();
        for _ in 0..self.stages {
            if prev.len() < 2 {
                break;
            }
            let mut next = prev.clone();
            for k in 1..prev.len() {
                let a = prev[k - 1] as f64;
                let b = prev[k] as f64;
                let diff = (b / a - 1.0).abs();
                if diff <= self.tolerance {
                    next[k] = prev[k - 1];
                }
            }
            if next == prev {
                break; // converged early
            }
            prev = next;
        }
        prev
    }

    /// Applies the chain to a tBuffer in place, returning the number of
    /// reconfigurations per pass before and after.
    pub fn optimize(&self, tbuffer: &mut TBuffer) -> (usize, usize) {
        let before = tbuffer.reconfigurations_per_pass();
        let optimized = self.optimize_factors(tbuffer.unrolls());
        tbuffer.set_unrolls(optimized);
        (before, tbuffer.reconfigurations_per_pass())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stages_is_identity() {
        let chain = MsidChain::new(0, 0.6);
        assert_eq!(chain.optimize_factors(&[4, 6, 2, 10]), vec![4, 6, 2, 10]);
    }

    #[test]
    fn figure4_style_example_reduces_reconfigurations() {
        // tolerance 0.6 (the figure's setting): 6/4-1 = 0.5 <= 0.6 merges,
        // 2/6-1 = -0.67 keeps, 10/2-1 = 4 keeps, ...
        let chain = MsidChain::new(1, 0.6);
        let out = chain.optimize_factors(&[4, 6, 2, 10]);
        assert_eq!(out, vec![4, 4, 2, 10]);
        let changes_before = 3;
        let changes_after = out.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes_after < changes_before);
    }

    #[test]
    fn propagation_takes_one_stage_per_set() {
        // A gentle ramp within tolerance collapses progressively.
        let ramp = [10usize, 11, 12, 13];
        let one = MsidChain::new(1, 0.15).optimize_factors(&ramp);
        assert_eq!(one, vec![10, 10, 11, 12]);
        let two = MsidChain::new(2, 0.15).optimize_factors(&ramp);
        assert_eq!(two, vec![10, 10, 10, 11]);
        let full = MsidChain::new(8, 0.15).optimize_factors(&ramp);
        assert_eq!(full, vec![10, 10, 10, 10]);
    }

    #[test]
    fn reconfiguration_rate_is_monotone_nonincreasing_in_stages() {
        // Fig. 5: more stages never increase the reconfiguration rate.
        let factors: Vec<usize> = (0..64).map(|i| 3 + ((i * 7919) % 11) as usize).collect();
        let mut last = usize::MAX;
        for stages in 0..12 {
            let out = MsidChain::new(stages, 0.15).optimize_factors(&factors);
            let changes = out.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(changes <= last, "stage {stages}: {changes} > {last}");
            last = changes;
        }
    }

    #[test]
    fn rate_flattens_at_high_stage_counts() {
        // Fig. 5: "becomes almost constant after rOpt = 8".
        let factors: Vec<usize> = (0..256).map(|i| 2 + ((i * 2654435761usize) % 13)).collect();
        let at8 = MsidChain::new(8, 0.15).optimize_factors(&factors);
        let at32 = MsidChain::new(32, 0.15).optimize_factors(&factors);
        let c8 = at8.windows(2).filter(|w| w[0] != w[1]).count();
        let c32 = at32.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(c32 as f64 >= 0.8 * c8 as f64, "c8={c8} c32={c32}");
    }

    #[test]
    fn zero_tolerance_only_merges_exact_equals() {
        let chain = MsidChain::new(4, 0.0);
        assert_eq!(chain.optimize_factors(&[4, 4, 5, 5]), vec![4, 4, 5, 5]);
    }

    #[test]
    fn short_buffers_are_untouched() {
        let chain = MsidChain::new(8, 0.5);
        assert_eq!(chain.optimize_factors(&[7]), vec![7]);
        assert_eq!(chain.optimize_factors(&[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "tolerance must be")]
    fn negative_tolerance_rejected() {
        let _ = MsidChain::new(1, -0.1);
    }

    #[test]
    fn optimize_updates_tbuffer_counts() {
        use crate::trace::RowLengthTrace;
        use acamar_sparse::CooMatrix;
        let mut coo = CooMatrix::<f64>::new(8, 16);
        let counts = [4usize, 5, 4, 5, 12, 12, 3, 3];
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                coo.push(i, j, 1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let mut t = RowLengthTrace::new(8, 64).trace(&a);
        let chain = MsidChain::new(8, 0.3);
        let (before, after) = chain.optimize(&mut t);
        assert!(after <= before, "before {before} after {after}");
        // 4,5 merge (diff 0.25 <= 0.3); 12 stays; 3 stays
        assert_eq!(t.unrolls(), &[4, 4, 4, 4, 12, 12, 3, 3]);
    }
}
